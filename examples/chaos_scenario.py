#!/usr/bin/env python3
"""Chaos study: graceful degradation under DoS + churn + bursty loss.

Takes the paper's flagship DoS setting (10% malicious members flooding
10% of the correct processes, 128 fabricated messages per round) and
piles real-world failure modes on top with a composable
:class:`~repro.faults.FaultPlan`:

- 10% of the correct processes crash at round 5 and rejoin at round 20
  (churn);
- a 40/60 network partition from round 8 that heals at round 15;
- Gilbert-Elliott bursty link loss (1% in the good state, 30% in the
  bad state) instead of the paper's i.i.d. 1%.

Raw coverage counts are misleading under faults — a crashed process
cannot possibly deliver while it is down — so the study reports
*residual reliability* (the fraction of reachable correct processes
that got the message) and *rounds to heal* (how long after the
partition heals until coverage crosses 99%).  Every protocol eventually
reaches everyone here, but Drum absorbs the combined stress in a few
rounds while the unbalanced protocols stay starved by the DoS flood
(which crosses partitions: the attacker is outside the group) long
after the network itself has recovered.

The same plan string also drives the discrete-event cluster
(``ClusterConfig(faults=...)``), the live threaded runtime
(``LiveClusterConfig(faults=...)``), and the CLI (``--faults``).

Run:  python examples/chaos_scenario.py
"""

import numpy as np

from repro import AttackSpec, Scenario
from repro.sim import run_fast
from repro.util import Table

CHAOS = "crash@5-20:0.1;partition@8-15:0.4;gilbert:0.01,0.3,0.05,0.25"


def main() -> None:
    attack = AttackSpec(alpha=0.1, x=128)
    table = Table(
        "Degradation under DoS + churn + partition + bursty loss "
        "(n=60, x=128, 100 runs)",
        [
            "protocol",
            "mean residual reliability",
            "mean rounds to 99%",
            "mean rounds to heal",
        ],
    )
    for protocol in ("drum", "push", "pull"):
        result = run_fast(
            Scenario(
                protocol=protocol,
                n=60,
                malicious_fraction=0.1,
                attack=attack,
                max_rounds=300,
                faults=CHAOS,
            ),
            runs=100,
            seed=7,
        )
        rr = result.residual_reliability()
        rtt = result.rounds_to_threshold()
        finite = rtt[~np.isnan(rtt)]
        heal = result.rounds_to_heal()
        table.add_row(
            protocol,
            f"{rr.mean():.4f}",
            f"{finite.mean():.1f}" if finite.size else "censored",
            f"{np.nanmean(heal):.1f}",
        )
    print(table)
    print()
    print(f"fault plan: {CHAOS}")
    print(
        "Drum is back to full coverage a few rounds after the partition\n"
        "heals; Push and Pull need several times longer because the flood\n"
        "keeps starving their single unprotected channel.  The same plan\n"
        "string drives all three stacks (simulate --faults,\n"
        "ClusterConfig(faults=...), LiveClusterConfig(faults=...))."
    )


if __name__ == "__main__":
    main()
