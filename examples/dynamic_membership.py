#!/usr/bin/env python3
"""Dynamic membership (Section 10): joins, leaves, expulsion, forgery.

Walks through the CA-based membership protocol layered on Drum:

- processes join through the certification authority and learn the
  group through CA-propagated join events;
- a process logs out; another is expelled on suspicion of malbehaviour;
- a malicious process tries to forge membership traffic with a
  certificate from a rogue CA — every correct process rejects it;
- certificates expire unless renewed, silently dropping a silent member;
- the local failure detector stops gossip to an unresponsive peer
  without ever gossiping suspicions.

Run:  python examples/dynamic_membership.py
"""

from repro.crypto import CertificationAuthority, KeyPair
from repro.membership import (
    DynamicMembership,
    ExpelEvent,
    JoinEvent,
    LeaveEvent,
)


def broadcast(event, services, now):
    """Stand-in for Drum's multicast: deliver an event to every process."""
    return {pid: svc.handle_event(event, now) for pid, svc in services.items()}


def main() -> None:
    ca = CertificationAuthority(validity_period=300.0)
    keys = {pid: KeyPair(owner=pid) for pid in range(5)}
    services = {}

    print("== five processes join through the CA ==")
    for pid in range(5):
        service = DynamicMembership(pid, ca.public_key, failure_timeout=5.0)
        cert = service.join(ca, keys[pid].public, now=0.0)
        broadcast(JoinEvent(pid, cert), services, now=0.0)
        services[pid] = service
    print("process 0 sees members:", services[0].current_members(1.0))

    print("\n== process 3 logs out ==")
    cert3 = ca.current_certificate(3)
    ca.revoke(3)
    broadcast(LeaveEvent(3, cert3), services, now=2.0)
    print("process 0 sees members:", services[0].current_members(2.0))

    print("\n== the CA expels process 4 on suspicion of malbehaviour ==")
    cert4 = ca.current_certificate(4)
    ca.revoke(4)
    broadcast(ExpelEvent(4, cert4), services, now=3.0)
    print("process 0 sees members:", services[0].current_members(3.0))

    print("\n== a malicious process forges a join with a rogue CA ==")
    rogue = CertificationAuthority(validity_period=300.0)
    fake = rogue.authorize_join(666, KeyPair(owner=666).public)
    outcomes = broadcast(JoinEvent(666, fake), services, now=4.0)
    print("acceptance by process:", outcomes)
    print("process 0 sees members:", services[0].current_members(4.0))

    print("\n== certificates expire unless renewed ==")
    ca.advance_clock(250.0)
    ca.renew(ca.current_certificate(1))  # process 1 renews; 2 goes silent
    refreshed = ca.current_certificate(1)
    for service in services.values():
        service.install_certificate(refreshed, now=250.0)
    print("process 0 at t=350:", services[0].current_members(350.0),
          "(process 2 expired away)")

    print("\n== the failure detector is strictly local ==")
    fd = services[0].failure_detector
    fd.heard_from(1, now=350.0)
    fd.check(now=360.0)
    print("process 0 suspects:", sorted(fd.suspected))
    print("gossip candidates:", services[0].gossip_candidates(360.0))
    print("membership unchanged:", services[0].current_members(360.0))


if __name__ == "__main__":
    main()
