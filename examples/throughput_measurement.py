#!/usr/bin/env python3
"""Throughput and latency under attack, Section 8 style.

Runs the full-protocol measurement platform (push-offer handshake,
unsynchronised rounds, purging, streams): one source sends a message
stream at 40 msg/s while an attacker floods 10 % of the processes, and
every correct receiver measures its received throughput and delivery
latency — the Figure 10/11 experiment class, scaled to run in seconds.

Run:  python examples/throughput_measurement.py
"""

import numpy as np

from repro.adversary import AttackSpec
from repro.des import ClusterConfig, run_throughput_experiment
from repro.util import Table


def main() -> None:
    base = ClusterConfig(
        n=30,
        malicious_fraction=0.1,
        messages=800,
        send_rate=40.0,
        round_duration_ms=500.0,
        max_sends_per_partner=40,
    )
    table = Table(
        "Received throughput and latency (source rate 40 msg/s, n=30, α=10%)",
        ["protocol", "attack x", "throughput [msg/s]", "mean latency [ms]", "p99 latency [ms]"],
    )
    for protocol in ("drum", "push", "pull"):
        for x in (0, 128):
            attack = AttackSpec(alpha=0.1, x=float(x)) if x else None
            config = base.with_(protocol=protocol, attack=attack)
            result = run_throughput_experiment(config, seed=21)
            throughput = result.throughput()
            latencies = [
                latency
                for samples in result.latencies_by_process().values()
                for latency in samples
            ]
            table.add_row(
                protocol,
                x,
                throughput.mean_msgs_per_sec,
                float(np.mean(latencies)),
                float(np.percentile(latencies, 99)),
            )
    print(table)
    print()
    print(
        "Drum keeps the full 40 msg/s under attack; Pull loses messages to\n"
        "purging (its flooded source cannot export them in time) and Push's\n"
        "attacked receivers fall behind — the Figure 10 result."
    )


if __name__ == "__main__":
    main()
