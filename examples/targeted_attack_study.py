#!/usr/bin/env python3
"""Targeted-attack study: rate sweeps, trend fits, and analysis bounds.

Reproduces the Section 7.2 methodology end to end:

1. sweep the per-victim attack rate ``x`` with the extent fixed at 10 %;
2. fit each protocol's propagation-time trend
   (:func:`repro.metrics.dos_impact`) — Drum comes out flat, Push and
   Pull linear;
3. compare against the closed-form Section 6 bounds (Push's lower bound
   and Pull's source-escape time) and the Appendix B escape statistics.

Run:  python examples/targeted_attack_study.py
"""

from repro import AttackSpec, Scenario, monte_carlo
from repro.analysis import (
    escape_time_std,
    expected_escape_rounds,
    push_propagation_lower_bound,
)
from repro.metrics import dos_impact
from repro.util import Table

N = 120
ALPHA = 0.1
RATES = [0, 32, 64, 128]
RUNS = 120


def sweep(protocol: str) -> list:
    times = []
    for x in RATES:
        scenario = Scenario(
            protocol=protocol,
            n=N,
            malicious_fraction=0.1,
            attack=AttackSpec(alpha=ALPHA, x=float(x)),
            max_rounds=400,
        )
        times.append(monte_carlo(scenario, runs=RUNS, seed=7).mean_rounds())
    return times


def main() -> None:
    table = Table(
        f"Propagation time vs attack rate (n={N}, alpha={ALPHA:.0%})",
        ["protocol"] + [f"x={x}" for x in RATES] + ["verdict"],
    )
    for protocol in ("drum", "push", "pull"):
        times = sweep(protocol)
        report = dos_impact("x", RATES, times)
        verdict = "resistant" if report.is_resistant else "degrades"
        table.add_row(protocol, *times, verdict)
        print(f"{protocol:5s}: {report.describe()}")
    print()
    print(table)

    print()
    print("Closed-form cross-checks (Section 6 / Appendix B):")
    bound = push_propagation_lower_bound(N, 4, ALPHA, 128)
    print(f"  Push lower bound at x=128:    {bound:6.1f} rounds (sim should exceed it)")
    escape = expected_escape_rounds(N, 4, 64)  # Pull puts all of x on one port
    print(f"  Pull expected source escape:  {escape:6.1f} rounds at x_pull=64")
    print(f"  Pull escape-time STD:         {escape_time_std(N, 4, 64):6.1f} rounds")


if __name__ == "__main__":
    main()
