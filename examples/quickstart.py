#!/usr/bin/env python3
"""Quickstart: how badly does a targeted DoS attack hurt each protocol?

Simulates Drum and the Push/Pull baselines propagating one multicast
message through a 120-process group in which 10 % of the members are
malicious and flood 10 % of the correct processes (including the
source) with 128 fabricated messages per round — the paper's flagship
scenario (Figure 3a at x = 128).

Run:  python examples/quickstart.py
"""

from repro import AttackSpec, Scenario, monte_carlo
from repro.util import Table


def main() -> None:
    attack = AttackSpec(alpha=0.1, x=128)
    table = Table(
        "Propagation time to 99% of correct processes (n=120, 1000-run paper setting at 150 runs)",
        ["protocol", "no attack [rounds]", "under attack [rounds]", "slowdown"],
    )
    for protocol in ("drum", "push", "pull"):
        healthy = monte_carlo(
            Scenario(protocol=protocol, n=120), runs=150, seed=1
        ).mean_rounds()
        attacked = monte_carlo(
            Scenario(
                protocol=protocol,
                n=120,
                malicious_fraction=0.1,
                attack=attack,
                max_rounds=400,
            ),
            runs=150,
            seed=2,
        ).mean_rounds()
        table.add_row(protocol, healthy, attacked, f"{attacked / healthy:.1f}x")
    print(table)
    print()
    print(
        "Drum's propagation time barely moves under the attack, while the\n"
        "push-only and pull-only baselines slow down by large factors —\n"
        "the paper's headline result."
    )


if __name__ == "__main__":
    main()
