#!/usr/bin/env python3
"""Adversary strategies: does focusing a fixed attack budget pay off?

Reproduces the Section 7.3 study (Figure 7): an adversary with a fixed
total budget ``B = c·F·n`` fabricated messages per round chooses how
widely to spread it.  Against Push and Pull, concentrating everything on
few processes is devastating; against Drum, the best the adversary can
do is attack everyone — i.e., Drum removes the incentive to target.

Run:  python examples/adversary_strategies.py
"""

from repro import Scenario, monte_carlo, relative_budget_sweep
from repro.metrics import adversary_best_extent
from repro.util import Table

N = 120
C = 2.0  # attack budget as a multiple of the system's total capacity
ALPHAS = [0.1, 0.3, 0.5, 0.7, 0.9]
RUNS = 120


def main() -> None:
    specs = relative_budget_sweep(C, ALPHAS, N, fan_out=4)
    table = Table(
        f"Fixed budget B={C:g}x capacity: propagation time by attack extent (n={N})",
        ["protocol"] + [f"a={a:g} (x={s.x:.0f})" for a, s in zip(ALPHAS, specs)]
        + ["adversary's best extent"],
    )
    for protocol in ("drum", "push", "pull"):
        times = []
        for spec in specs:
            scenario = Scenario(
                protocol=protocol,
                n=N,
                malicious_fraction=0.1,
                attack=spec,
                max_rounds=400,
            )
            times.append(monte_carlo(scenario, runs=RUNS, seed=3).mean_rounds())
        best = adversary_best_extent(ALPHAS, times)
        table.add_row(protocol, *times, f"α={best:g}")
    print(table)
    print()
    print(
        "Against Drum the damage *increases* with the extent — spreading\n"
        "wins, so there is no vulnerable subset to focus on (Lemma 2).\n"
        "Against Push and Pull the damage explodes as the attack narrows."
    )


if __name__ == "__main__":
    main()
