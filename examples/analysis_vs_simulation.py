#!/usr/bin/env python3
"""Analysis vs simulation overlay (Appendix C / Figures 13–14).

Computes the expected per-round coverage from the paper's exact
numerical recursion and overlays it on Monte-Carlo simulation — with
and without a DoS attack — including the `refined` analysis mode that
goes beyond the paper by removing two independence approximations.

Run:  python examples/analysis_vs_simulation.py
"""

import numpy as np

from repro import AttackSpec, Scenario, monte_carlo
from repro.analysis import coverage_curve_attack, coverage_curve_no_attack
from repro.util import Table

N = 120
ROUNDS = 14
CHECKPOINTS = [2, 4, 6, 8, 10, 12]


def overlay(title, analysis, refined, sim):
    table = Table(title, ["series"] + [f"r={r}" for r in CHECKPOINTS] + ["max |Δ| vs sim"])
    table.add_row("analysis (paper)", *[analysis[r] for r in CHECKPOINTS],
                  float(np.abs(analysis - sim).max()))
    table.add_row("analysis (refined)", *[refined[r] for r in CHECKPOINTS],
                  float(np.abs(refined - sim).max()))
    table.add_row("simulation", *[sim[r] for r in CHECKPOINTS], 0.0)
    print(table)
    print()


def main() -> None:
    print("== no attack ==")
    for protocol in ("drum", "push", "pull"):
        analysis = coverage_curve_no_attack(protocol, N, rounds=ROUNDS).coverage
        refined = coverage_curve_no_attack(
            protocol, N, rounds=ROUNDS, refined=True
        ).coverage
        sim = monte_carlo(
            Scenario(protocol=protocol, n=N, threshold=1.0),
            runs=400, seed=7, horizon=ROUNDS,
        ).coverage_by_round()
        overlay(f"{protocol}: expected coverage per round (n={N})",
                analysis, refined, sim)

    print("== under attack (α=10%, x=64, 10% malicious) ==")
    attack = AttackSpec(alpha=0.1, x=64)
    for protocol in ("drum", "push", "pull"):
        analysis = coverage_curve_attack(
            protocol, N, 12, attack, rounds=ROUNDS
        ).coverage
        refined = coverage_curve_attack(
            protocol, N, 12, attack, rounds=ROUNDS, refined=True
        ).coverage
        sim = monte_carlo(
            Scenario(protocol=protocol, n=N, malicious_fraction=0.1,
                     attack=attack, threshold=1.0),
            runs=400, seed=8, horizon=ROUNDS,
        ).coverage_by_round()
        overlay(f"{protocol} under attack (n={N})", analysis, refined, sim)

    print(
        "The recursion tracks the simulation closely; the refined mode\n"
        "(exact bounded-channel acceptance) tightens the overlay further."
    )


if __name__ == "__main__":
    main()
