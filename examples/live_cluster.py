#!/usr/bin/env python3
"""A live, threaded Drum cluster — with a real attacker thread.

Starts eight concurrently running Drum nodes over an in-memory loopback
transport (swap in :class:`repro.net.transport.UdpTransport` for real
UDP sockets), launches a flooding attacker against a quarter of them,
multicasts a few messages, and reports per-message delivery.

This is the same :class:`~repro.des.node.GossipNode` code the
deterministic measurement platform runs — here it runs under real
threads and wall-clock timers.

Run:  python examples/live_cluster.py
"""

import time

from repro.adversary import AttackSpec
from repro.runtime import LiveCluster, LiveClusterConfig
from repro.util import Table


def main() -> None:
    config = LiveClusterConfig(
        protocol="drum",
        n=8,
        round_duration_ms=150.0,
        attack=AttackSpec(alpha=0.25, x=80),  # flood 2 of 8 nodes
    )
    cluster = LiveCluster(config, seed=11)
    cluster.start()
    print(
        f"Started {config.n} Drum nodes (round = {config.round_duration_ms:.0f} ms); "
        f"attacker flooding nodes {config.attacked_ids()} with "
        f"{config.attack.x:g} msgs/round each."
    )

    table = Table("Live multicast deliveries", ["message", "delivered to", "time [ms]"])
    try:
        for i in range(5):
            t0 = time.monotonic()
            msg_id = cluster.multicast(0, f"live-{i}".encode())
            complete = cluster.await_delivery(msg_id, fraction=1.0, timeout_s=20)
            elapsed = (time.monotonic() - t0) * 1000.0
            got = {
                r.receiver for r in cluster.deliveries if r.msg_id == msg_id
            }
            table.add_row(
                f"live-{i}",
                f"{len(got)}/{config.num_correct}" + ("" if complete else " (timeout)"),
                f"{elapsed:.0f}",
            )
    finally:
        cluster.stop()
    print(table)
    print()
    print("All messages reach every node despite the flood — live Drum at work.")


if __name__ == "__main__":
    main()
