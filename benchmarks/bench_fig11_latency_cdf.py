"""Figure 11: CDF of per-process average delivery latency.

Push delivers fastest to non-attacked processes but its attacked
processes average several times longer; Pull is uniform but slow; Drum
is nearly as fast as Push with a small attacked/non-attacked spread.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record

from repro.adversary import AttackSpec
from repro.des import ClusterConfig, run_throughput_experiment
from repro.metrics.latency import mean_latency_per_process
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
N = 50

BASE = ClusterConfig(
    n=N,
    malicious_fraction=0.1,
    messages=1000,
    send_rate=40.0,
    round_duration_ms=1000.0,
    max_sends_per_partner=60,
)


def _latency_profile(protocol, alpha, seed):
    config = BASE.with_(
        protocol=protocol, attack=AttackSpec(alpha=alpha, x=128.0)
    )
    result = run_throughput_experiment(config, seed=seed)
    means = mean_latency_per_process(result.latencies_by_process())
    attacked = set(config.attacked_ids()) - {config.source}
    att = [v for pid, v in means.items() if pid in attacked]
    non = [v for pid, v in means.items() if pid not in attacked]
    return {
        "attacked_mean": float(np.mean(att)) if att else float("nan"),
        "non_attacked_mean": float(np.mean(non)),
        "overall_median": float(np.median(list(means.values()))),
    }


def _run_panel(alpha, seed):
    return {p: _latency_profile(p, alpha, seed) for p in PROTOCOLS}


def test_fig11a_latency_cdf_alpha10(benchmark):
    profiles = once(benchmark, lambda: _run_panel(0.1, seed=110))
    table = Table(
        f"Figure 11(a): mean delivery latency by class (n={N}, α=10%, x=128) [ms]",
        ["protocol", "attacked procs", "non-attacked procs", "ratio"],
    )
    for protocol in PROTOCOLS:
        prof = profiles[protocol]
        ratio = prof["attacked_mean"] / prof["non_attacked_mean"]
        table.add_row(
            protocol, prof["attacked_mean"], prof["non_attacked_mean"], ratio
        )
    record("fig11a", table)

    push_ratio = profiles["push"]["attacked_mean"] / profiles["push"]["non_attacked_mean"]
    drum_ratio = profiles["drum"]["attacked_mean"] / profiles["drum"]["non_attacked_mean"]
    pull_ratio = profiles["pull"]["attacked_mean"] / profiles["pull"]["non_attacked_mean"]
    # Push: attacked processes several times slower (paper: ~4x).
    assert push_ratio > 2.0
    # Drum: small variation between the classes.
    assert drum_ratio < 2.0
    # Pull: roughly uniform latency, but slow overall.
    assert pull_ratio < 1.7
    assert (
        profiles["pull"]["non_attacked_mean"]
        > profiles["drum"]["non_attacked_mean"]
    )
    # Drum delivers almost as fast as Push to the non-attacked...
    assert (
        profiles["drum"]["non_attacked_mean"]
        < 2.0 * profiles["push"]["non_attacked_mean"]
    )
    # ...and much faster than Push to the attacked.
    assert profiles["drum"]["attacked_mean"] < profiles["push"]["attacked_mean"]


def test_fig11b_latency_cdf_alpha40(benchmark):
    profiles = once(benchmark, lambda: _run_panel(0.4, seed=111))
    table = Table(
        f"Figure 11(b): mean delivery latency by class (n={N}, α=40%, x=128) [ms]",
        ["protocol", "attacked procs", "non-attacked procs", "ratio"],
    )
    for protocol in PROTOCOLS:
        prof = profiles[protocol]
        ratio = prof["attacked_mean"] / prof["non_attacked_mean"]
        table.add_row(
            protocol, prof["attacked_mean"], prof["non_attacked_mean"], ratio
        )
    record("fig11b", table)

    assert (
        profiles["push"]["attacked_mean"]
        > 1.5 * profiles["push"]["non_attacked_mean"]
    )
    assert (
        profiles["drum"]["attacked_mean"]
        < profiles["push"]["attacked_mean"]
    )
