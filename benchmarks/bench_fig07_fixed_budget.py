"""Figure 7: strong fixed-budget attacks — adversary strategies.

With B = 7.2n (c = 2) and B = 36n (c = 10) fabricated messages per round
spread over a varying fraction α of the processes: focusing devastates
Push and Pull; against Drum the most damaging strategy is attacking
everyone (Lemma 2).  At the rightmost point all protocols meet.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import mc_kwargs, once, record, runs, scaled

from repro.adversary import fixed_budget_sweep
from repro.metrics import adversary_best_extent
from repro.sim import Scenario, monte_carlo
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
EXTENTS = [0.1, 0.3, 0.5, 0.7, 0.9]


def _budget_sweep(n, budget_per_n, seed):
    specs = fixed_budget_sweep(budget_per_n * n, EXTENTS, n)
    out = {}
    for protocol in PROTOCOLS:
        times = []
        for spec in specs:
            scenario = Scenario(
                protocol=protocol,
                n=n,
                malicious_fraction=0.1,
                attack=spec,
                max_rounds=400,
            )
            times.append(
                monte_carlo(
                    scenario, runs=runs(2), seed=seed, **mc_kwargs()
                ).mean_rounds()
            )
        out[protocol] = times
    return out


def _check_and_record(name, title, times):
    table = Table(title, ["protocol"] + [f"α={a:g}" for a in EXTENTS] + ["worst α"])
    for protocol in PROTOCOLS:
        best = adversary_best_extent(EXTENTS, times[protocol])
        table.add_row(protocol, *times[protocol], f"{best:g}")
    record(name, table)

    # Lemma 2: against Drum the all-out attack is the most damaging —
    # focusing buys the adversary nothing.
    assert adversary_best_extent(EXTENTS, times["drum"]) == EXTENTS[-1]
    # Against Push, focusing is the winning strategy.
    assert adversary_best_extent(EXTENTS, times["push"]) == EXTENTS[0]
    # A focused attack hurts Push and Pull far more than it hurts Drum.
    assert times["push"][0] > 2 * times["drum"][0]
    assert times["pull"][0] > 1.5 * times["drum"][0]
    # All protocols roughly meet when everyone is attacked.
    rightmost = [times[p][-1] for p in PROTOCOLS]
    assert max(rightmost) - min(rightmost) < 0.45 * max(rightmost)


def test_fig07a_c2_n120(benchmark):
    times = once(benchmark, lambda: _budget_sweep(120, 7.2, seed=70))
    _check_and_record(
        "fig07a", "Figure 7(a): fixed budget B=7.2n (c=2), n=120", times
    )


def test_fig07b_c10_n120(benchmark):
    times = once(benchmark, lambda: _budget_sweep(120, 36.0, seed=71))
    _check_and_record(
        "fig07b", "Figure 7(b): fixed budget B=36n (c=10), n=120", times
    )


def test_fig07c_c2_n500(benchmark):
    n = scaled(500)
    times = once(benchmark, lambda: _budget_sweep(n, 7.2, seed=72))
    _check_and_record(
        "fig07c", f"Figure 7(c): fixed budget B=7.2n (c=2), n={n}", times
    )


def test_fig07d_c10_n500(benchmark):
    n = scaled(500)
    times = once(benchmark, lambda: _budget_sweep(n, 36.0, seed=73))
    _check_and_record(
        "fig07d", f"Figure 7(d): fixed budget B=36n (c=10), n={n}", times
    )
