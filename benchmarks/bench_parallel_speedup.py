"""Wall-clock benchmark of the parallel Monte-Carlo execution layer.

Times the paper-strength Figure 3(a) rate sweep (three protocols, five
attack rates, ``REPRO_RUNS`` Monte-Carlo runs per point) once serially
and once on a worker pool, verifies the two reports are byte-identical
JSON, and appends the measurement to ``BENCH_parallel.json`` at the
repository root.

Run::

    REPRO_RUNS=1000 PYTHONPATH=src python benchmarks/bench_parallel_speedup.py

Speedup scales with physical cores (the sweep is embarrassingly
parallel: 15 independent grid cells, each itself sharded); the recorded
entry includes ``cpu_count`` so numbers from single-core CI containers
are not mistaken for the multi-core story.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.sim.executor import stats
from repro.sim.parallel import default_workers
from repro.sim.runner import default_runs
from repro.sim.sweeps import rate_sweep

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

PROTOCOLS = ["drum", "push", "pull"]
RATES = [0, 16, 32, 64, 128]


def main() -> int:
    runs = default_runs(1000)
    workers = max(2, default_workers(4))
    sweep_kwargs = dict(n=120, alpha=0.1, runs=runs, seed=30, max_rounds=400)

    start = time.perf_counter()
    serial = rate_sweep(PROTOCOLS, RATES, workers=1, **sweep_kwargs)
    serial_s = time.perf_counter() - start

    stats().reset()
    start = time.perf_counter()
    parallel = rate_sweep(PROTOCOLS, RATES, workers=workers, **sweep_kwargs)
    parallel_s = time.perf_counter() - start
    executor = stats().snapshot()
    tasks = executor["tasks_completed"]

    identical = serial.to_json() == parallel.to_json()
    entry = {
        "name": "rate_sweep_fig03a",
        "protocols": PROTOCOLS,
        "rates": RATES,
        "n": 120,
        "runs": runs,
        "workers": workers,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "byte_identical": identical,
        "tasks_scheduled": executor["tasks_scheduled"],
        "mean_task_seconds": (
            round(parallel_s / tasks, 6) if tasks else None
        ),
        "pickled_result_array_bytes": executor["result_array_bytes"],
        "shm_result_bytes": executor["shm_bytes"],
        "pool_spawns": executor["pool_spawns"],
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }

    entries = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            entries = []
    entries.append(entry)
    BENCH_PATH.write_text(json.dumps(entries, indent=2) + "\n")

    print(json.dumps(entry, indent=2))
    if not identical:
        print("ERROR: parallel sweep diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
