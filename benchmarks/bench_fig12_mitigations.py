"""Figure 12: the other DoS-mitigation techniques (Section 9).

(a) random ports — simulated: Drum with pull-replies on a well-known
    (attackable) port degrades linearly in x; real Drum stays flat.
(b) separate resource bounds — measured on the full-protocol platform:
    Drum with one joint control-message quota degrades linearly in x.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs, scaled

from repro.adversary import AttackSpec
from repro.des import ClusterConfig, run_single_message_experiment
from repro.metrics import dos_impact
from repro.sim import Scenario, monte_carlo
from repro.util import Table

RATES = [0, 32, 64, 128]


def test_fig12a_random_ports(benchmark):
    n = scaled(1000)

    def sweep():
        out = {}
        for protocol in ("drum", "drum-no-random-ports"):
            times = []
            for x in RATES:
                scenario = Scenario(
                    protocol=protocol,
                    n=n,
                    malicious_fraction=0.1,
                    attack=AttackSpec(alpha=0.1, x=float(x)) if x else None,
                    max_rounds=400,
                )
                times.append(
                    monte_carlo(scenario, runs=runs(2), seed=120).mean_rounds()
                )
            out[protocol] = times
        return out

    times = once(benchmark, sweep)
    table = Table(
        f"Figure 12(a): random ports vs well-known ports (n={n}, α=10%, simulation)",
        ["variant"] + [f"x={x}" for x in RATES],
    )
    table.add_row("drum (random ports)", *times["drum"])
    table.add_row("drum (well-known ports)", *times["drum-no-random-ports"])
    record("fig12a", table)

    assert dos_impact("x", RATES, times["drum"]).is_resistant
    wkp = dos_impact("x", RATES, times["drum-no-random-ports"])
    assert wkp.slope > 0 and wkp.r_squared > 0.8, wkp.describe()
    assert times["drum-no-random-ports"][-1] > 1.5 * times["drum"][-1]


def test_fig12b_separate_bounds(benchmark):
    des_runs = max(4, runs(20))

    def sweep():
        out = {}
        for protocol in ("drum", "drum-shared-bounds"):
            times = []
            for x in RATES:
                config = ClusterConfig(
                    protocol=protocol,
                    n=50,
                    malicious_fraction=0.1,
                    attack=AttackSpec(alpha=0.1, x=float(x)) if x else None,
                    round_duration_ms=100.0,
                    background_rate=0.2,
                )
                values = run_single_message_experiment(
                    config, runs=des_runs, seed=121, horizon_rounds=100
                )
                times.append(float(np.nanmean(values)))
            out[protocol] = times
        return out

    times = once(benchmark, sweep)
    table = Table(
        "Figure 12(b): separate vs shared control bounds (n=50, α=10%, measurement)",
        ["variant"] + [f"x={x}" for x in RATES],
    )
    table.add_row("drum (separate bounds)", *times["drum"])
    table.add_row("drum (shared bounds)", *times["drum-shared-bounds"])
    record("fig12b", table)

    # Drum proper is indifferent to the attack; the shared-bounds
    # variant degrades markedly as the rate grows.
    assert times["drum"][-1] < times["drum"][0] + 3.5
    assert times["drum-shared-bounds"][-1] > times["drum-shared-bounds"][0] + 3.0
    assert times["drum-shared-bounds"][-1] > 1.5 * times["drum"][-1]
