"""Perf-regression harness for the exact object-level engine.

Measures the profile-guided fast path on the paper's Figure 3
targeted-attack scenario (n = 120, x = 128) and writes the results to
``benchmarks/results/BENCH_exact.json``.  Three comparisons are made:

- **vs the recorded pre-optimisation baseline**
  (``BENCH_exact_baseline.json``): wall time, plus exact equality of
  the deterministic operation counts (rounds, packets allocated,
  channels opened) — the engine must be *faster on the identical
  trace*, which the golden-trace tests pin byte-for-byte;
- **vs the naive reference mode** (``RoundSimulator(naive=True)``):
  the unoptimised object-per-packet implementation — floods fabricate
  and route one :class:`Packet` object per bogus message with a
  per-packet loss draw, and channels run eagerly-seeded object-level
  bounded acceptance.  Its advantage scales with the attack strength
  ``x`` (the ``flood_scaling`` section), because the fast path floods
  in O(1) per victim port instead of O(x);
- **signature microbench**: digest computations per multicast hop with
  and without the frozen-body digest memoisation.

Usage::

    PYTHONPATH=src python benchmarks/bench_exact_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_exact_engine.py --reduced  # CI scale
    PYTHONPATH=src python benchmarks/bench_exact_engine.py --reduced --check

``--check`` re-runs the reduced workload and asserts the deterministic
op-count metrics stay at/below the recorded baselines (counts, not wall
time, so shared-runner load cannot flake the job).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.adversary.attacks import AttackSpec
from repro.core.message import DataMessage
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import SignatureRegistry, sign, verify
from repro.sim.engine import RoundSimulator
from repro.sim.scenario import Scenario
from repro.util.profiling import counters_since, counters_snapshot

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_exact_baseline.json"

FIG3_PROTOCOLS = ("drum", "push", "pull")
ALL_PROTOCOLS = (
    "drum", "push", "pull", "drum-no-random-ports", "drum-shared-bounds"
)
SEED = 42


def scenario_for(protocol: str, n: int, x: float) -> Scenario:
    """The benchmark workload: 10% attacked at rate x, as in Figure 3."""
    return Scenario(
        protocol=protocol,
        n=n,
        malicious_fraction=0.1,
        attack=AttackSpec(alpha=0.1, x=float(x)),
        max_rounds=400,
    )


def measure(
    protocol: str, n: int, x: float, *, repeats: int = 3, naive: bool = False
) -> dict:
    """Best-of-``repeats`` wall time plus deterministic op counts."""
    scenario = scenario_for(protocol, n, x)
    best = None
    sim = result = None
    for _ in range(repeats):
        start = time.perf_counter()
        sim = RoundSimulator(scenario, seed=SEED, naive=naive)
        result = sim.run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    injected = sim.attacker.injected_total if sim.attacker else 0
    return {
        "wall_s": best,
        "rounds": len(result.counts) - 1,
        # Valid protocol traffic; the fabricated flood is counted
        # separately (sent_packets includes it, but the fast path never
        # allocates an object per fabricated message).
        "packets_allocated": sim.network.sent_packets - injected,
        "packets_flooded": injected,
        "channels_created": sim.network.channels_opened,
    }


def signature_microbench(hops: int = 64) -> dict:
    """Digest computations per multicast with/without memoisation."""
    keys = KeyPair(owner=0)
    registry = SignatureRegistry()
    message = DataMessage(msg_id=(0, 1), source=0, payload=b"M" * 256)

    before = counters_snapshot()
    start = time.perf_counter()
    signature = sign(
        keys.private,
        message.signed_body(),
        digest=message.body_digest(),
        registry=registry,
    )
    for _ in range(hops):
        assert verify(
            keys.public,
            message.signed_body(),
            signature,
            digest=message.body_digest(),
            registry=registry,
        )
    memo_wall = time.perf_counter() - start
    memo = counters_since(before).get("signature_digests_computed", 0)

    before = counters_snapshot()
    start = time.perf_counter()
    signature = sign(keys.private, message.signed_body(), registry=registry)
    for _ in range(hops):
        assert verify(
            keys.public, message.signed_body(), signature, registry=registry
        )
    naive_wall = time.perf_counter() - start
    naive = counters_since(before).get("signature_digests_computed", 0)

    return {
        "hops": hops,
        "digests_computed_memoised": memo,
        "digests_computed_naive": naive,
        "wall_s_memoised": memo_wall,
        "wall_s_naive": naive_wall,
    }


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def run_figure3(baseline: dict, repeats: int) -> dict:
    section = {}
    total_wall = total_base = total_naive = 0.0
    for protocol in FIG3_PROTOCOLS:
        fast = measure(protocol, 120, 128, repeats=repeats)
        naive = measure(protocol, 120, 128, repeats=repeats, naive=True)
        base = baseline["figure3"][protocol]
        for key in ("rounds", "packets_allocated", "channels_created"):
            if fast[key] != base[key]:
                raise SystemExit(
                    f"figure3 {protocol}: {key} diverged from the "
                    f"pre-optimisation trace ({fast[key]} != {base[key]}); "
                    "the fast path is no longer exact"
                )
        total_wall += fast["wall_s"]
        total_base += base["wall_s"]
        total_naive += naive["wall_s"]
        section[protocol] = {
            **fast,
            "baseline_wall_s": base["wall_s"],
            "speedup_vs_baseline": base["wall_s"] / fast["wall_s"],
            "naive_wall_s": naive["wall_s"],
            "speedup_vs_naive": naive["wall_s"] / fast["wall_s"],
        }
        print(
            f"figure3 {protocol:5s}: {fast['wall_s']*1e3:7.1f} ms  "
            f"({section[protocol]['speedup_vs_baseline']:.2f}x vs baseline, "
            f"{section[protocol]['speedup_vs_naive']:.2f}x vs naive)"
        )
    section["aggregate"] = {
        "wall_s": total_wall,
        "baseline_wall_s": total_base,
        "speedup_vs_baseline": total_base / total_wall,
        "naive_wall_s": total_naive,
        "speedup_vs_naive": total_naive / total_wall,
    }
    print(
        f"figure3 aggregate: {total_base/total_wall:.2f}x vs baseline, "
        f"{total_naive/total_wall:.2f}x vs naive"
    )
    return section


def run_flood_scaling(repeats: int, rates=(128, 512, 1024, 4096)) -> dict:
    """Fast-vs-naive wall time as the attack strength grows.

    The fast path handles a flood of x fabricated packets as one
    binomial draw and a counter bump; the reference mode pays O(x)
    object allocations and loss draws — so the speedup grows with x.
    """
    section = {}
    for x in rates:
        fast_total = naive_total = 0.0
        for protocol in FIG3_PROTOCOLS:
            fast_total += measure(protocol, 120, x, repeats=repeats)["wall_s"]
            naive_total += measure(
                protocol, 120, x, repeats=max(1, repeats - 1), naive=True
            )["wall_s"]
        section[str(x)] = {
            "fast_wall_s": fast_total,
            "naive_wall_s": naive_total,
            "speedup_vs_naive": naive_total / fast_total,
        }
        print(
            f"flood x={x:5d}: fast {fast_total:.3f} s, naive "
            f"{naive_total:.3f} s ({naive_total/fast_total:.2f}x)"
        )
    return section


def run_reduced(baseline: dict, repeats: int, check: bool) -> dict:
    section = {}
    failures = []
    for protocol in ALL_PROTOCOLS:
        fast = measure(protocol, 60, 64, repeats=repeats)
        base = baseline["reduced"][protocol]
        section[protocol] = {
            **fast,
            "baseline_wall_s": base["wall_s"],
            "speedup_vs_baseline": base["wall_s"] / fast["wall_s"],
        }
        print(
            f"reduced {protocol:21s}: {fast['wall_s']*1e3:7.1f} ms  "
            f"({section[protocol]['speedup_vs_baseline']:.2f}x vs baseline)  "
            f"packets={fast['packets_allocated']} "
            f"channels={fast['channels_created']} rounds={fast['rounds']}"
        )
        if check:
            for key in ("packets_allocated", "channels_created", "rounds"):
                if fast[key] > base[key]:
                    failures.append(
                        f"{protocol}: {key} rose above baseline "
                        f"({fast[key]} > {base[key]})"
                    )
    if check:
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print("check passed: all op-count metrics at/below recorded baselines")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true",
        help="n=60, x=64 workload across all five protocols (CI scale)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="with --reduced: fail when deterministic op counts exceed "
             "the recorded baselines",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)
    if args.check and not args.reduced:
        raise SystemExit("--check requires --reduced")

    baseline = load_baseline()
    payload = {
        "machine": platform.platform(),
        "seed": SEED,
        "baseline": baseline.get("commit", "unknown"),
    }
    if args.reduced:
        payload["reduced"] = run_reduced(baseline, args.repeats, args.check)
        default_out = RESULTS_DIR / "BENCH_exact_reduced.json"
    else:
        payload["figure3"] = run_figure3(baseline, args.repeats)
        payload["flood_scaling"] = run_flood_scaling(args.repeats)
        payload["signature_microbench"] = signature_microbench()
        payload["reduced"] = run_reduced(baseline, args.repeats, check=False)
        default_out = RESULTS_DIR / "BENCH_exact.json"

    out = args.output or default_out
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
