"""Figure 4: standard deviation of the propagation time (Section 7.2).

For a fixed extent, Drum's STD is flat in the attack rate while Push's
grows and Pull's explodes (the geometric source-escape time); the
Appendix B closed form for Pull's escape STD is printed alongside.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import once, record, runs, scaled

from repro.adversary import AttackSpec
from repro.analysis import escape_time_std
from repro.sim import Scenario, monte_carlo
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
RATES = [16, 32, 64, 128]
EXTENTS = [0.1, 0.2, 0.4, 0.6, 0.8]


def _std(protocol, n, attack, seed):
    scenario = Scenario(
        protocol=protocol,
        n=n,
        malicious_fraction=0.1,
        attack=attack,
        max_rounds=400,
    )
    return monte_carlo(scenario, runs=runs(2), seed=seed).std_rounds()


def test_fig04a_std_vs_rate(benchmark):
    n = scaled(1000)

    def sweep():
        return {
            protocol: [
                _std(protocol, n, AttackSpec(alpha=0.1, x=float(x)), seed=40)
                for x in RATES
            ]
            for protocol in PROTOCOLS
        }

    stds = once(benchmark, sweep)
    table = Table(
        f"Figure 4(a): STD of propagation time vs x (n={n}, α=10%)",
        ["protocol"] + [f"x={x}" for x in RATES],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *stds[protocol])
    table.add_row(
        "pull escape STD (Appendix B)",
        *[escape_time_std(n, 4, x) for x in RATES],
    )
    record("fig04a", table)

    # Paper at x=128: Drum ≈ 0.5, Push ≈ 2.9, Pull ≈ 9.3.
    assert stds["drum"][-1] < 2.0
    assert stds["pull"][-1] > 3 * stds["drum"][-1]
    assert stds["pull"][-1] > stds["push"][-1]
    # Drum's STD flat in x; Pull's grows.
    assert stds["drum"][-1] - stds["drum"][0] < 1.5
    assert stds["pull"][-1] > stds["pull"][0]


def test_fig04b_std_vs_extent(benchmark):
    n = scaled(1000)

    def sweep():
        return {
            protocol: [
                _std(protocol, n, AttackSpec(alpha=a, x=128.0), seed=41)
                for a in EXTENTS
            ]
            for protocol in PROTOCOLS
        }

    stds = once(benchmark, sweep)
    table = Table(
        f"Figure 4(b): STD of propagation time vs α (n={n}, x=128)",
        ["protocol"] + [f"α={a:g}" for a in EXTENTS],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *stds[protocol])
    record("fig04b", table)
    # Drum and Push remain predictable; Pull's STD stays the largest.
    for i in range(len(EXTENTS)):
        assert stds["pull"][i] >= stds["drum"][i]
