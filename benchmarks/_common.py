"""Shared helpers for the figure-reproduction benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
runs the workload, prints the figure's rows/series, writes them to
``benchmarks/results/figXX.txt``, and makes loose shape assertions (who
wins, what trends) so a regression in the reproduction fails the bench.

Environment knobs:

- ``REPRO_RUNS``  — Monte-Carlo runs per data point (default 100; the
  paper uses 1000).
- ``REPRO_SCALE`` — multiplies the larger group sizes, e.g. 0.2 turns
  the n = 1000 sweeps into n = 200 smoke runs.
- ``REPRO_WORKERS`` — process-pool workers for the Monte-Carlo fan-out
  (default 1; results are bit-identical for any count).
- ``REPRO_CACHE_DIR`` — on-disk result store location (default
  ``benchmarks/results/.cache``); points shared between figures (e.g.
  the rate-0 baseline) are computed once, and interrupted figure grids
  resume from their sweep manifests.  Delete the directory after
  changing engine semantics.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.sim.parallel import ResultCache, default_workers
from repro.sim.runner import default_runs
from repro.sweep import ResultStore, SweepRunner

RESULTS_DIR = Path(__file__).parent / "results"


def runs(divisor: int = 1) -> int:
    """Monte-Carlo run count for a data point (REPRO_RUNS aware)."""
    return max(10, default_runs() // divisor)


def workers() -> int:
    """Process-pool worker count (REPRO_WORKERS aware)."""
    return default_workers()


def store() -> ResultStore:
    """The benchmark harness's shared on-disk result store."""
    root = os.environ.get("REPRO_CACHE_DIR")
    return ResultStore(Path(root) if root else RESULTS_DIR / ".cache")


def cache() -> ResultCache:
    """The store's npz tier (what ``monte_carlo(cache=...)`` takes)."""
    return store().cache


def mc_kwargs() -> dict:
    """Keyword args threading the parallel/cache knobs into monte_carlo."""
    return {"workers": workers(), "cache": cache()}


def sweep_runner(tracer=None) -> SweepRunner:
    """A manifest-checkpointed grid runner over the shared store.

    Figure benchmarks hand whole cell grids to this instead of looping
    ``monte_carlo`` serially: cells fan out over the process pool,
    finished cells persist per-cell, and a killed benchmark resumes
    from its manifest recomputing only what never finished.
    """
    return SweepRunner(store=store(), workers=workers(), tracer=tracer)


def scaled(n: int) -> int:
    """Apply REPRO_SCALE to a group size (never below 50)."""
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be > 0, got {scale}")
    return max(50, int(round(n * scale)))


def record(name: str, table) -> None:
    """Print a figure's table and persist it under benchmarks/results/."""
    text = table.render() if hasattr(table, "render") else str(table)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
