"""Benchmark and contract-check of the persistent zero-copy executor.

Measures what the executor rework claims to have removed:

- **pool spawns** — the whole Figure 3(a) sweep must fork exactly one
  ``ProcessPoolExecutor``, and a second sweep in the same process must
  fork none (the pool is persistent);
- **pickled result bytes** — zero ndarray bytes may travel back through
  task-result pickles: shard arrays arrive via shared memory;
- **per-task scheduling overhead** — the round-trip cost of a no-op
  task on the warm pool (pure submit/collect overhead, no engine work);
- **byte-identity** — two identical sweeps through the executor must
  render byte-identical report JSON.

With ``--check`` the three contracts above are *gates*: any violation
exits non-zero (CI runs this with ``--reduced`` for a small grid).
Every run appends its measurement to ``BENCH_executor.json`` at the
repository root.

Run::

    PYTHONPATH=src python benchmarks/bench_executor_overhead.py --reduced --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.sim.executor import _noop, close_pool, get_pool, stats
from repro.sim.parallel import default_workers
from repro.sim.runner import default_runs
from repro.sim.sweeps import rate_sweep

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_executor.json"

PROTOCOLS = ["drum", "push", "pull"]


def _sweep(rates, workers, sweep_kwargs):
    report = rate_sweep(PROTOCOLS, rates, workers=workers, **sweep_kwargs)
    return report.to_json()


def _noop_overhead(workers: int, tasks: int = 200) -> float:
    """Mean seconds per no-op task round-trip on the warm pool."""
    pool = get_pool(workers)
    pool.run_calls([(_noop, None)])  # ensure the executor is spawned
    start = time.perf_counter()
    pool.run_calls([(_noop, i) for i in range(tasks)])
    return (time.perf_counter() - start) / tasks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true",
        help="small grid and run count (CI smoke scale)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if any executor contract is violated",
    )
    args = parser.parse_args(argv)

    if args.reduced:
        rates = [0, 64]
        runs = default_runs(20)
        n = 40
    else:
        rates = [0, 16, 32, 64, 128]
        runs = default_runs(1000)
        n = 120
    workers = max(2, default_workers(4))
    sweep_kwargs = dict(n=n, alpha=0.1, runs=runs, seed=30, max_rounds=400)

    close_pool()
    stats().reset()

    start = time.perf_counter()
    first = _sweep(rates, workers, sweep_kwargs)
    first_s = time.perf_counter() - start
    after_first = stats().snapshot()

    start = time.perf_counter()
    second = _sweep(rates, workers, sweep_kwargs)
    second_s = time.perf_counter() - start
    after_second = stats().snapshot()

    overhead_s = _noop_overhead(workers)

    checks = {
        "one_pool_spawn_per_sweep": after_first["pool_spawns"] == 1,
        "no_respawn_for_second_sweep": after_second["pool_spawns"] == 1,
        "zero_pickled_result_array_bytes": (
            after_second["result_array_bytes"] == 0
        ),
        "byte_identical_repeat": first == second,
    }
    tasks = after_second["tasks_completed"]
    entry = {
        "name": "executor_overhead",
        "reduced": bool(args.reduced),
        "protocols": PROTOCOLS,
        "rates": rates,
        "n": n,
        "runs": runs,
        "workers": workers,
        "first_sweep_seconds": round(first_s, 3),
        "second_sweep_seconds": round(second_s, 3),
        "pool_spawns": after_second["pool_spawns"],
        "pool_respawns": after_second["respawns"],
        "tasks_scheduled": after_second["tasks_scheduled"],
        "tasks_completed": tasks,
        "pickled_result_array_bytes": after_second["result_array_bytes"],
        "pickled_bytes_per_task": (
            round(after_second["result_array_bytes"] / tasks, 1) if tasks else 0
        ),
        "shm_result_bytes": after_second["shm_bytes"],
        "noop_task_overhead_us": round(overhead_s * 1e6, 1),
        "checks": checks,
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }

    entries = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            entries = []
    entries.append(entry)
    BENCH_PATH.write_text(json.dumps(entries, indent=2) + "\n")

    print(json.dumps(entry, indent=2))
    close_pool()
    if args.check and not all(checks.values()):
        failed = sorted(name for name, ok in checks.items() if not ok)
        print(f"ERROR: executor contract(s) violated: {failed}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
