"""Figure 9: simulations vs measurements (Section 8.1).

Runs the full-protocol measurement platform (push-offer handshake,
unsynchronised rounds, hop-counter logging) on the paper's n = 50 setup
and compares its propagation times against the round-based simulation —
the experiment that validated the simulation methodology.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs

from repro.adversary import AttackSpec
from repro.des import ClusterConfig, run_single_message_experiment
from repro.sim import Scenario, monte_carlo
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
RATES = [32, 128]
EXTENTS = [0.1, 0.4]
N = 50
DES_RUNS = max(4, runs(20))


def _des_rounds(protocol, attack):
    config = ClusterConfig(
        protocol=protocol,
        n=N,
        malicious_fraction=0.1,
        attack=attack,
        round_duration_ms=100.0,
        background_rate=0.2,
    )
    values = run_single_message_experiment(
        config, runs=DES_RUNS, seed=90, horizon_rounds=80
    )
    return float(np.nanmean(values))


def _sim_rounds(protocol, attack):
    scenario = Scenario(
        protocol=protocol,
        n=N,
        malicious_fraction=0.1,
        attack=attack,
        max_rounds=400,
    )
    return monte_carlo(scenario, runs=runs(1), seed=91).mean_rounds()


def test_fig09_measurements_vs_simulation(benchmark):
    def sweep():
        rows = []
        for protocol in PROTOCOLS:
            for x in RATES:
                attack = AttackSpec(alpha=0.1, x=float(x))
                rows.append(
                    (protocol, f"x={x}", _sim_rounds(protocol, attack),
                     _des_rounds(protocol, attack))
                )
            attack = AttackSpec(alpha=0.4, x=128.0)
            rows.append(
                (protocol, "α=40%,x=128", _sim_rounds(protocol, attack),
                 _des_rounds(protocol, attack))
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        f"Figure 9: simulation vs measurement, rounds to 99% (n={N}, α=10%)",
        ["protocol", "attack", "simulation", "measurement"],
    )
    for row in rows:
        table.add_row(*row)
    record("fig09", table)

    # Measurements must be consistent with simulations: same ordering
    # between protocols at x=128 and values in the same ballpark.
    by_key = {(p, a): (s, m) for p, a, s, m in rows}
    for protocol in PROTOCOLS:
        sim, meas = by_key[(protocol, "x=128")]
        assert meas == __import__("pytest").approx(sim, rel=0.6, abs=3.0), (
            protocol, sim, meas,
        )
    sim_order = sorted(PROTOCOLS, key=lambda p: by_key[(p, "x=128")][0])
    meas_order = sorted(PROTOCOLS, key=lambda p: by_key[(p, "x=128")][1])
    assert sim_order[0] == meas_order[0] == "drum"
    assert sim_order[-1] == meas_order[-1] == "push"
