"""Section 6 lemmas and corollaries, checked numerically against sweeps.

- Lemma 1:     Drum's propagation time is bounded in x (fixed α < 1).
- Lemma 2:     under strong fixed budgets, Drum's damage is monotone in α.
- Corollary 1: Push's propagation time grows at least linearly in x.
- Corollary 2: Pull's propagation time grows at least linearly in x.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import once, record, runs

from repro.adversary import AttackSpec, fixed_budget_sweep
from repro.analysis import (
    drum_effective_degrees,
    pull_escape_lower_bound,
    push_propagation_lower_bound,
)
from repro.metrics import linear_fit
from repro.sim import Scenario, monte_carlo
from repro.util import Table

N = 120
RATES = [32, 64, 128, 256]


def _prop(protocol, attack, seed):
    scenario = Scenario(
        protocol=protocol, n=N, malicious_fraction=0.1,
        attack=attack, max_rounds=800,
    )
    return monte_carlo(scenario, runs=runs(2), seed=seed).mean_rounds()


def test_lemma1_drum_bounded_in_x(benchmark):
    times = once(
        benchmark,
        lambda: [_prop("drum", AttackSpec(alpha=0.1, x=float(x)), 150) for x in RATES],
    )
    table = Table(
        "Lemma 1: Drum's propagation time vs x (bounded)",
        ["x"] + ["rounds"],
    )
    for x, t in zip(RATES, times):
        table.add_row(x, t)
    record("lemma1", table)
    assert max(times) - min(times) < 2.0, times
    # The degree floor that proves the lemma is positive and x-free:
    # F·(1-α)/2·p_u ≈ 1.4 at α=10%, regardless of x.
    degrees = [drum_effective_degrees(N, 4, 0.1, x).attacked for x in RATES]
    assert min(degrees) > 1.2
    assert max(degrees) - min(degrees) < 0.5


def test_lemma2_drum_monotone_in_alpha(benchmark):
    alphas = [0.1, 0.3, 0.5, 0.7, 0.9]
    budget = 10.0 * 4 * N  # c = 10 > 5, the lemma's regime

    def sweep():
        return [
            _prop("drum", spec, 151)
            for spec in fixed_budget_sweep(budget, alphas, N)
        ]

    times = once(benchmark, sweep)
    table = Table(
        "Lemma 2: Drum under fixed budget c=10, monotone in α",
        [f"α={a:g}" for a in alphas],
    )
    table.add_row(*times)
    record("lemma2", table)
    assert all(a < b for a, b in zip(times, times[1:])), times


def test_corollary1_push_linear_in_x(benchmark):
    times = once(
        benchmark,
        lambda: [_prop("push", AttackSpec(alpha=0.1, x=float(x)), 152) for x in RATES],
    )
    table = Table(
        "Corollary 1: Push vs x (linear), with Lemma 4 lower bound",
        ["x", "simulated", "lower bound"],
    )
    bounds = [push_propagation_lower_bound(N, 4, 0.1, x) for x in RATES]
    for x, t, b in zip(RATES, times, bounds):
        table.add_row(x, t, b)
    record("corollary1", table)

    slope, _, r2 = linear_fit(RATES, times)
    assert slope > 0.05 and r2 > 0.95, (slope, r2)
    for t, b in zip(times, bounds):
        assert t > b, "simulation must respect the closed-form lower bound"


def test_corollary2_pull_linear_in_x(benchmark):
    times = once(
        benchmark,
        lambda: [_prop("pull", AttackSpec(alpha=0.1, x=float(x)), 153) for x in RATES],
    )
    table = Table(
        "Corollary 2: Pull vs x (linear), with Lemma 6 escape bound",
        ["x", "simulated", "escape lower bound"],
    )
    bounds = [pull_escape_lower_bound(N, 4, x) for x in RATES]
    for x, t, b in zip(RATES, times, bounds):
        table.add_row(x, t, b)
    record("corollary2", table)

    slope, _, r2 = linear_fit(RATES, times)
    assert slope > 0.03 and r2 > 0.95, (slope, r2)
    for t, b in zip(times, bounds):
        assert t > b
