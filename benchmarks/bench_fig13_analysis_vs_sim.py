"""Figure 13: Appendix C analysis vs simulation, without DoS attacks.

Coverage CDFs from the exact numerical recursion overlaid on the
Monte-Carlo simulation, failure-free and with 10 % crashed processes.
The ``refined`` analysis (exact without-replacement acceptance — an
extension over the paper) is reported alongside the paper's formula.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs, scaled

from repro.analysis import coverage_curve_no_attack
from repro.sim import Scenario, monte_carlo
from repro.util import Table

ROUNDS = 12
CHECKPOINTS = [2, 4, 6, 8, 10]


def _panel(n, crashed_fraction, seed):
    b = int(round(crashed_fraction * n))
    out = {}
    for protocol in ("drum", "push", "pull"):
        analysis = coverage_curve_no_attack(
            protocol, n, b, rounds=ROUNDS
        ).coverage
        refined = coverage_curve_no_attack(
            protocol, n, b, rounds=ROUNDS, refined=True
        ).coverage
        sim = monte_carlo(
            Scenario(
                protocol=protocol, n=n, crashed_fraction=crashed_fraction,
                threshold=1.0,
            ),
            runs=runs(1),
            seed=seed,
            horizon=ROUNDS,
        ).coverage_by_round()
        out[protocol] = (analysis, refined, sim)
    return out


def _check_and_record(name, title, panel):
    table = Table(title, ["protocol", "series"] + [f"r={r}" for r in CHECKPOINTS])
    for protocol, (analysis, refined, sim) in panel.items():
        table.add_row(protocol, "analysis", *[analysis[r] for r in CHECKPOINTS])
        table.add_row(protocol, "refined", *[refined[r] for r in CHECKPOINTS])
        table.add_row(protocol, "simulation", *[sim[r] for r in CHECKPOINTS])
    record(name, table)

    for protocol, (analysis, refined, sim) in panel.items():
        assert np.abs(analysis - sim).max() < 0.12, protocol
        assert np.abs(refined - sim).max() <= np.abs(analysis - sim).max() + 0.01


def test_fig13a_failure_free(benchmark):
    n = scaled(1000)
    panel = once(benchmark, lambda: _panel(n, 0.0, seed=130))
    _check_and_record(
        "fig13a",
        f"Figure 13(a): analysis vs simulation, failure-free (n={n})",
        panel,
    )


def test_fig13b_with_crashes(benchmark):
    n = scaled(1000)
    panel = once(benchmark, lambda: _panel(n, 0.1, seed=131))
    _check_and_record(
        "fig13b",
        f"Figure 13(b): analysis vs simulation, 10% crashed (n={n})",
        panel,
    )
