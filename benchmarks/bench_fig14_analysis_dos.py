"""Figure 14: Appendix C analysis vs simulation under DoS (six panels).

The paper's grid: α = 10 % at x ∈ {32, 64, 128}, and x = 128 at
α ∈ {40 %, 60 %, 80 %}, all at n = 120 with 10 % malicious members.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs

from repro.adversary import AttackSpec
from repro.analysis import coverage_curve_attack
from repro.sim import Scenario, monte_carlo
from repro.util import Table

N = 120
B = 12  # 10 % malicious
PANELS = [
    ("a", 0.1, 32),
    ("b", 0.1, 64),
    ("c", 0.1, 128),
    ("d", 0.4, 128),
    ("e", 0.6, 128),
    ("f", 0.8, 128),
]
ROUNDS = 40
CHECKPOINTS = [3, 6, 10, 16, 25, 40]


def _panel(alpha, x, seed):
    attack = AttackSpec(alpha=alpha, x=float(x))
    out = {}
    for protocol in ("drum", "push", "pull"):
        analysis = coverage_curve_attack(
            protocol, N, B, attack, rounds=ROUNDS, refined=True
        ).coverage
        sim = monte_carlo(
            Scenario(
                protocol=protocol, n=N, malicious_fraction=0.1,
                attack=attack, threshold=1.0,
            ),
            runs=runs(1),
            seed=seed,
            horizon=ROUNDS,
        ).coverage_by_round()
        out[protocol] = (analysis, sim)
    return out


def test_fig14_analysis_vs_simulation_under_dos(benchmark):
    def sweep():
        return {
            (label, alpha, x): _panel(alpha, x, seed=140 + i)
            for i, (label, alpha, x) in enumerate(PANELS)
        }

    panels = once(benchmark, sweep)
    table = Table(
        f"Figure 14: analysis vs simulation under DoS (n={N})",
        ["panel", "protocol", "series"] + [f"r={r}" for r in CHECKPOINTS],
    )
    worst = 0.0
    for (label, alpha, x), panel in panels.items():
        tag = f"({label}) α={alpha:g} x={x}"
        for protocol, (analysis, sim) in panel.items():
            table.add_row(
                tag, protocol, "analysis", *[analysis[r] for r in CHECKPOINTS]
            )
            table.add_row(
                tag, protocol, "simulation", *[sim[r] for r in CHECKPOINTS]
            )
            worst = max(worst, float(np.abs(analysis - sim).max()))
    record("fig14", table)

    # The analysis must track the simulation across all six panels.
    assert worst < 0.12, f"worst analysis-vs-simulation gap {worst:.3f}"
