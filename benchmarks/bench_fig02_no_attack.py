"""Figure 2: validation without DoS attacks (Section 7.1).

(a) propagation time vs group size — O(log n);
(b) propagation time vs crashed fraction — graceful degradation.
Push and Pull slightly outperform Drum here (Drum's strict per-channel
bounds discard messages its overall capacity could have handled).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import math

from _common import once, record, runs, scaled, sweep_runner

from repro.sim import Scenario
from repro.sweep import Cell
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
SIZES = [20, 40, 120, 350, 1000]
CRASH_FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]


def test_fig02a_scaling_with_n(benchmark):
    sizes = [scaled(n) if n > 120 else n for n in SIZES]

    def sweep():
        # Per-cell seed 10 matches the pre-orchestrator serial loop.
        cells = [
            Cell(
                series=protocol, x=float(n),
                scenario=Scenario(protocol=protocol, n=n),
                runs=runs(2), seed=10,
            )
            for protocol in PROTOCOLS
            for n in sizes
        ]
        return sweep_runner().run("fig02a", cells).series()

    times = once(benchmark, sweep)
    table = Table(
        "Figure 2(a): propagation time vs n, failure-free (rounds to 99%)",
        ["protocol"] + [f"n={n}" for n in sizes],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *times[protocol])
    record("fig02a", table)

    for protocol in PROTOCOLS:
        series = times[protocol]
        # Logarithmic growth: time/log(n) roughly constant.
        ratios = [t / math.log(n) for t, n in zip(series, sizes)]
        assert max(ratios) / min(ratios) < 2.2, (protocol, ratios)


def test_fig02b_crash_failures(benchmark):
    n = 120

    def sweep():
        cells = [
            Cell(
                series=protocol, x=f,
                scenario=Scenario(protocol=protocol, n=n, crashed_fraction=f),
                runs=runs(2), seed=11,
            )
            for protocol in PROTOCOLS
            for f in CRASH_FRACTIONS
        ]
        return sweep_runner().run("fig02b", cells).series()

    times = once(benchmark, sweep)
    table = Table(
        f"Figure 2(b): propagation time vs crashed fraction (n={n})",
        ["protocol"] + [f"{f:.0%}" for f in CRASH_FRACTIONS],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *times[protocol])
    record("fig02b", table)

    for protocol in PROTOCOLS:
        series = times[protocol]
        # Graceful degradation: even 50 % crashes cost only a few rounds.
        assert series[-1] - series[0] < 4.0, (protocol, series)
