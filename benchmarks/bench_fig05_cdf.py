"""Figure 5: CDF of the fraction of correct processes holding M per round.

Under targeted attacks, Push climbs fast but stalls on the attacked
tail; Pull starts slow (M is stuck at the flooded source); Drum
dominates both.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs, scaled

from repro.adversary import AttackSpec
from repro.sim import Scenario, monte_carlo
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
ROUNDS = 30
CHECKPOINTS = [2, 5, 10, 15, 20, 30]


def _cdfs(n, alpha, x):
    out = {}
    for protocol in PROTOCOLS:
        scenario = Scenario(
            protocol=protocol,
            n=n,
            malicious_fraction=0.1,
            attack=AttackSpec(alpha=alpha, x=x),
            threshold=1.0,
        )
        result = monte_carlo(
            scenario, runs=runs(2), seed=50, horizon=ROUNDS
        )
        out[protocol] = result.coverage_by_round()
    return out


def _render(name, title, cdfs):
    table = Table(title, ["protocol"] + [f"r={r}" for r in CHECKPOINTS])
    for protocol in PROTOCOLS:
        table.add_row(protocol, *[cdfs[protocol][r] for r in CHECKPOINTS])
    record(name, table)


def test_fig05a_cdf_alpha10(benchmark):
    n = scaled(1000)
    cdfs = once(benchmark, lambda: _cdfs(n, 0.1, 128.0))
    _render(
        "fig05a",
        f"Figure 5(a): coverage CDF (n={n}, α=10%, x=128)",
        cdfs,
    )
    # Drum reaches (nearly) everyone well before the horizon.
    assert cdfs["drum"][15] > 0.99
    # Push climbs fast early (it floods the non-attacked 90 % quickly)
    # but plateaus below full coverage on the attacked tail.
    assert cdfs["push"][10] < 0.99
    # Drum completes (99 % coverage) before either baseline.
    def first_99(curve):
        hits = np.flatnonzero(curve >= 0.99)
        return hits[0] if hits.size else len(curve)

    assert first_99(cdfs["drum"]) < first_99(cdfs["push"])
    assert first_99(cdfs["drum"]) < first_99(cdfs["pull"])


def test_fig05b_cdf_alpha40(benchmark):
    n = scaled(1000)
    cdfs = once(benchmark, lambda: _cdfs(n, 0.4, 128.0))
    _render(
        "fig05b",
        f"Figure 5(b): coverage CDF (n={n}, α=40%, x=128)",
        cdfs,
    )
    def first_99(curve):
        hits = np.flatnonzero(curve >= 0.99)
        return hits[0] if hits.size else len(curve)

    assert first_99(cdfs["drum"]) <= min(
        first_99(cdfs["push"]), first_99(cdfs["pull"])
    )
    # Push's early rounds beat Pull's on average coverage even though
    # Pull reaches the 99% threshold sooner — the paper's paradox.
    assert cdfs["push"][5] > cdfs["pull"][5]
