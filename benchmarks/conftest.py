"""Benchmark collection configuration."""

collect_ignore = ["_common.py"]
