"""Chaos smoke harness: one fault plan, all three execution stacks.

Runs the PR-acceptance fault plan — 10% crash at round 5, a 40/60
partition over rounds 8-15, Gilbert–Elliott bursty loss — through the
exact round engine, the vectorised Monte-Carlo engine, and the
discrete-event cluster, **twice each with the same seed**, and asserts
the two passes produce identical results.  That pins the seed-
determinism contract the fault layer promises (the live threaded stack
is exercised by tests instead: wall-clock runs are only plan-level
deterministic).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos_smoke.py --check

``--check`` exits non-zero on any mismatch or on residual reliability
falling below the recorded floors; without it the results are printed
only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import RESULTS_DIR

from repro.des.cluster import ClusterConfig, run_throughput_experiment
from repro.sim import RoundSimulator, Scenario, run_fast

#: The acceptance plan (see ISSUE/EXPERIMENTS: combined crash +
#: partition + bursty loss).
CHAOS = "crash@5:0.1;partition@8-15:0.4;gilbert:0.01,0.3,0.05,0.25"
SEED = 2024

#: Minimum mean residual reliability each stack must sustain under the
#: plan.  Drum reaches every reachable process in these configurations;
#: the floors leave a little room for future protocol-parameter drift.
FLOORS = {"exact": 0.99, "fast": 0.99, "des": 0.95}


def run_exact_stack() -> dict:
    scenario = Scenario(
        protocol="drum", n=30, loss=0.01, max_rounds=120, faults=CHAOS
    )
    passes = []
    for _ in range(2):
        result = RoundSimulator(scenario, seed=SEED).run()
        passes.append(
            json.dumps(result.to_jsonable(), sort_keys=True)
        )
    result = RoundSimulator(scenario, seed=SEED).run()
    return {
        "deterministic": passes[0] == passes[1],
        "residual_reliability": float(result.residual_reliability),
        "rounds_to_heal": (
            None
            if result.rounds_to_heal is None or np.isnan(result.rounds_to_heal)
            else float(result.rounds_to_heal)
        ),
        "final_count": int(result.counts[-1]),
    }


def run_fast_stack() -> dict:
    scenario = Scenario(
        protocol="drum", n=60, loss=0.01, max_rounds=150, faults=CHAOS
    )
    a = run_fast(scenario, runs=20, seed=SEED)
    b = run_fast(scenario, runs=20, seed=SEED)
    deterministic = bool(
        np.array_equal(a.counts, b.counts)
        and np.array_equal(a.reachable_holders, b.reachable_holders)
    )
    return {
        "deterministic": deterministic,
        "residual_reliability": float(a.residual_reliability().mean()),
        "mean_final_count": float(a.counts[:, -1].mean()),
    }


def run_des_stack() -> dict:
    config = ClusterConfig(
        protocol="drum", n=20, malicious_fraction=0.1,
        send_rate=20.0, messages=30,
        faults="crash@3:0.15;partition@5-9:0.4;gilbert:0.01,0.3,0.05,0.25",
    )
    a = run_throughput_experiment(config, seed=SEED)
    b = run_throughput_experiment(config, seed=SEED)
    ja = json.dumps(a.to_jsonable(), sort_keys=True)
    jb = json.dumps(b.to_jsonable(), sort_keys=True)
    return {
        "deterministic": ja == jb,
        "residual_reliability": a.residual_reliability(),
        "delivery_ratio": a.delivery_ratio(),
        "reachable_receivers": len(a.reachable_receivers),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail on nondeterminism or residual reliability below floor",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    results = {
        "exact": run_exact_stack(),
        "fast": run_fast_stack(),
        "des": run_des_stack(),
    }
    print(json.dumps({"plan": CHAOS, "seed": SEED, **results}, indent=2))

    out = args.output or RESULTS_DIR / "BENCH_chaos_smoke.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump({"plan": CHAOS, "seed": SEED, **results}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    if args.check:
        failures = []
        for stack, payload in results.items():
            if not payload["deterministic"]:
                failures.append(f"{stack}: repeated seeded runs differ")
            if payload["residual_reliability"] < FLOORS[stack]:
                failures.append(
                    f"{stack}: residual reliability "
                    f"{payload['residual_reliability']:.4f} < {FLOORS[stack]}"
                )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("check passed: all stacks deterministic and above floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
