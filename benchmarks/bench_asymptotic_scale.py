"""Section 6 asymptotics, measured: Drum O(log n) vs pull Θ(n).

The paper's asymptotic analysis says a DoS adversary who concentrates a
budget proportional to n on the source leaves Drum's propagation time
logarithmic in n, while pull-only gossip needs rounds linear in n
before the source ever wins a pull-request slot against the flood.
This benchmark produces the first *empirical* version of that figure,
on the packed mega engine (:mod:`repro.sim.mega`) across
n ∈ {10³, 10⁴, 10⁵, 10⁶}:

- the **scale sweep** (``repro.sweep.scale_grid``): drum vs pull mean
  rounds-to-threshold under the single-victim targeted attack
  (α = 1/n, x = budget·n), resumable through the shared sweep store;
- the **mega spot run**: one seeded n = 10⁶ drum run, twice, asserting
  byte-identical repeats and the packed engine's memory ceiling
  (``peak_state_bytes`` plus process RSS);
- the **equivalence gate**: the statistical harness
  (``tests/equivalence.py``) pins mega against the dense fast engine
  at n = 10³ and n = 10⁴ before any mega-only scale is trusted.

Usage::

    PYTHONPATH=src python benchmarks/bench_asymptotic_scale.py --reduced --check

``--reduced`` caps the sweep at n = 10⁵ with a handful of runs per
point (the n = 10⁶ spot run always happens — it *is* the acceptance
criterion); ``--check`` exits non-zero when any gate fails.  Results
land in ``benchmarks/results/BENCH_mega.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import resource
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, mc_kwargs, runs, sweep_runner

sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

import equivalence as eq

from repro.adversary.attacks import AttackSpec
from repro.sim.mega import run_mega
from repro.sim.runner import monte_carlo
from repro.sim.scenario import Scenario
from repro.sweep import scale_grid

NS_FULL = [10**3, 10**4, 10**5, 10**6]
NS_REDUCED = [10**3, 10**4, 10**5]

#: Sweep budget per node.  Deliberately gentler than the spot run's so
#: pull is *uncensored* at n = 10³ — the superlinear growth is then
#: visible in the data instead of saturating at max_rounds everywhere.
SWEEP_BUDGET = 1.0
SWEEP_SEED = 97
MAX_ROUNDS = 400

#: The n = 10⁶ acceptance run: full Section-6 pressure (8 fabricated
#: messages per node per round, all aimed at the source).
SPOT_N = 10**6
SPOT_BUDGET = 8.0
SPOT_SEED = 777

#: Ceilings for the spot run.  The packed engine holds ~50 MB of state
#: at n = 10⁶ (bitmaps are n/8 bytes; the sender stash dominates);
#: the RSS ceiling additionally covers the interpreter + numpy.
PEAK_STATE_CEILING = 128 * 1024 * 1024
RSS_CEILING = 1024 * 1024 * 1024

#: Drum's log-growth ceiling: mean rounds must stay under this multiple
#: of log2(n) at every sweep point (measured ≈ 0.7–1.1 · log2 n).
DRUM_LOG_FACTOR = 2.5

#: Equivalence-gate scales: (n, runs-per-engine, fast seed, mega seed).
EQUIV_CASES = [(10**3, 120, 501, 502), (10**4, 40, 601, 602)]


def run_scale_sweep(ns, sweep_runs):
    report, rows = scale_grid(
        ["drum", "pull"],
        ns,
        budget_per_node=SWEEP_BUDGET,
        runs=sweep_runs,
        seed=SWEEP_SEED,
        max_rounds=MAX_ROUNDS,
    )
    cells = [cell for row in rows for cell in row]
    series = sweep_runner().run("asymptotic_scale", cells).series()
    return {
        "ns": list(ns),
        "runs_per_point": sweep_runs,
        "budget_per_node": SWEEP_BUDGET,
        "mean_rounds": {name: list(map(float, series[name])) for name in series},
    }


def run_spot() -> dict:
    scenario = Scenario(
        protocol="drum",
        n=SPOT_N,
        attack=AttackSpec(alpha=1.0 / SPOT_N, x=SPOT_BUDGET * SPOT_N),
        max_rounds=MAX_ROUNDS,
    )
    first = run_mega(scenario, 1, seed=SPOT_SEED)
    second = run_mega(scenario, 1, seed=SPOT_SEED)
    rss_bytes = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    return {
        "n": SPOT_N,
        "budget_per_node": SPOT_BUDGET,
        "mean_rounds": float(first.mean_rounds()),
        "censored_runs": int(first.censored_runs()),
        "repeat_identical": bool(
            first.counts.tobytes() == second.counts.tobytes()
        ),
        "peak_state_bytes": int(first.peak_state_bytes),
        "rss_bytes": int(rss_bytes),
        "shard_nodes": int(first.shard_nodes),
        "blocks": int(first.blocks),
    }


def run_equivalence() -> list:
    reports = []
    for n, pair_runs, seed_fast, seed_mega in EQUIV_CASES:
        scenario = Scenario(
            protocol="drum",
            n=n,
            malicious_fraction=0.1,
            attack=AttackSpec(alpha=0.1, x=64.0),
            max_rounds=200,
        )
        fast = monte_carlo(
            scenario, pair_runs, seed=seed_fast, engine="fast", **mc_kwargs()
        )
        mega = monte_carlo(
            scenario, pair_runs, seed=seed_mega, engine="mega", **mc_kwargs()
        )
        report = eq.compare_results(fast, mega)
        reports.append(
            {
                "n": n,
                "runs": pair_runs,
                "passed": bool(report.passed),
                "detail": report.describe(),
            }
        )
    return reports


def check(results) -> list:
    failures = []
    sweep = results["sweep"]
    ns = sweep["ns"]
    drum = sweep["mean_rounds"]["drum"]
    pull = sweep["mean_rounds"]["pull"]
    for n, rounds in zip(ns, drum):
        ceiling = DRUM_LOG_FACTOR * math.log2(n)
        if rounds > ceiling:
            failures.append(
                f"drum n={n}: {rounds:.1f} rounds exceeds the "
                f"O(log n) ceiling {ceiling:.1f}"
            )
    for i in range(1, len(ns)):
        drum_ratio = drum[i] / drum[i - 1]
        pull_ratio = pull[i] / pull[i - 1]
        if pull_ratio <= drum_ratio:
            failures.append(
                f"growth ordering n={ns[i - 1]}→{ns[i]}: pull grew "
                f"{pull_ratio:.2f}x, not faster than drum {drum_ratio:.2f}x"
            )
    for n, d_rounds, p_rounds in zip(ns, drum, pull):
        if p_rounds <= 3.0 * d_rounds:
            failures.append(
                f"separation n={n}: pull {p_rounds:.1f} not well above "
                f"drum {d_rounds:.1f}"
            )
    spot = results["spot"]
    if not spot["repeat_identical"]:
        failures.append("spot n=10^6: repeated seeded runs differ")
    if spot["censored_runs"]:
        failures.append("spot n=10^6: drum failed to reach the threshold")
    if spot["peak_state_bytes"] > PEAK_STATE_CEILING:
        failures.append(
            f"spot n=10^6: engine state {spot['peak_state_bytes']} B "
            f"over the {PEAK_STATE_CEILING} B ceiling"
        )
    if spot["rss_bytes"] > RSS_CEILING:
        failures.append(
            f"spot n=10^6: RSS {spot['rss_bytes']} B over the "
            f"{RSS_CEILING} B ceiling"
        )
    for gate in results["equivalence"]:
        if not gate["passed"]:
            failures.append(
                f"equivalence n={gate['n']}: {gate['detail']}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true",
        help="CI smoke: sweep to n=10^5 with few runs (spot run stays 10^6)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on any ceiling, ordering, determinism, or gate breach",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    ns = NS_REDUCED if args.reduced else NS_FULL
    sweep_runs = 5 if args.reduced else runs()
    results = {
        "sweep": run_scale_sweep(ns, sweep_runs),
        "equivalence": run_equivalence(),
        "spot": run_spot(),
    }
    print(json.dumps(results, indent=2))

    out = args.output or RESULTS_DIR / "BENCH_mega.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    if args.check:
        failures = check(results)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            "check passed: drum is O(log n), pull is not, n=10^6 fits "
            "the ceiling, engines statistically equivalent"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
