"""Asyncio runtime smoke: thousands of nodes per process under attack.

Streams a short message train through :mod:`repro.aio` clusters at
group sizes the threaded runtime cannot reach (one thread per node tops
out around a few hundred; the asyncio loop runs thousands), under the
paper's targeted DoS attack, and records wall time, delivery volume,
and residual reliability.

Gates (``--check``):

- residual reliability at/above the recorded floor for every size —
  drum keeps delivering to the non-victim processes while the attack
  saturates its victims;
- the traced event stream reconciles exactly against the packaged
  :class:`~repro.des.measurement.MeasurementResult`;
- the versioned result envelope round-trips through
  :func:`repro.api.result_from_dict` byte-identically;
- the run dispatches through the engine registry
  (``Experiment.run(engine="aio")``).

Reliability here is a *wall-clock* measurement (the aio stack declares
``determinism="wallclock"``): the fault/attack plan is seed-exact but
packet interleaving is real time, so the gate is a floor, not a golden
value.  The floor has head-room — a saturated CI runner dilates every
node's round uniformly and purging counts local rounds, so reliability
survives load (latency just stretches).

Usage::

    PYTHONPATH=src python benchmarks/bench_aio_runtime.py --reduced --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR

from repro.adversary import AttackSpec
from repro.aio import AioClusterConfig, run_aio_experiment
from repro.api import Experiment, result_from_dict
from repro.obs import Tracer

SEED = 11

#: Group sizes per mode.  The full sizes include the acceptance-scale
#: n=2000 run; the reduced sizes keep CI wall time in seconds.
SIZES = {"full": (500, 2000), "reduced": (200, 600)}

#: Minimum residual reliability at every size, victims included in the
#: receiver set.  The attack targets 1% of the group at x=64 fabrications
#: per round; drum's separate-resource design keeps the stream flowing.
RELIABILITY_FLOOR = 0.99

ATTACK = AttackSpec(alpha=0.01, x=64.0)


def config_for(n: int, *, reduced: bool) -> AioClusterConfig:
    return AioClusterConfig(
        protocol="drum",
        n=n,
        loss=0.01,
        attack=ATTACK,
        round_duration_ms=200.0 if reduced else 500.0,
        purge_rounds=20,
        send_rate=20.0,
        messages=5,
        drain_rounds=8.0,
    )


def run_size(n: int, *, reduced: bool) -> dict:
    tracer = Tracer(thread_safe=True)
    config = config_for(n, reduced=reduced)
    started = time.perf_counter()
    result = run_aio_experiment(config, seed=SEED, tracer=tracer)
    wall_s = time.perf_counter() - started

    envelope = result.to_dict()
    round_trip = result_from_dict(envelope).to_dict() == envelope
    latencies = [r.latency_ms for r in result.deliveries if r.latency_ms > 0]
    return {
        "n": n,
        "victims": ATTACK.victim_count(n),
        "wall_s": round(wall_s, 3),
        "deliveries": len(result.deliveries),
        "residual_reliability": result.residual_reliability(),
        "mean_latency_ms": (
            round(sum(latencies) / len(latencies), 1) if latencies else None
        ),
        "reconcile_problems": tracer.counters.reconcile_measurement(result),
        "envelope_round_trip": round_trip,
    }


def run_registry_dispatch(n: int) -> dict:
    """The same workload through ``Experiment.run(engine="aio")``."""
    result = Experiment(
        protocol="drum", n=n, loss=0.01,
        round_duration_ms=100.0, send_rate=20.0, messages=3,
    ).run("aio", seed=SEED)
    envelope = result.to_dict()
    return {
        "n": n,
        "deliveries": len(result.deliveries),
        "envelope_kind": envelope["kind"],
        "envelope_round_trip": result_from_dict(envelope).to_dict()
        == envelope,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true",
        help="CI sizes (n in %s) instead of the acceptance-scale sizes"
        % (SIZES["reduced"],),
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on a reliability floor breach, reconciliation "
             "mismatch, or envelope drift",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    mode = "reduced" if args.reduced else "full"
    sizes = SIZES[mode]
    results = {
        "mode": mode,
        "seed": SEED,
        "attack": {"alpha": ATTACK.alpha, "x": ATTACK.x},
        "sizes": [run_size(n, reduced=args.reduced) for n in sizes],
        "registry_dispatch": run_registry_dispatch(min(sizes) // 4),
    }
    print(json.dumps(results, indent=2))

    out = args.output or RESULTS_DIR / "BENCH_aio.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    if args.check:
        failures = []
        for row in results["sizes"]:
            if row["residual_reliability"] < RELIABILITY_FLOOR:
                failures.append(
                    f"n={row['n']}: residual reliability "
                    f"{row['residual_reliability']:.4f} < "
                    f"{RELIABILITY_FLOOR}"
                )
            if row["reconcile_problems"]:
                failures.append(
                    f"n={row['n']}: trace reconciliation: "
                    f"{row['reconcile_problems']}"
                )
            if not row["envelope_round_trip"]:
                failures.append(f"n={row['n']}: envelope round-trip drift")
        dispatch = results["registry_dispatch"]
        if dispatch["deliveries"] == 0 or not dispatch["envelope_round_trip"]:
            failures.append("registry dispatch run failed")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            "check passed: reliability above floor, traces reconciled, "
            "envelopes stable"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
