"""Observability overhead benchmark: tracing off must cost nothing.

The `repro.obs` contract has two measurable halves:

1. *Off-switch identity* — with no tracer attached, the golden seeded
   drum run renders **byte-identical** to the committed
   ``tests/golden/exact_drum.json``, and a *traced* run of the same
   seed renders the same bytes (instrumentation draws no randomness).
2. *Bounded cost* — a fully traced exact run (per-packet events into a
   ``MemorySink``) stays within a small multiple of the untraced run,
   and the traced event stream reconciles exactly against the engine's
   ``RunResult``.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --check

``--check`` exits non-zero on any byte diff, reconciliation mismatch,
or traced overhead above the threshold; without it the measurements are
printed and recorded only.  Results append to ``BENCH_obs.json`` at the
repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.obs import MemorySink, Tracer, summarize
from repro.sim import Scenario, run_fast
from repro.sim.engine import RoundSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"
GOLDEN = REPO_ROOT / "tests" / "golden" / "exact_drum.json"

#: The golden drum case from tests/test_exact_golden.py.
SEED = 1234

#: A traced run may cost at most this multiple of an untraced run.
#: Generous because event emission is pure-Python dict work while the
#: engine itself is partly vectorised; the hard guarantees (byte
#: identity, reconciliation) are deterministic and carry the gate.
MAX_TRACED_OVERHEAD = 3.0


def golden_scenario() -> Scenario:
    from repro.adversary.attacks import AttackSpec

    return Scenario(
        protocol="drum",
        n=48,
        malicious_fraction=0.1,
        attack=AttackSpec(alpha=0.25, x=32.0),
        max_rounds=200,
    )


def render(result) -> str:
    return json.dumps(result.to_jsonable(), sort_keys=True, indent=1) + "\n"


def _time(fn, repeats: int):
    """(best wall seconds, last return value) over ``repeats`` calls."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_benchmark(repeats: int) -> dict:
    scenario = golden_scenario()
    golden = GOLDEN.read_text()

    untraced_s, untraced = _time(
        lambda: RoundSimulator(scenario, seed=SEED).run(), repeats
    )

    def traced_run():
        sink = MemorySink()
        tracer = Tracer(sink)
        result = RoundSimulator(scenario, seed=SEED, tracer=tracer).run()
        return result, tracer, sink

    traced_s, (traced, tracer, sink) = _time(traced_run, repeats)

    summary = summarize(sink.events)
    counts = [int(v) for v in traced.counts]

    # The vectorised engine emits aggregate events; same off/on identity.
    fast_scenario = scenario.with_(max_rounds=120)
    fast_plain_s, fast_plain = _time(
        lambda: run_fast(fast_scenario, runs=50, seed=SEED), repeats
    )
    fast_traced_s, fast_traced = _time(
        lambda: run_fast(fast_scenario, runs=50, seed=SEED, tracer=Tracer()),
        repeats,
    )

    return {
        "golden_bytes_untraced": render(untraced) == golden,
        "golden_bytes_traced": render(traced) == golden,
        "reconcile_mismatches": tracer.counters.reconcile_run(traced),
        "replay_counts_match": summary.infection_counts() == counts,
        "events": len(sink),
        "untraced_seconds": round(untraced_s, 4),
        "traced_seconds": round(traced_s, 4),
        "traced_overhead": round(traced_s / untraced_s, 3),
        "fast_untraced_seconds": round(fast_plain_s, 4),
        "fast_traced_seconds": round(fast_traced_s, 4),
        "fast_counts_identical": bool(
            (fast_plain.counts == fast_traced.counts).all()
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail on byte diffs, reconciliation mismatches, or traced "
             f"overhead above {MAX_TRACED_OVERHEAD}x",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per variant (best-of, default 3)",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(args.repeats)
    entry = {
        "name": "obs_overhead_golden_drum",
        "seed": SEED,
        **results,
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    print(json.dumps(entry, indent=2))

    entries = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            entries = []
    entries.append(entry)
    BENCH_PATH.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")

    if args.check:
        failures = []
        if not results["golden_bytes_untraced"]:
            failures.append("untraced run diverged from the golden bytes")
        if not results["golden_bytes_traced"]:
            failures.append("tracing perturbed the golden seeded run")
        if results["reconcile_mismatches"]:
            failures.append(
                f"counters disagree with RunResult: "
                f"{results['reconcile_mismatches']}"
            )
        if not results["replay_counts_match"]:
            failures.append("replay summary diverged from engine counts")
        if not results["fast_counts_identical"]:
            failures.append("tracing perturbed the fast engine")
        if results["traced_overhead"] > MAX_TRACED_OVERHEAD:
            failures.append(
                f"traced overhead {results['traced_overhead']}x > "
                f"{MAX_TRACED_OVERHEAD}x"
            )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            "check passed: byte-identical off and on, counters reconcile, "
            f"traced overhead {results['traced_overhead']}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
