"""Figure 1: acceptance probabilities p_u and p_a (Appendix A).

(a) ``p_u`` vs the fan-out F — always above 0.6;
(b) ``p_a`` vs the flood rate x at F = 4, against the coarse F/x bound.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import once, record

from repro.analysis import (
    accept_probability_attacked,
    accept_probability_unattacked,
)
from repro.analysis.acceptance import coarse_bound_attacked
from repro.util import Table

N = 1000
FAN_OUTS = list(range(1, 11))
RATES = [8, 16, 32, 64, 128, 256]


def test_fig01a_pu_vs_fanout(benchmark):
    values = once(
        benchmark,
        lambda: [accept_probability_unattacked(N, f) for f in FAN_OUTS],
    )
    table = Table("Figure 1(a): p_u vs fan-out F (n=1000)", ["F", "p_u"])
    for fan_out, p_u in zip(FAN_OUTS, values):
        table.add_row(fan_out, p_u)
    record("fig01a", table)
    assert all(p > 0.6 for p in values), "paper: p_u > 0.6 for every F"


def test_fig01b_pa_vs_rate(benchmark):
    values = once(
        benchmark,
        lambda: [accept_probability_attacked(N, 4, x) for x in RATES],
    )
    table = Table(
        "Figure 1(b): p_a vs attack rate x (n=1000, F=4)",
        ["x", "p_a", "F/x bound"],
    )
    for x, p_a in zip(RATES, values):
        table.add_row(x, p_a, coarse_bound_attacked(4, x))
    record("fig01b", table)
    for x, p_a in zip(RATES, values):
        assert p_a < coarse_bound_attacked(4, x), "paper: p_a < F/x"
    assert all(a > b for a, b in zip(values, values[1:])), "p_a decreasing in x"
