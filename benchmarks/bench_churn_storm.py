"""Churn-storm harness: dynamic membership across the round engines.

Subjects a Drum group to the canonical churn storm — a 20% join wave,
a 10% logout, a 10% expulsion — optionally on top of a targeted DoS
attack, and pins the two properties the churn layer promises:

- **determinism**: repeated same-seed runs on the exact, fast, and mega
  engines are byte-identical (full result envelope, churn stats
  included), so the resolved membership timeline is reproducible on
  every stack;
- **robustness**: Drum's residual reliability over the certified-and-
  alive set stays above a recorded floor while the storm is in flight.

Without ``--reduced`` the harness also regenerates the churn-storm
figure (Drum vs push vs pull, reliability vs churn fraction under a
concurrent attack) through the resumable sweep runner.

Usage::

    PYTHONPATH=src python benchmarks/bench_churn_storm.py --reduced --check

``--check`` exits non-zero on any mismatch or floor violation; without
it the results are printed and recorded only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import RESULTS_DIR, record, runs, store, workers

from repro.sim import Scenario, run_fast, run_mega
from repro.sim.engine import RoundSimulator
from repro.sim.sweeps import churn_sweep

#: The canonical storm: a join wave mid-propagation, a logout while the
#: joiners are still catching up, an expulsion on its heels.
STORM = "join@4:0.2; leave@9:0.1; expel@13:0.1"
SEED = 2026

#: Minimum mean residual reliability (over the certified-and-alive set)
#: Drum must sustain through the storm, per engine.  Membership events
#: ride the multicast itself, so these floors also bound how much the
#: storm may disturb payload dissemination.
FLOORS = {"exact": 0.95, "fast": 0.97, "mega": 0.97}


def scenario(n: int) -> Scenario:
    return Scenario(
        protocol="drum", n=n, fan_out=4, loss=0.01, max_rounds=60,
        faults=STORM,
    )


def envelope(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True, default=float)


def run_exact(n: int) -> dict:
    sc = scenario(n)
    a = RoundSimulator(sc, seed=SEED).run()
    b = RoundSimulator(sc, seed=SEED).run()
    return {
        "deterministic": envelope(a) == envelope(b),
        "residual_reliability": float(a.residual_reliability),
        "timeline": a.churn["timeline"],
        "join_latency": a.churn["join_latency"],
    }


def run_vectorised(engine, n: int, run_count: int) -> dict:
    sc = scenario(n)
    a = engine(sc, run_count, seed=SEED)
    b = engine(sc, run_count, seed=SEED)
    return {
        "deterministic": envelope(a) == envelope(b),
        "residual_reliability": float(a.residual_reliability().mean()),
        "join_latency": float(np.nanmean(a.join_latency())),
    }


def run_figure(reduced: bool) -> None:
    """Reliability vs churn fraction, Drum vs push vs pull, under DoS."""
    report = churn_sweep(
        ["drum", "push", "pull"],
        [0.0, 0.05, 0.1, 0.2, 0.3],
        x=64.0,
        alpha=0.1,
        n=80 if reduced else 120,
        runs=runs(4 if reduced else 1),
        seed=SEED,
        max_rounds=250,
        workers=workers(),
        store=store(),
        name="churn_storm_figure",
    )
    record("churn_storm", report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true",
        help="small groups and run counts; skip the sweep figure",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on nondeterminism or residual reliability below floor",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    n = 40 if args.reduced else 120
    results = {
        "exact": run_exact(30 if args.reduced else 60),
        "fast": run_vectorised(run_fast, n, 20 if args.reduced else 100),
        "mega": run_vectorised(run_mega, n, 8 if args.reduced else 40),
    }
    payload = {"storm": STORM, "seed": SEED, **results}
    print(json.dumps(payload, indent=2))

    out = args.output or RESULTS_DIR / "BENCH_churn.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    if not args.reduced:
        run_figure(reduced=False)

    if args.check:
        failures = []
        for stack, data in results.items():
            if not data["deterministic"]:
                failures.append(f"{stack}: repeated seeded runs differ")
            if data["residual_reliability"] < FLOORS[stack]:
                failures.append(
                    f"{stack}: residual reliability "
                    f"{data['residual_reliability']:.4f} < {FLOORS[stack]}"
                )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("check passed: engines deterministic and above floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
