"""Sweep-orchestrator smoke gate: key stability, resume accounting.

Three properties the resumable sweep machinery must hold, each cheap
enough for CI:

1. **Key stability across processes** — the content-address of a
   scenario with an attack and a fault plan computed here equals the
   one computed by a fresh ``python -c`` subprocess.  This is the
   regression gate for the v2 ``repr``-fallback bug, where numpy
   scalars keyed differently between environments and every cache
   lookup silently missed.
2. **Resume-cell accounting** — running a k-cell prefix of an N-cell
   grid and then the full grid computes exactly N − k cells the second
   time; a third identical run computes zero.
3. **100 % cache-hit rate on a repeated identical grid** — verified
   through the obs counters (zero ``cell_finish(cached=False)``
   events), with the figure JSON byte-identical to the first run.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_resume.py --check

``--check`` exits non-zero when any property fails; without it the
results are printed and recorded only.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR

from repro.obs import Tracer
from repro.sim.sweeps import rate_sweep
from repro.sweep import SweepRunner, rate_grid

PROTOCOLS = ["drum", "push"]
RATES = [0.0, 32.0]
GRID = dict(n=30, alpha=0.1, runs=8, seed=5, max_rounds=60)

#: The scenario the cross-process key check hashes: every token class
#: the canonical encoder must keep stable (enum-valued protocol, float
#: attack fields, a parsed fault plan, an int seed).
KEY_SNIPPET = """
from repro.adversary import AttackSpec
from repro.sim import Scenario
from repro.sim.parallel import ResultCache
scenario = Scenario(
    protocol="drum", n=40, malicious_fraction=0.1,
    attack=AttackSpec(alpha=0.2, x=64.0), max_rounds=100,
    faults="crash@5:0.1;partition@8-15:0.4",
)
print(ResultCache("/tmp/unused").key(scenario, 50, seed=9, engine="fast"))
"""


def check_key_stability() -> dict:
    """Compare an in-process key with a fresh subprocess's."""
    import io
    import os
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        exec(compile(KEY_SNIPPET, "<key-snippet>", "exec"), {})
    local_key = buffer.getvalue().strip()

    proc = subprocess.run(
        [sys.executable, "-c", KEY_SNIPPET],
        capture_output=True, text=True,
        env={
            **os.environ,
            "PYTHONPATH": str(Path(__file__).parent.parent / "src"),
        },
    )
    subprocess_key = proc.stdout.strip()
    return {
        "local_key": local_key,
        "subprocess_key": subprocess_key,
        "stable": bool(local_key) and local_key == subprocess_key,
        "subprocess_ok": proc.returncode == 0,
    }


def check_resume_accounting(store_root: Path) -> dict:
    """Prefix run then full run: exactly the unfinished cells compute."""
    _, cells = rate_grid(PROTOCOLS, RATES, **GRID)
    flat = [cell for row in cells for cell in row]
    k = len(flat) // 2
    runner = SweepRunner(store=store_root, workers=1)

    prefix = runner.run("resume_check_prefix", flat[:k])
    full_1 = runner.run("resume_check", flat)
    full_2 = runner.run("resume_check", flat)
    return {
        "cells": len(flat),
        "prefix_computed": prefix.computed,
        "after_prefix_computed": full_1.computed,
        "after_prefix_cache_hits": full_1.cache_hits,
        "rerun_computed": full_2.computed,
        "rerun_cache_hits": full_2.cache_hits,
        "values_stable": full_1.values == full_2.values,
        "ok": (
            prefix.computed == k
            and full_1.computed == len(flat) - k
            and full_1.cache_hits == k
            and full_2.computed == 0
            and full_2.cache_hits == len(flat)
            and full_1.values == full_2.values
        ),
    }


def check_cache_hit_rate(store_root: Path) -> dict:
    """Two identical figure sweeps: second is all cache, same bytes."""
    first_tracer, second_tracer = Tracer(), Tracer()
    first = rate_sweep(
        PROTOCOLS, RATES, store=store_root, workers=1,
        tracer=first_tracer, malicious_fraction=0.1, **GRID,
    )
    second = rate_sweep(
        PROTOCOLS, RATES, store=store_root, workers=1,
        tracer=second_tracer, malicious_fraction=0.1, **GRID,
    )
    counters = second_tracer.counters
    return {
        "first_computed": first_tracer.counters.sweep_cells_computed,
        "second_computed": counters.sweep_cells_computed,
        "second_cache_hits": counters.sweep_cache_hits,
        "figure_bytes_identical": first.to_json() == second.to_json(),
        "ok": (
            counters.sweep_cells_computed == 0
            and counters.sweep_cache_hits == len(PROTOCOLS) * len(RATES)
            and first.to_json() == second.to_json()
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail on unstable keys, wrong resume accounting, or a "
             "cache miss on a repeated identical grid",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        results = {
            "key_stability": check_key_stability(),
            "resume_accounting": check_resume_accounting(Path(tmp) / "a"),
            "cache_hit_rate": check_cache_hit_rate(Path(tmp) / "b"),
        }
    print(json.dumps(results, indent=2))

    out = args.output or RESULTS_DIR / "BENCH_sweep.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    if args.check:
        failures = [
            f"{name}: {json.dumps(payload)}"
            for name, payload in results.items()
            if not payload.get("ok", payload.get("stable"))
        ]
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            "check passed: keys process-stable, resume recomputes only "
            "unfinished cells, repeated grids are 100% cache hits"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
