"""Ablation (beyond the paper): why the random ports are *encrypted*.

A snooping adversary wiretaps every packet and redirects its pull budget
onto any reply port it can read.  With Drum's sealed envelopes the tap
harvests nothing and the attack stays flat in x; with cleartext ports
the harvested live ports are flooded and Drum degrades like the
well-known-ports variant — quantifying Section 4's encryption mandate.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs

from repro.adversary import AttackSpec, SnoopingAttacker
from repro.sim import RoundSimulator, Scenario
from repro.util import Table, spawn_seeds

N = 60
RATES = [32, 64, 128, 256]


def _mean_rounds(distribute_keys, x, seed_root):
    scenario = Scenario(
        protocol="drum",
        n=N,
        malicious_fraction=0.1,
        attack=AttackSpec(alpha=0.1, x=float(x)),
        max_rounds=300,
    )

    def factory(scn, network, seed):
        return SnoopingAttacker(
            scn.attack, scn.protocol, scn.attacked_ids(), network, seed=seed
        )

    times = []
    for seed in spawn_seeds(seed_root, max(20, runs(5))):
        sim = RoundSimulator(
            scenario,
            seed=seed,
            attacker_factory=factory,
            distribute_keys=distribute_keys,
        )
        rounds = sim.run().rounds_to_threshold()
        times.append(rounds if not np.isnan(rounds) else scenario.max_rounds)
    return float(np.mean(times))


def test_snooping_adversary(benchmark):
    def sweep():
        return {
            "sealed ports (Drum)": [
                _mean_rounds(True, x, seed_root=800) for x in RATES
            ],
            "cleartext ports": [
                _mean_rounds(False, x, seed_root=801) for x in RATES
            ],
        }

    data = once(benchmark, sweep)
    table = Table(
        f"Ablation: snooping adversary vs port encryption (n={N}, α=10%)",
        ["variant"] + [f"x={x}" for x in RATES],
    )
    for variant, times in data.items():
        table.add_row(variant, *times)
    record("snooping", table)

    sealed = data["sealed ports (Drum)"]
    cleartext = data["cleartext ports"]
    # Encryption keeps the snooper harmless: flat in x.
    assert sealed[-1] - sealed[0] < 2.5, sealed
    # Cleartext ports hand the snooper a working attack: grows with x.
    assert cleartext[-1] - cleartext[0] > 2.5, cleartext
    assert cleartext[-1] > sealed[-1] + 2.0