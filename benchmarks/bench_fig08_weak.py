"""Figure 8: weak fixed-budget attacks against Drum.

Attacks with budgets of 0.25x / 0.5x / 1x the system's total capacity
(B = 0.9n, 1.8n, 3.6n) barely move Drum's propagation time at any
extent.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import once, record, runs, scaled

from repro.adversary import fixed_budget_sweep
from repro.sim import Scenario, monte_carlo
from repro.util import Table

EXTENTS = [0.1, 0.3, 0.5, 0.7, 0.9]
BUDGETS_PER_N = [0.0, 0.9, 1.8, 3.6]  # c = 0, 0.25, 0.5, 1


def _drum_sweep(n, seed):
    rows = {}
    for budget_per_n in BUDGETS_PER_N:
        times = []
        if budget_per_n == 0.0:
            baseline = monte_carlo(
                Scenario(protocol="drum", n=n, malicious_fraction=0.1),
                runs=runs(2),
                seed=seed,
            ).mean_rounds()
            times = [baseline] * len(EXTENTS)
        else:
            for spec in fixed_budget_sweep(budget_per_n * n, EXTENTS, n):
                scenario = Scenario(
                    protocol="drum",
                    n=n,
                    malicious_fraction=0.1,
                    attack=spec,
                    max_rounds=200,
                )
                times.append(
                    monte_carlo(scenario, runs=runs(2), seed=seed).mean_rounds()
                )
        rows[budget_per_n] = times
    return rows


def _check_and_record(name, n, rows):
    table = Table(
        f"Figure 8: Drum under weak fixed-budget attacks (n={n})",
        ["B"] + [f"α={a:g}" for a in EXTENTS],
    )
    for budget_per_n, times in rows.items():
        label = "none" if budget_per_n == 0 else f"{budget_per_n:g}n"
        table.add_row(label, *times)
    record(name, table)

    baseline = rows[0.0][0]
    for budget_per_n, times in rows.items():
        # Little impact: within a few rounds of the attack-free baseline
        # even at the strongest (c = 1, all-out) weak attack.
        assert max(times) < baseline + 3.5, (budget_per_n, times)
        assert max(times) < 1.6 * baseline, (budget_per_n, times)


def test_fig08a_weak_attacks_n120(benchmark):
    rows = once(benchmark, lambda: _drum_sweep(120, seed=80))
    _check_and_record("fig08a", 120, rows)


def test_fig08b_weak_attacks_n500(benchmark):
    n = scaled(500)
    rows = once(benchmark, lambda: _drum_sweep(n, seed=81))
    _check_and_record("fig08b", n, rows)
