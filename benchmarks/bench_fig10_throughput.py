"""Figure 10: received throughput under increasing attack strength.

Streams from a single source at 40 msg/s on the full-protocol
measurement platform with purge-after-10-rounds buffers: Drum's
throughput stays at the send rate, Push degrades slightly, Pull
collapses as its flooded source fails to export messages before they
purge.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import once, record

from repro.adversary import AttackSpec
from repro.des import ClusterConfig, run_throughput_experiment
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
RATES = [0, 32, 64, 128]
EXTENTS = [0.1, 0.2, 0.4, 0.6]
N = 50

BASE = ClusterConfig(
    n=N,
    malicious_fraction=0.1,
    messages=1600,
    send_rate=40.0,
    round_duration_ms=1000.0,
    max_sends_per_partner=60,
)


def _throughput(protocol, attack, seed):
    config = BASE.with_(protocol=protocol, attack=attack)
    result = run_throughput_experiment(config, seed=seed)
    return result.throughput().mean_msgs_per_sec


def test_fig10a_throughput_vs_rate(benchmark):
    def sweep():
        return {
            protocol: [
                _throughput(
                    protocol,
                    AttackSpec(alpha=0.1, x=float(x)) if x else None,
                    seed=100,
                )
                for x in RATES
            ]
            for protocol in PROTOCOLS
        }

    rates = once(benchmark, sweep)
    table = Table(
        f"Figure 10(a): received throughput vs x (n={N}, α=10%, send 40/s)",
        ["protocol"] + [f"x={x}" for x in RATES],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *rates[protocol])
    record("fig10a", table)

    # Drum unaffected by increasing x.
    assert min(rates["drum"]) > 0.97 * rates["drum"][0]
    # Pull decreases dramatically; Push at most slightly.
    assert rates["pull"][-1] < 0.85 * rates["pull"][0]
    assert rates["push"][-1] > 0.90 * rates["push"][0]
    assert rates["pull"][-1] < rates["push"][-1] < rates["drum"][-1] + 0.5


def test_fig10b_throughput_vs_extent(benchmark):
    def sweep():
        return {
            protocol: [
                _throughput(protocol, AttackSpec(alpha=a, x=128.0), seed=101)
                for a in EXTENTS
            ]
            for protocol in PROTOCOLS
        }

    rates = once(benchmark, sweep)
    table = Table(
        f"Figure 10(b): received throughput vs α (n={N}, x=128, send 40/s)",
        ["protocol"] + [f"α={a:g}" for a in EXTENTS],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *rates[protocol])
    record("fig10b", table)

    # Pull drastically affected for every α > 0; Drum degrades gracefully.
    assert rates["pull"][0] < 0.85 * 40.0
    assert rates["drum"][0] > 0.95 * 40.0
    for i in range(len(EXTENTS)):
        assert rates["drum"][i] >= rates["pull"][i] - 0.5
