"""Figure 3: targeted DoS attacks (Section 7.2).

(a) propagation time vs attack rate x at α = 10 % — Drum flat, Push and
    Pull linear;
(b) propagation time vs attack extent α at x = 128 — all grow (B grows),
    but Drum stays far ahead.
Both panels at the paper's two group sizes (120 and 1000).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import once, record, runs, scaled, sweep_runner

from repro.adversary import AttackSpec
from repro.metrics import dos_impact
from repro.sim import Scenario
from repro.sweep import Cell
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
RATES = [0, 16, 32, 64, 128]
EXTENTS = [0.1, 0.2, 0.4, 0.6, 0.8]


def _cell(protocol, n, x, attack, seed, divisor):
    scenario = Scenario(
        protocol=protocol,
        n=n,
        malicious_fraction=0.1,
        attack=attack,
        max_rounds=400,
    )
    return Cell(
        series=protocol, x=float(x), scenario=scenario,
        runs=runs(divisor), seed=seed,
    )


def _rate_sweep(name, n, divisor):
    # Per-cell seeds match the pre-orchestrator benchmark, so the v2
    # serial loop and this resumable grid print identical figures.
    cells = [
        _cell(
            protocol, n, x,
            AttackSpec(alpha=0.1, x=float(x)) if x else None,
            seed=30, divisor=divisor,
        )
        for protocol in PROTOCOLS
        for x in RATES
    ]
    return sweep_runner().run(name, cells).series()


def _extent_sweep(name, n, divisor):
    cells = [
        _cell(
            protocol, n, a, AttackSpec(alpha=a, x=128.0),
            seed=31, divisor=divisor,
        )
        for protocol in PROTOCOLS
        for a in EXTENTS
    ]
    return sweep_runner().run(name, cells).series()


def test_fig03a_rate_sweep_n120(benchmark):
    times = once(benchmark, lambda: _rate_sweep("fig03a_n120", 120, 1))
    table = Table(
        "Figure 3(a): propagation time vs x (n=120, α=10%)",
        ["protocol"] + [f"x={x}" for x in RATES],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *times[protocol])
    record("fig03a_n120", table)

    assert dos_impact("x", RATES, times["drum"]).is_resistant
    assert dos_impact("x", RATES, times["push"]).degrades_linearly
    assert dos_impact("x", RATES, times["pull"]).degrades_linearly
    assert times["drum"][-1] < times["pull"][-1] < times["push"][-1]


def test_fig03a_rate_sweep_n1000(benchmark):
    n = scaled(1000)
    times = once(benchmark, lambda: _rate_sweep(f"fig03a_n{n}", n, 2))
    table = Table(
        f"Figure 3(a): propagation time vs x (n={n}, α=10%)",
        ["protocol"] + [f"x={x}" for x in RATES],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *times[protocol])
    record("fig03a_n1000", table)
    assert dos_impact("x", RATES, times["drum"]).is_resistant
    assert times["drum"][-1] < times["push"][-1]


def test_fig03b_extent_sweep_n120(benchmark):
    times = once(benchmark, lambda: _extent_sweep("fig03b_n120", 120, 1))
    table = Table(
        "Figure 3(b): propagation time vs α (n=120, x=128)",
        ["protocol"] + [f"α={a:g}" for a in EXTENTS],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *times[protocol])
    record("fig03b_n120", table)

    for protocol in PROTOCOLS:
        series = times[protocol]
        assert series[-1] > series[0], protocol  # B grows with α
    for i in range(len(EXTENTS)):
        assert times["drum"][i] <= min(times["push"][i], times["pull"][i]) + 0.5


def test_fig03b_extent_sweep_n1000(benchmark):
    n = scaled(1000)
    times = once(benchmark, lambda: _extent_sweep(f"fig03b_n{n}", n, 2))
    table = Table(
        f"Figure 3(b): propagation time vs α (n={n}, x=128)",
        ["protocol"] + [f"α={a:g}" for a in EXTENTS],
    )
    for protocol in PROTOCOLS:
        table.add_row(protocol, *times[protocol])
    record("fig03b_n1000", table)
    for i in range(len(EXTENTS)):
        assert times["drum"][i] <= min(times["push"][i], times["pull"][i]) + 0.5
