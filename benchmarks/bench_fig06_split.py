"""Figure 6: propagation to the non-attacked vs the attacked processes.

Push reaches the non-attacked processes very fast but takes ages to
penetrate the attacked set; Pull is slow everywhere (source escape);
Drum is fast on both sides.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs, scaled

from repro.adversary import AttackSpec
from repro.sim import Scenario, monte_carlo
from repro.util import Table

PROTOCOLS = ("drum", "push", "pull")
RATES = [16, 32, 64, 128]


def _split_sweep(n):
    out = {}
    for protocol in PROTOCOLS:
        to_non, to_att = [], []
        for x in RATES:
            # threshold=1.0 keeps runs alive until everyone has M, so
            # the per-subset 99 % thresholds are observed, not censored.
            scenario = Scenario(
                protocol=protocol,
                n=n,
                malicious_fraction=0.1,
                attack=AttackSpec(alpha=0.1, x=float(x)),
                threshold=1.0,
                max_rounds=400,
            )
            result = monte_carlo(scenario, runs=runs(2), seed=60)
            to_non.append(
                float(np.nanmean(
                    result.rounds_to_subset_threshold("non_attacked", 0.99)
                ))
            )
            to_att.append(
                float(np.nanmean(
                    result.rounds_to_subset_threshold("attacked", 0.99)
                ))
            )
        out[protocol] = (to_non, to_att)
    return out


def test_fig06_subset_propagation(benchmark):
    n = scaled(1000)
    data = once(benchmark, lambda: _split_sweep(n))

    table = Table(
        f"Figure 6: rounds to 99% of each subset (n={n}, α=10%)",
        ["protocol", "subset"] + [f"x={x}" for x in RATES],
    )
    for protocol in PROTOCOLS:
        to_non, to_att = data[protocol]
        table.add_row(protocol, "non-attacked", *to_non)
        table.add_row(protocol, "attacked", *to_att)
    record("fig06", table)

    push_non, push_att = data["push"]
    drum_non, drum_att = data["drum"]
    pull_non, pull_att = data["pull"]
    # Push: fast to the non-attacked, very slow to the attacked.
    assert push_att[-1] > 2.5 * push_non[-1]
    # Pull treats both subsets alike (random reply ports make the
    # requester's attack status irrelevant); the whole protocol is
    # slowed by the source escape instead.
    assert abs(pull_att[-1] - pull_non[-1]) < 2.0
    assert pull_non[-1] > 2 * drum_non[-1]
    # Drum: both subsets fast, and far faster than the baselines'
    # attacked side.
    assert drum_att[-1] < 0.6 * min(push_att[-1], pull_att[-1])
    assert drum_att[-1] < drum_non[-1] + 4
