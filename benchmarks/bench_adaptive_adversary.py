"""Ablation (beyond the paper): adaptive adversaries against Drum.

The paper's adversary is static.  Here, attackers of equal per-round
budget re-target every round: a *rotating* attacker moves its victim set
randomly, and an omniscient *frontier* attacker always floods exactly
the processes that do not yet hold M.  Drum's design argument — an
attacked process can still send and still receive — predicts adaptivity
buys the adversary very little, and this benchmark quantifies that.
Push, for contrast, suffers visibly more from the frontier attacker.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import once, record, runs

from repro.adversary import AttackSpec, FrontierAttacker, RotatingAttacker
from repro.sim import RoundSimulator, Scenario
from repro.util import Table, spawn_seeds

N = 60
STRATEGIES = {
    "static": None,
    "rotating": RotatingAttacker,
    "frontier (omniscient)": FrontierAttacker,
}


def _mean_rounds(protocol, attacker_cls, x, seed_root):
    scenario = Scenario(
        protocol=protocol,
        n=N,
        malicious_fraction=0.1,
        attack=AttackSpec(alpha=0.2, x=float(x)),
        max_rounds=300,
    )
    times = []
    for seed in spawn_seeds(seed_root, max(20, runs(5))):
        sim = RoundSimulator(scenario, seed=seed, attacker_cls=attacker_cls)
        rounds = sim.run().rounds_to_threshold()
        times.append(rounds if not np.isnan(rounds) else scenario.max_rounds)
    return float(np.mean(times))


def test_adaptive_adversaries(benchmark):
    def sweep():
        out = {}
        for protocol in ("drum", "push"):
            out[protocol] = {
                name: _mean_rounds(protocol, cls, 64, seed_root=900)
                for name, cls in STRATEGIES.items()
            }
        return out

    data = once(benchmark, sweep)
    table = Table(
        f"Ablation: adaptive adversaries, equal budget (n={N}, α=20%, x=64)",
        ["protocol"] + list(STRATEGIES),
    )
    for protocol, by_strategy in data.items():
        table.add_row(protocol, *[by_strategy[s] for s in STRATEGIES])
    record("adaptive_adversary", table)

    drum = data["drum"]
    # Adaptivity gains the adversary little against Drum...
    assert drum["frontier (omniscient)"] < drum["static"] + 4.0
    assert drum["rotating"] < drum["static"] + 3.0
    # ...and Drum under the omniscient attacker still beats Push under
    # the plain static one.
    assert drum["frontier (omniscient)"] < data["push"]["static"]
