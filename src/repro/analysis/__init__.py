"""Closed-form and numerical analysis of the protocols under DoS.

Reproduces the paper's mathematics:

- :mod:`repro.analysis.acceptance` — Appendix A: the probabilities
  ``p_u`` / ``p_a`` that a valid message is accepted by a non-attacked /
  attacked process, and their properties (``p_u > 0.6``,
  ``p_a < F/x``, the ``dp_a/dα`` bound of Lemma 7).
- :mod:`repro.analysis.pull_source` — Appendix B: the probability ``p̃``
  that M escapes the source in a round under Pull, and the geometric
  escape-time distribution behind Pull's huge variance.
- :mod:`repro.analysis.asymptotic` — Section 6: Drum's effective
  fan-in/fan-out (Lemmas 1–2), Push's lower bound (Lemma 4 /
  Corollary 1), and Pull's linear escape time (Lemma 6 / Corollary 2).
- :mod:`repro.analysis.numerical` — Appendix C: the exact round-by-round
  recursion for the expected number of processes holding M, with and
  without DoS attacks, cross-validated against the simulators
  (Figures 13–14).
"""

from repro.analysis.acceptance import (
    accept_probability_attacked,
    accept_probability_unattacked,
    attacked_probability_derivative_x,
)
from repro.analysis.pull_source import (
    escape_probability,
    expected_escape_rounds,
    escape_time_std,
    probability_still_stuck,
)
from repro.analysis.asymptotic import (
    drum_effective_degrees,
    drum_propagation_upper_bound_rounds,
    push_propagation_lower_bound,
    pull_escape_lower_bound,
)
from repro.analysis.numerical import (
    AnalysisCurves,
    coverage_curve_attack,
    coverage_curve_no_attack,
    discard_probability,
    discard_probability_attacked,
)

__all__ = [
    "AnalysisCurves",
    "accept_probability_attacked",
    "accept_probability_unattacked",
    "attacked_probability_derivative_x",
    "coverage_curve_attack",
    "coverage_curve_no_attack",
    "discard_probability",
    "discard_probability_attacked",
    "drum_effective_degrees",
    "drum_propagation_upper_bound_rounds",
    "escape_probability",
    "escape_time_std",
    "expected_escape_rounds",
    "probability_still_stuck",
    "pull_escape_lower_bound",
    "push_propagation_lower_bound",
]
