"""Appendix A: per-message acceptance probabilities.

A process accepts at most ``F`` messages per round on a channel.  Given
that some correct process sent it a message, the number of *other* valid
messages competing in the same round is ``Y - 1 ~ Binomial(n-2, q)``
with ``q = F/(n-1)``; an attacked process additionally receives ``x``
fabricated messages.  The acceptance probability of the tagged message
is ``E[min(1, F/(Y + x))]``.

The paper's headline facts, all reproduced here and checked by tests:

- ``p_u > 0.6`` for every fan-out (Lemma 8 / Figure 1a);
- ``p_a < F/x`` (the coarse bound behind every asymptotic result);
- ``dp_a/dα < F/(αx)`` for fixed-budget attacks (Lemma 7).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.util import check_non_negative


def _validate(n: int, fan_out: int) -> None:
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    if not 1 <= fan_out < n:
        raise ValueError(f"fan_out must be in [1, n), got {fan_out}")


def _competition_pmf(n: int, fan_out: int) -> np.ndarray:
    """PMF of ``Y`` (total valid arrivals, including the tagged message).

    ``Y`` ranges over 1..n-1; entry ``i`` of the returned array is
    ``Pr(Y = i + 1)``.
    """
    q = fan_out / (n - 1)
    y_minus_1 = np.arange(0, n - 1)
    return stats.binom.pmf(y_minus_1, n - 2, q)


def accept_probability_unattacked(n: int, fan_out: int) -> float:
    """``p_u``: acceptance probability at a non-attacked process."""
    _validate(n, fan_out)
    pmf = _competition_pmf(n, fan_out)
    y = np.arange(1, n)
    accept = np.minimum(1.0, fan_out / y)
    return float(np.sum(accept * pmf))


def accept_probability_attacked(n: int, fan_out: int, x: float) -> float:
    """``p_a``: acceptance probability at a process flooded with ``x``.

    ``x`` is the number of fabricated messages landing on the same
    channel per round.  ``x = 0`` reduces to ``p_u``.
    """
    _validate(n, fan_out)
    check_non_negative("x", x)
    pmf = _competition_pmf(n, fan_out)
    y = np.arange(1, n)
    accept = np.minimum(1.0, fan_out / (y + x))
    return float(np.sum(accept * pmf))


def attacked_probability_derivative_x(n: int, fan_out: int, x: float) -> float:
    """``dp_a/dx``: always negative — more flood, less acceptance.

    Only the flooded regime (``y + x > F``) contributes; the paper's
    Appendix A computes the same sum for ``x >= F``, where every term is
    flooded.
    """
    _validate(n, fan_out)
    check_non_negative("x", x)
    pmf = _competition_pmf(n, fan_out)
    y = np.arange(1, n)
    flooded = (y + x) > fan_out
    terms = np.where(flooded, -fan_out / (y + x) ** 2, 0.0)
    return float(np.sum(terms * pmf))


def attacked_probability_derivative_alpha(
    n: int, fan_out: int, total_strength: float, alpha: float
) -> float:
    """``dp_a/dα`` under a fixed budget ``B``: ``x = B/(αn)``.

    Lemma 7 bounds this above by ``F/(αx)``; it is positive — widening
    a fixed-budget attack *raises* each victim's acceptance probability
    because each victim is hit more lightly.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    x = total_strength / (alpha * n)
    dp_dx = attacked_probability_derivative_x(n, fan_out, x)
    dx_dalpha = -total_strength / (alpha**2 * n)
    return dp_dx * dx_dalpha


def coarse_bound_attacked(fan_out: int, x: float) -> float:
    """The paper's coarse bound ``p_a < F/x`` (for ``x > 0``)."""
    if x <= 0:
        raise ValueError(f"x must be > 0 for the F/x bound, got {x}")
    return fan_out / x
