"""Section 6: asymptotic latency bounds.

The paper's central qualitative claims, as computable functions:

- **Drum** (Lemmas 1–2): the effective per-round fan-in/fan-out of every
  process is bounded below by a constant independent of the attack rate
  ``x``, so propagation time stays bounded; and for strong fixed-budget
  attacks the adversary's best strategy is to spread over *all*
  processes.
- **Push** (Lemma 4 / Corollary 1): a lower bound on propagation time
  that grows linearly in ``x`` — the attacked processes' intake shrinks
  like ``F·α·p_a = O(1/x)``.
- **Pull** (Lemma 6 / Corollary 2): the expected time for M to leave the
  attacked source grows linearly in ``x``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.acceptance import (
    accept_probability_attacked,
    accept_probability_unattacked,
)


@dataclass(frozen=True)
class EffectiveDegrees:
    """Effective expected fan-in/out of attacked and non-attacked processes."""

    attacked: float
    unattacked: float


def drum_effective_degrees(
    n: int, fan_out: int, alpha: float, x: float
) -> EffectiveDegrees:
    """Equations (6)–(7): Drum's effective fan-in = fan-out per class.

    ``O^a = I^a = F((α+1)/2 · p_a + (1-α)/2 · p_u)`` and
    ``O^u = I^u = F(α/2 · p_a + (2-α)/2 · p_u)``.
    """
    if not 0 <= alpha <= 1:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    p_a = accept_probability_attacked(n, fan_out, x)
    p_u = accept_probability_unattacked(n, fan_out)
    attacked = fan_out * ((alpha + 1) / 2 * p_a + (1 - alpha) / 2 * p_u)
    unattacked = fan_out * (alpha / 2 * p_a + (2 - alpha) / 2 * p_u)
    return EffectiveDegrees(attacked=attacked, unattacked=unattacked)


def drum_degree_lower_bound(n: int, fan_out: int, alpha: float) -> float:
    """Lemma 1's x-independent floor on every Drum process's degree.

    As ``x → ∞``, ``p_a → 0`` and the attacked processes' degree tends
    to ``F·(1-α)/2·p_u`` — still a positive constant for ``α < 1``,
    which is why Drum's propagation time cannot be driven up by rate
    alone.
    """
    if not 0 <= alpha < 1:
        raise ValueError(f"alpha must be in [0, 1) for the bound, got {alpha}")
    p_u = accept_probability_unattacked(n, fan_out)
    return fan_out * (1 - alpha) / 2 * p_u


def drum_propagation_upper_bound_rounds(
    n: int, fan_out: int, alpha: float
) -> float:
    """A constant (x-independent) upper bound on Drum's propagation time.

    With every process's effective degree at least ``d`` (Lemma 1's
    floor), an epidemic reaches n processes in ``O(log n / log(1 + d))``
    rounds [Pittel'87, KSSV'00]; the constant here is indicative, the
    point being its *independence of x*.
    """
    d = drum_degree_lower_bound(n, fan_out, alpha)
    if d <= 0:
        return float("inf")
    return math.log(n) / math.log(1.0 + d) + 1.0


def push_propagation_lower_bound(
    n: int, fan_out: int, alpha: float, x: float
) -> float:
    """Lemma 4: rounds for Push to reach everyone, from below.

    ``(ln n - ln((1-α)n + 1)) / ln(1 + F·α·p_a)`` — even if every
    non-attacked process already has M, pushing it into the attacked set
    takes this long.  Grows as Θ(x) (Corollary 1).
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    p_a = accept_probability_attacked(n, fan_out, x)
    rate = fan_out * alpha * p_a
    if rate <= 0:
        return float("inf")
    return (math.log(n) - math.log((1 - alpha) * n + 1)) / math.log(1 + rate)


def pull_escape_lower_bound(n: int, fan_out: int, x: float) -> float:
    """Lemma 6: expected rounds for M to leave the source, from below.

    Over-estimates ``p̃`` by letting all ``n-1`` processes pull from the
    source every round with per-request read probability below ``F/x``:
    ``E[escape] > 1 / (1 - (1 - F/x)^{n-1})``.  Θ(x) for fixed n
    (Corollary 2 via Lemma 5).
    """
    if x <= fan_out:
        return 1.0
    p_tilde_upper = 1.0 - (1.0 - fan_out / x) ** (n - 1)
    return 1.0 / p_tilde_upper


def lemma3_log_bound(a: float) -> bool:
    """Lemma 3: ``1/ln(1 + 1/a) < a + 1`` for all ``a > 0``."""
    if a <= 0:
        raise ValueError(f"a must be > 0, got {a}")
    return 1.0 / math.log(1.0 + 1.0 / a) < a + 1.0


def lemma5_theta_x(x: float, fan_out: int, b: int) -> float:
    """Lemma 5's quantity ``x^b / (x^b - (x-F)^b)``, computed stably.

    Sandwiched between ``(x-F)/(bF)`` and ``x/(bF) + 1``; Θ(x) for
    fixed b.  Evaluated in log-space so large exponents do not overflow.
    """
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    if x <= fan_out:
        raise ValueError(f"x must exceed fan_out, got x={x}, F={fan_out}")
    # x^b / (x^b - (x-F)^b) = 1 / (1 - r^b), r = 1 - F/x
    ratio_pow = math.exp(b * math.log(1.0 - fan_out / x))
    return 1.0 / (1.0 - ratio_pow)
