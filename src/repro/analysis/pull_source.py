"""Appendix B: how long M stays stuck at an attacked Pull source.

Under Pull, M leaves the source only when a *valid* pull-request wins
one of the source's ``F`` acceptance slots against the ``x`` fabricated
requests flooding the same port.  With ``Y ~ Binomial(n-1, F/(n-1))``
valid requests in a round, the probability that at least one valid
request is read is

    p̃ = E[ 1 - Π_{k=0..F-1} (x - k) / (Y + x - k) ]

and the escape time is geometric with parameter ``p̃`` — the huge
standard deviation that dominates Pull's behaviour in Figures 4 and 5.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.util import check_non_negative


def _validate(n: int, fan_out: int, x: float) -> None:
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    if not 1 <= fan_out < n:
        raise ValueError(f"fan_out must be in [1, n), got {fan_out}")
    check_non_negative("x", x)


def escape_probability(n: int, fan_out: int, x: float) -> float:
    """``p̃``: probability that M leaves the source in a given round."""
    _validate(n, fan_out, x)
    q = fan_out / (n - 1)
    y = np.arange(0, n)  # number of valid pull-requests received
    pmf = stats.binom.pmf(y, n - 1, q)
    if x < fan_out:
        # Fewer fabricated requests than slots: any valid request that
        # arrives when y + x <= F is certainly read.
        p_read = np.empty_like(pmf)
        for i, yi in enumerate(y):
            if yi == 0:
                p_read[i] = 0.0
            elif yi + x <= fan_out:
                p_read[i] = 1.0
            else:
                p_read[i] = 1.0 - _none_read(yi, x, fan_out)
        return float(np.sum(p_read * pmf))
    p_read = np.array(
        [0.0 if yi == 0 else 1.0 - _none_read(yi, x, fan_out) for yi in y]
    )
    return float(np.sum(p_read * pmf))


def _none_read(y: int, x: float, fan_out: int) -> float:
    """Probability that none of ``y`` valid requests is among the ``F``
    read out of ``y + x`` arrivals: Π_k (x - k)/(y + x - k)."""
    prob = 1.0
    slots = min(fan_out, int(y + x))
    for k in range(slots):
        num = x - k
        if num <= 0:
            return 0.0
        prob *= num / (y + x - k)
    return prob


def expected_escape_rounds(n: int, fan_out: int, x: float) -> float:
    """``1/p̃``: expected rounds until M leaves the source."""
    p = escape_probability(n, fan_out, x)
    if p <= 0:
        return float("inf")
    return 1.0 / p


def escape_time_std(n: int, fan_out: int, x: float) -> float:
    """``sqrt(1 - p̃)/p̃``: std of the geometric escape time.

    For ``F = 4``, ``x = 128``, ``n = 1000`` this evaluates to ≈ 8.2
    rounds — the paper's explanation of Pull's measured 9.3-round STD.
    """
    p = escape_probability(n, fan_out, x)
    if p <= 0:
        return float("inf")
    return float(np.sqrt(1.0 - p) / p)


def probability_still_stuck(n: int, fan_out: int, x: float, rounds: int) -> float:
    """``(1 - p̃)^rounds``: chance M has not left the source yet.

    The paper reports 0.54 / 0.30 / 0.16 for 5 / 10 / 15 rounds at
    ``F = 4``, ``x = 128``.
    """
    if rounds < 0:
        raise ValueError(f"rounds must be >= 0, got {rounds}")
    p = escape_probability(n, fan_out, x)
    return float((1.0 - p) ** rounds)
