"""Appendix C: exact round-by-round numerical analysis.

Computes the full probability distribution of the number of correct
processes holding M at the start of each round, for Push, Pull, and
Drum, with and without a DoS attack — the curves the paper overlays on
its simulations in Figures 13 and 14 and finds "virtually identical".

Model (the paper's):

- the tagged message competes with ``Y - 1`` other valid arrivals on a
  channel, where ``Y - 1 ~ Binomial(n - b - 2, q·(1-ε))`` with
  ``q = |view|/(n-1)`` (link loss thins the binomial exactly);
- an attacked channel additionally receives ``X̂ ~ Binomial(x_port,
  1-ε)`` fabricated messages;
- per-(sender, target, round) success probabilities ``p_push`` /
  ``p_pull`` compose into the probability ``q*`` that *no* holder
  infects a given process this round, and the number of new holders per
  class is binomial — iterated over rounds as an exact recursion on the
  joint distribution of (non-attacked holders, attacked holders).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats

from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolConfig, ProtocolKind

#: Probability mass below which a state is dropped from the recursion.
_MASS_TOL = 1e-12


def _truncated_binom(n: int, p: float, tol: float = 1e-10) -> Tuple[int, np.ndarray]:
    """Support offset and pmf of Binomial(n, p), truncated to mass > tol."""
    if n <= 0 or p <= 0.0:
        return 0, np.ones(1)
    ks = np.arange(n + 1)
    pmf = stats.binom.pmf(ks, n, p)
    keep = np.flatnonzero(pmf > tol)
    if len(keep) == 0:
        return int(np.argmax(pmf)), np.ones(1)
    lo, hi = keep[0], keep[-1]
    window = pmf[lo : hi + 1]
    return int(lo), window / window.sum()


def _push_miss_table(
    n: int,
    b: int,
    view: int,
    f_in: int,
    loss: float,
    x_port: float,
    max_holders: int,
) -> np.ndarray:
    """Exact ``q_push(i)``: P(no holder's push is accepted | i holders).

    Refines the paper's independent-holder approximation
    ``(1 - p_push)^i``: when several holders push to the same flooded
    channel, the accepted subset is drawn *without replacement*, so

        P(none of k holder arrivals accepted | total load t)
            = C(t - k, F) / C(t, F)

    which is strictly smaller than ``((t - F)/t)^k``.  The table is
    indexed by the holder count ``i``; arrival counts are binomial with
    truncated supports, so the whole table costs well under a second
    even at n = 1000.
    """
    alive = n - b
    s = (view / (n - 1)) * (1.0 - loss)
    x_int = int(round(x_port))
    x_off, x_pmf = _truncated_binom(x_int, 1.0 - loss)
    table = np.ones(max_holders + 1)
    for i in range(1, max_holders + 1):
        k_off, k_pmf = _truncated_binom(i, s)
        o_off, o_pmf = _truncated_binom(max(0, alive - 1 - i), s)
        k_vals = k_off + np.arange(len(k_pmf))
        o_vals = o_off + np.arange(len(o_pmf))
        x_vals = x_off + np.arange(len(x_pmf))
        total = (
            k_vals[:, None, None] + o_vals[None, :, None] + x_vals[None, None, :]
        ).astype(float)
        k_grid = k_vals[:, None, None].astype(float)
        # P(no holder arrival accepted) = Π_{j<k} (t - F - j)/(t - j);
        # zero when k > t - F (some holder arrival must be accepted),
        # and one when k = 0.
        miss = np.ones_like(total)
        max_k = int(k_vals[-1])
        run = np.ones_like(total)
        for j in range(max_k):
            factor = np.clip((total - f_in - j), 0.0, None) / np.maximum(
                total - j, 1.0
            )
            run = run * factor
            miss = np.where(k_grid == j + 1, run, miss)
        miss = np.where(k_grid == 0, 1.0, miss)
        table[i] = float(
            np.einsum("k,o,x,kox->", k_pmf, o_pmf, x_pmf, miss)
        )
    return table


def discard_probability(
    n: int, b: int, view_size: int, f_in: int, loss: float
) -> float:
    """``d``: probability a delivered valid message is discarded (no attack).

    The channel accepts ``f_in`` messages per round; the tagged message
    is discarded with probability ``(Y - f_in)/Y`` when ``Y > f_in``.
    """
    if view_size == 0:
        return 0.0
    alive = n - b
    if alive < 3:
        return 0.0
    q = view_size / (n - 1)
    y_other = np.arange(0, alive - 1)  # Y - 1
    pmf = stats.binom.pmf(y_other, alive - 2, q * (1.0 - loss))
    y = y_other + 1
    discard = np.where(y > f_in, (y - f_in) / y, 0.0)
    return float(np.sum(discard * pmf))


def discard_probability_attacked(
    n: int, b: int, view_size: int, f_in: int, loss: float, x_port: float
) -> float:
    """``d^a``: discard probability at a process flooded with ``x_port``."""
    if view_size == 0:
        return 0.0
    alive = n - b
    if alive < 3:
        return 0.0
    x_int = int(round(x_port))
    if x_int == 0:
        return discard_probability(n, b, view_size, f_in, loss)
    q = view_size / (n - 1)
    y_other = np.arange(0, alive - 1)
    pmf_y = stats.binom.pmf(y_other, alive - 2, q * (1.0 - loss))
    x_hat = np.arange(0, x_int + 1)
    pmf_x = stats.binom.pmf(x_hat, x_int, 1.0 - loss)
    y = (y_other + 1)[:, None]
    total = y + x_hat[None, :]
    discard = np.maximum(0.0, (total - f_in) / total)
    return float(pmf_y @ discard @ pmf_x)


@dataclass(frozen=True)
class _LinkProbs:
    """Per-(sender, target, round) success probabilities by class."""

    push_u: float
    push_a: float
    pull_u: float
    pull_a: float


def _link_probabilities(
    kind: ProtocolKind,
    n: int,
    b: int,
    fan_out: int,
    loss: float,
    attack: Optional[AttackSpec],
) -> _LinkProbs:
    cfg = ProtocolConfig(kind=kind, fan_out=fan_out)
    vp, vq = cfg.view_push_size, cfg.view_pull_size
    fp, fq = cfg.push_in_bound, cfg.pull_in_bound
    load = attack.port_load(kind) if attack is not None else None

    def _push(x_port: float) -> float:
        if vp == 0:
            return 0.0
        d = (
            discard_probability_attacked(n, b, vp, fp, loss, x_port)
            if x_port > 0
            else discard_probability(n, b, vp, fp, loss)
        )
        return (vp / (n - 1)) * (1.0 - loss) * (1.0 - d)

    def _pull(x_port: float) -> float:
        if vq == 0:
            return 0.0
        d = (
            discard_probability_attacked(n, b, vq, fq, loss, x_port)
            if x_port > 0
            else discard_probability(n, b, vq, fq, loss)
        )
        return (vq / (n - 1)) * (1.0 - loss) ** 2 * (1.0 - d)

    return _LinkProbs(
        push_u=_push(0.0),
        push_a=_push(load.push if load else 0.0),
        pull_u=_pull(0.0),
        pull_a=_pull(load.pull_request if load else 0.0),
    )


@dataclass
class AnalysisCurves:
    """Expected coverage per round, total and split by attack class.

    ``completion`` (when tracked) holds, per round, the *probability*
    that the coverage target has been reached — the full distribution of
    the propagation time, not just its expectation.
    """

    kind: ProtocolKind
    coverage: np.ndarray
    coverage_attacked: Optional[np.ndarray] = None
    coverage_unattacked: Optional[np.ndarray] = None
    completion: Optional[np.ndarray] = None
    completion_fraction: Optional[float] = None

    def expected_rounds_to_completion(self) -> float:
        """E[rounds to the tracked coverage fraction] = Σ (1 - CDF).

        Requires the curve to have been computed with
        ``track_completion``; the horizon tail contributes its censored
        mass at the final round.
        """
        if self.completion is None:
            raise ValueError(
                "curve was computed without track_completion"
            )
        survival = 1.0 - self.completion
        return float(survival[:-1].sum())

    def rounds_to_fraction(self, fraction: float) -> float:
        """First round at which expected coverage reaches ``fraction``.

        Interpolates linearly between rounds; ``nan`` if never reached
        within the computed horizon.
        """
        cov = self.coverage
        idx = np.argmax(cov >= fraction)
        if cov[idx] < fraction:
            return float("nan")
        if idx == 0:
            return 0.0
        prev, cur = cov[idx - 1], cov[idx]
        return float(idx - 1 + (fraction - prev) / (cur - prev))


def coverage_curve_no_attack(
    kind: ProtocolKind,
    n: int,
    b: int = 0,
    *,
    fan_out: int = 4,
    loss: float = 0.01,
    rounds: int = 30,
    refined: bool = False,
    track_completion: Optional[float] = None,
) -> AnalysisCurves:
    """Expected coverage per round without an attack (Figure 13).

    ``b`` counts inactive group members — crashed or adversary-silenced
    — which neither send nor receive.  ``refined=True`` replaces the
    paper's independent-holder approximation of push acceptance with the
    exact without-replacement computation (see :func:`_push_miss_table`),
    which tracks the object-level simulation even more closely.
    ``track_completion=0.99`` additionally records, per round, the exact
    probability that 99 % coverage has been reached — the propagation
    time's distribution rather than just the coverage expectation.
    """
    kind = ProtocolKind(kind)
    cfg = ProtocolConfig(kind=kind, fan_out=fan_out)
    probs = _link_probabilities(kind, n, b, fan_out, loss, None)
    alive = n - b

    holders = np.arange(alive + 1)
    if kind.uses_push:
        if refined:
            push_miss = _push_miss_table(
                n, b, cfg.view_push_size, cfg.push_in_bound, loss, 0.0, alive
            )
        else:
            push_miss = (1.0 - probs.push_u) ** holders
    else:
        push_miss = np.ones(alive + 1)
    if kind.uses_pull:
        if refined:
            # The requester sends exactly |view_pull| requests, so the
            # miss probability saturates with the holder fraction rather
            # than decaying per holder.
            succ = probs.pull_u * (n - 1) / cfg.view_pull_size
            pull_miss = np.clip(
                1.0 - holders * succ / (n - 1), 0.0, 1.0
            ) ** cfg.view_pull_size
        else:
            pull_miss = (1.0 - probs.pull_u) ** holders
    else:
        pull_miss = np.ones(alive + 1)
    infect_by_holders = 1.0 - push_miss * pull_miss

    dist = np.zeros(alive + 1)
    dist[1] = 1.0
    coverage = [1.0 / alive]
    j_all = np.arange(alive + 1)
    target = (
        max(1, math.ceil(track_completion * alive - 1e-9))
        if track_completion is not None
        else None
    )
    completion = (
        [float(dist[target:].sum())] if target is not None else None
    )
    for _ in range(rounds):
        new_dist = np.zeros(alive + 1)
        support = np.flatnonzero(dist > _MASS_TOL)
        for i in support:
            remaining = alive - i
            pmf = stats.binom.pmf(
                np.arange(remaining + 1), remaining, infect_by_holders[i]
            )
            new_dist[i : alive + 1] += dist[i] * pmf
        dist = new_dist
        coverage.append(float(dist @ j_all) / alive)
        if completion is not None:
            completion.append(float(dist[target:].sum()))
    return AnalysisCurves(
        kind=kind,
        coverage=np.asarray(coverage),
        completion=np.asarray(completion) if completion is not None else None,
        completion_fraction=track_completion,
    )


def coverage_curve_attack(
    kind: ProtocolKind,
    n: int,
    b: int,
    attack: AttackSpec,
    *,
    fan_out: int = 4,
    loss: float = 0.01,
    rounds: int = 30,
    refined: bool = False,
    track_completion: Optional[float] = None,
) -> AnalysisCurves:
    """Expected coverage per round under a DoS attack (Figure 14).

    Tracks the exact joint distribution of (non-attacked holders,
    attacked holders); the source is attacked, as in the paper.
    ``refined=True`` uses the exact without-replacement push acceptance
    (see :func:`_push_miss_table`) instead of the paper's
    independent-holder product.
    """
    kind = ProtocolKind(kind)
    if kind not in (ProtocolKind.DRUM, ProtocolKind.PUSH, ProtocolKind.PULL):
        raise ValueError(
            f"Appendix C covers Drum, Push, and Pull; got {kind}"
        )
    probs = _link_probabilities(kind, n, b, fan_out, loss, attack)
    num_attacked = attack.victim_count(n)
    alive = n - b
    n_a = num_attacked
    n_u = alive - num_attacked
    if n_a < 1:
        raise ValueError("the attack must target at least the source")

    push_miss_u = push_miss_a = None
    pull_refined = None
    if refined:
        cfg = ProtocolConfig(kind=kind, fan_out=fan_out)
        load = attack.port_load(kind)
        if kind.uses_push:
            push_miss_u = _push_miss_table(
                n, b, cfg.view_push_size, cfg.push_in_bound, loss, 0.0, alive
            )
            push_miss_a = _push_miss_table(
                n,
                b,
                cfg.view_push_size,
                cfg.push_in_bound,
                loss,
                load.push,
                alive,
            )
        if kind.uses_pull:
            v = cfg.view_pull_size
            pull_refined = (
                probs.pull_u * (n - 1) / v,
                probs.pull_a * (n - 1) / v,
                v,
            )

    # Joint distribution over (i_u, i_a); the source starts alone.
    dist = np.zeros((n_u + 1, n_a + 1))
    dist[0, 1] = 1.0

    ju = np.arange(n_u + 1)
    ja = np.arange(n_a + 1)
    cov_total, cov_a, cov_u = [], [], []
    target = (
        max(1, math.ceil(track_completion * alive - 1e-9))
        if track_completion is not None
        else None
    )
    completion: Optional[list] = [] if target is not None else None
    total_holders = ju[:, None] + ja[None, :]

    def _record() -> None:
        mass_u = dist.sum(axis=1)
        mass_a = dist.sum(axis=0)
        e_u = float(mass_u @ ju)
        e_a = float(mass_a @ ja)
        cov_u.append(e_u / n_u if n_u else 1.0)
        cov_a.append(e_a / n_a)
        cov_total.append((e_u + e_a) / alive)
        if completion is not None:
            completion.append(float(dist[total_holders >= target].sum()))

    _record()
    for _ in range(rounds):
        new_dist = np.zeros_like(dist)
        idx_u, idx_a = np.nonzero(dist > _MASS_TOL)
        for i_u, i_a in zip(idx_u, idx_a):
            mass = dist[i_u, i_a]
            q_u, q_a = _miss_probabilities(
                kind, probs, i_u, i_a, push_miss_u, push_miss_a, pull_refined, n
            )
            rem_u = n_u - i_u
            rem_a = n_a - i_a
            pmf_u = stats.binom.pmf(np.arange(rem_u + 1), rem_u, 1.0 - q_u)
            pmf_a = stats.binom.pmf(np.arange(rem_a + 1), rem_a, 1.0 - q_a)
            new_dist[i_u:, i_a:] += mass * np.outer(pmf_u, pmf_a)
        dist = new_dist
        _record()

    return AnalysisCurves(
        kind=kind,
        coverage=np.asarray(cov_total),
        coverage_attacked=np.asarray(cov_a),
        coverage_unattacked=np.asarray(cov_u),
        completion=np.asarray(completion) if completion is not None else None,
        completion_fraction=track_completion,
    )


def _miss_probabilities(
    kind: ProtocolKind,
    probs: _LinkProbs,
    i_u: int,
    i_a: int,
    push_miss_u: Optional[np.ndarray] = None,
    push_miss_a: Optional[np.ndarray] = None,
    pull_refined: Optional[Tuple[float, float, int]] = None,
    n: Optional[int] = None,
) -> Tuple[float, float]:
    """``(q_u*, q_a*)``: probability that a given non-attacked / attacked
    process is *not* infected this round, given holder counts.

    With the refined tables/terms absent, this is exactly the paper's
    Appendix C formula; with them, push acceptance is computed without
    replacement and the pull miss reflects the requester's fixed
    fan-out.
    """
    holders = i_u + i_a
    if push_miss_u is not None:
        push_u = float(push_miss_u[holders])
        push_a = float(push_miss_a[holders])
    else:
        push_u = (1.0 - probs.push_u) ** holders
        push_a = (1.0 - probs.push_a) ** holders
    if kind is ProtocolKind.PUSH:
        return (push_u, push_a)
    if pull_refined is not None:
        succ_u, succ_a, v = pull_refined
        hit = (i_u * succ_u + i_a * succ_a) / (n - 1)
        pull_term = max(0.0, 1.0 - hit) ** v
    else:
        pull_term = (1.0 - probs.pull_u) ** i_u * (1.0 - probs.pull_a) ** i_a
    if kind is ProtocolKind.PULL:
        return (pull_term, pull_term)
    return (push_u * pull_term, push_a * pull_term)
