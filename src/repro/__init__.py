"""Drum: DoS-resistant gossip-based multicast.

A production-quality reproduction of *"Exposing and Eliminating
Vulnerabilities to Denial of Service Attacks in Secure Gossip-Based
Multicast"* (Badishi, Keidar & Sasson, DSN 2004): the Drum protocol, the
Push and Pull baselines, the Section 9 ablation variants, the paper's
DoS-evaluation methodology, its closed-form and numerical analyses, and
simulation/measurement harnesses regenerating every figure.

Quick start — one experiment description, any execution stack::

    from repro import AttackSpec, Experiment

    exp = Experiment(
        protocol="drum", n=120, malicious_fraction=0.1,
        attack=AttackSpec(alpha=0.1, x=128), runs=100,
    )
    result = exp.run("fast", seed=1)     # vectorised Monte-Carlo
    print(result.mean_rounds())   # rounds to reach 99 % of correct processes
    measured = exp.run("des", seed=1)    # discrete-event measurement
    print(measured.delivery_ratio())

The stack-native entry points remain fully supported::

    from repro import Scenario, monte_carlo

    scenario = Scenario(
        protocol="drum", n=120, malicious_fraction=0.1,
        attack=AttackSpec(alpha=0.1, x=128),
    )
    result = monte_carlo(scenario, runs=100, seed=1)

Attach a :class:`repro.obs.Tracer` to any engine for a typed event
stream (round markers, sends, bounded-acceptance wins, drops by reason,
deliveries, fault transitions) through pluggable sinks; seeded runs are
byte-identical with tracing on or off.
"""

from repro.adversary import (
    AttackSpec,
    PortLoad,
    RoundAttacker,
    fixed_budget_sweep,
    increasing_extent_sweep,
    increasing_rate_sweep,
    relative_budget_sweep,
)
from repro.api import Experiment, result_from_dict
from repro.core import (
    DrumProcess,
    GossipProcess,
    MessageBuffer,
    ProtocolConfig,
    ProtocolKind,
    PullProcess,
    PushProcess,
)
from repro.obs import JsonlSink, MemorySink, PrometheusSink, Tracer
from repro.sim import (
    MonteCarloResult,
    ResultCache,
    RoundSimulator,
    RunResult,
    Scenario,
    budget_sweep,
    churn_sweep,
    default_runs,
    default_workers,
    extent_sweep,
    monte_carlo,
    rate_sweep,
    run_exact,
    run_fast,
)

__version__ = "1.0.0"

__all__ = [
    "AttackSpec",
    "DrumProcess",
    "Experiment",
    "GossipProcess",
    "JsonlSink",
    "MemorySink",
    "MessageBuffer",
    "MonteCarloResult",
    "PortLoad",
    "PrometheusSink",
    "ResultCache",
    "ProtocolConfig",
    "ProtocolKind",
    "PullProcess",
    "PushProcess",
    "RoundAttacker",
    "RoundSimulator",
    "RunResult",
    "Scenario",
    "Tracer",
    "__version__",
    "budget_sweep",
    "churn_sweep",
    "default_runs",
    "default_workers",
    "extent_sweep",
    "rate_sweep",
    "fixed_budget_sweep",
    "increasing_extent_sweep",
    "increasing_rate_sweep",
    "monte_carlo",
    "relative_budget_sweep",
    "result_from_dict",
    "run_exact",
    "run_fast",
]
