"""Drum: DoS-resistant gossip-based multicast.

A production-quality reproduction of *"Exposing and Eliminating
Vulnerabilities to Denial of Service Attacks in Secure Gossip-Based
Multicast"* (Badishi, Keidar & Sasson, DSN 2004): the Drum protocol, the
Push and Pull baselines, the Section 9 ablation variants, the paper's
DoS-evaluation methodology, its closed-form and numerical analyses, and
simulation/measurement harnesses regenerating every figure.

Quick start::

    from repro import AttackSpec, Scenario, monte_carlo

    scenario = Scenario(
        protocol="drum", n=120, malicious_fraction=0.1,
        attack=AttackSpec(alpha=0.1, x=128),
    )
    result = monte_carlo(scenario, runs=100, seed=1)
    print(result.mean_rounds())   # rounds to reach 99 % of correct processes
"""

from repro.adversary import (
    AttackSpec,
    PortLoad,
    RoundAttacker,
    fixed_budget_sweep,
    increasing_extent_sweep,
    increasing_rate_sweep,
    relative_budget_sweep,
)
from repro.core import (
    DrumProcess,
    GossipProcess,
    MessageBuffer,
    ProtocolConfig,
    ProtocolKind,
    PullProcess,
    PushProcess,
)
from repro.sim import (
    MonteCarloResult,
    ResultCache,
    RoundSimulator,
    RunResult,
    Scenario,
    budget_sweep,
    default_runs,
    default_workers,
    extent_sweep,
    monte_carlo,
    rate_sweep,
    run_exact,
    run_fast,
)

__version__ = "1.0.0"

__all__ = [
    "AttackSpec",
    "DrumProcess",
    "GossipProcess",
    "MessageBuffer",
    "MonteCarloResult",
    "PortLoad",
    "ResultCache",
    "ProtocolConfig",
    "ProtocolKind",
    "PullProcess",
    "PushProcess",
    "RoundAttacker",
    "RoundSimulator",
    "RunResult",
    "Scenario",
    "__version__",
    "budget_sweep",
    "default_runs",
    "default_workers",
    "extent_sweep",
    "rate_sweep",
    "fixed_budget_sweep",
    "increasing_extent_sweep",
    "increasing_rate_sweep",
    "monte_carlo",
    "relative_budget_sweep",
    "run_exact",
    "run_fast",
]
