"""Datagrams exchanged by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.net.address import Address


@dataclass(frozen=True, slots=True)
class Packet:
    """An immutable datagram.

    ``sender`` is the claimed source endpoint.  Channels are insecure, so
    nothing authenticates this field — fabricated packets carry whatever
    sender the adversary chooses.  Only ``fabricated`` (bookkeeping that a
    real network would not carry) lets the evaluation layer tell attack
    traffic from valid traffic when computing metrics; protocol logic
    never reads it.
    """

    dst: Address
    payload: Any
    sender: Optional[Address] = None
    fabricated: bool = False

    def size_hint(self) -> int:
        """A rough wire-size proxy used by bandwidth accounting."""
        payload_size = getattr(self.payload, "wire_size", None)
        if callable(payload_size):
            return int(payload_size())
        return 64
