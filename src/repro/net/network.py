"""The round-based simulated network fabric.

A :class:`Network` owns, for every node, the set of currently open ports
and a :class:`~repro.net.channel.BoundedChannel` per open port.  Sending
applies link loss; packets addressed to closed ports (e.g. an attacker
guessing at a random port that is no longer live) vanish silently, as
they would on a real host.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.net.address import Address
from repro.net.channel import BoundedChannel
from repro.net.link import LossModel
from repro.net.packet import Packet
from repro.util import SeedSequenceFactory
from repro.util.profiling import bump
from repro.util.rng import SeedLike


class Network:
    """Lossy datagram fabric for the object-level round simulator."""

    def __init__(
        self,
        loss: Optional[LossModel] = None,
        *,
        seed: SeedLike = None,
        naive: bool = False,
        tracer=None,
    ):
        #: Reference (unoptimised) mode for the perf-regression harness:
        #: floods materialise one :class:`Packet` per fabricated message
        #: (with a per-packet loss draw) and channels run eagerly-seeded,
        #: object-level bounded acceptance.  Statistically equivalent to
        #: the fast path but on a different RNG stream — benchmark use
        #: only, never for golden-traced runs.
        self.naive = naive
        self._seeds = SeedSequenceFactory(seed)
        self.loss = loss if loss is not None else LossModel(0.0, seed=self._seeds.next_seed())
        # Bound once: ``delivered`` runs for every sent packet, and the
        # bound method stays valid across ``LossModel.reseed`` (which
        # swaps the generator inside the model, not the model itself).
        self._delivered = self.loss.delivered
        self._channels: Dict[int, Dict[int, BoundedChannel]] = {}
        # Shared per-port address tables: every process sending to the
        # same well-known port uses the same {node: Address} dict, so a
        # group of n processes builds n Address objects per port instead
        # of n² (one table per sender).
        self._wk_addrs: Dict[int, Dict[int, Address]] = {}
        self.sent_packets = 0
        self.lost_packets = 0
        self.dead_lettered = 0
        self.blocked_packets = 0
        self.channels_opened = 0
        # Fault-injection drop predicate ``(src_node, dst_node) -> bool``
        # (crash / partition / stall windows), swapped per round by the
        # simulator; None — the only value faultless runs ever see —
        # costs one falsy check on the send path.
        self._block = None
        # Passive wiretaps (the paper's snooping adversary): each is
        # called with every packet in transit.  What a tap can *learn*
        # is limited by what the payload exposes — sealed envelopes
        # keep random ports opaque even to a tap on every link.
        self._snoopers = []
        # Observability: a repro.obs Tracer, or None (the only value
        # untraced runs ever see — one falsy check per send/drain).
        # The tracer draws no randomness, so attaching one cannot
        # perturb a seeded run.
        self._tracer = tracer

    def add_snooper(self, snooper) -> None:
        """Register a passive wiretap called with every sent packet."""
        self._snoopers.append(snooper)

    def set_block(self, block) -> None:
        """Install (or clear, with None) the fault drop predicate.

        ``block(src_node, dst_node)`` returning True drops the packet
        before the loss draw — a crashed machine or a partition cut is
        not a lossy link, so blocked packets are counted separately and
        consume no randomness.  Packets with no sender (attacker floods)
        present ``src_node = -1``, outside the group id space.
        """
        self._block = block

    def use_loss_model(self, loss) -> None:
        """Swap the link-loss model (e.g. for Gilbert–Elliott bursts).

        The replacement must provide the :class:`LossModel` sampling
        surface; it arrives pre-seeded by the caller.
        """
        self.loss = loss
        self._delivered = loss.delivered

    # -- port management ------------------------------------------------

    def register_node(self, node: int) -> None:
        """Create the port table for ``node`` (idempotent)."""
        self._channels.setdefault(node, {})

    def wk_addrs(self, port: int, members) -> Dict[int, Address]:
        """The shared ``{node: Address(node, port)}`` table for ``port``.

        Built once per (network, port) and handed out to every process,
        read-only by convention; senders index it instead of holding a
        private per-process copy.
        """
        table = self._wk_addrs.get(port)
        if table is None:
            table = self._wk_addrs[port] = {
                m: Address(m, port) for m in members
            }
        elif len(table) != len(members):
            for m in members:
                if m not in table:
                    table[m] = Address(m, port)
        return table

    def open_port(self, addr: Address) -> BoundedChannel:
        """Open ``addr`` for reception and return its channel."""
        return self.open_port_at(addr.node, addr.port)

    def open_port_at(self, node: int, port: int) -> BoundedChannel:
        """Open ``(node, port)`` for reception and return its channel.

        The channel's acceptance seed is handed out as a lazy recipe:
        the seed *position* is consumed here (identical to an eager
        spawn), but no SeedSequence or Generator is built unless the
        channel ever overloads and must draw its random subset.  The
        node/port-keyed form is the hot one — per-round random reply
        ports open without constructing a throwaway :class:`Address`.
        """
        ports = self._channels.setdefault(node, {})
        channel = ports.get(port)
        if channel is None:
            self.channels_opened += 1
            channel = BoundedChannel(
                port, seed=self._seeds.next_lazy(), naive=self.naive,
                tracer=self._tracer, node=node,
            )
            ports[port] = channel
        return channel

    def close_port(self, addr: Address) -> None:
        """Close ``addr``; anything queued there is dropped."""
        self.close_port_at(addr.node, addr.port)

    def close_port_at(self, node: int, port: int) -> None:
        """Close ``(node, port)``; anything queued there is dropped."""
        ports = self._channels.get(node)
        if ports is not None:
            ports.pop(port, None)

    def is_open(self, addr: Address) -> bool:
        """True when ``addr`` currently accepts packets."""
        return addr.port in self._channels.get(addr.node, {})

    def channel(self, addr: Address) -> BoundedChannel:
        """Return the channel behind an open port."""
        try:
            return self._channels[addr.node][addr.port]
        except KeyError:
            raise KeyError(f"port {addr} is not open") from None

    def get_channel(self, addr: Address) -> Optional[BoundedChannel]:
        """The channel behind ``addr``, or None when the port is closed."""
        return self.channel_at(addr.node, addr.port)

    def channel_at(self, node: int, port: int) -> Optional[BoundedChannel]:
        """The channel behind ``(node, port)``, or None when closed.

        One dict probe replaces the ``is_open`` + ``channel`` pair on
        the receive hot path, with no :class:`Address` construction.
        """
        ports = self._channels.get(node)
        return None if ports is None else ports.get(port)

    def open_ports(self, node: int) -> List[int]:
        """All ports currently open on ``node``."""
        return sorted(self._channels.get(node, {}))

    # -- traffic ---------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Transmit one packet; returns True when it was enqueued.

        ``sent_packets`` *is* the packet-allocation count (fabricated
        flood traffic is counted here too but never materialised — see
        :meth:`flood`), so the hot path carries no extra bookkeeping.
        """
        self.sent_packets += 1
        if self._snoopers:
            for snooper in self._snoopers:
                snooper(packet)
        dst = packet.dst
        tr = self._tracer
        if tr is not None:
            sender = packet.sender
            tr.gossip_sent(
                -1 if sender is None else sender.node, dst.node, dst.port
            )
        if self._block is not None:
            sender = packet.sender
            if self._block(-1 if sender is None else sender.node, dst.node):
                self.blocked_packets += 1
                if tr is not None:
                    tr.dropped("partition", node=dst.node, port=dst.port)
                return False
        if not self._delivered():
            self.lost_packets += 1
            if tr is not None:
                tr.dropped("loss", node=dst.node, port=dst.port)
            return False
        ports = self._channels.get(dst.node)
        if ports is None:
            self.dead_lettered += 1
            if tr is not None:
                tr.dropped("closed", node=dst.node, port=dst.port)
            return False
        channel = ports.get(dst.port)
        if channel is None:
            self.dead_lettered += 1
            if tr is not None:
                tr.dropped("closed", node=dst.node, port=dst.port)
            return False
        channel.deliver(packet)
        return True

    def flood(self, dst: Address, count: int) -> int:
        """Inject ``count`` fabricated packets at ``dst`` (attack traffic).

        Loss applies to attack traffic like any other; returns how many
        packets actually reached the channel.  The ``count`` fabricated
        packets are never materialised as objects — loss thins them with
        one binomial draw and the survivors land as a counter bump in
        the channel (see :meth:`BoundedChannel.inject_fabricated`), so a
        paper-strength flood (x=128 per victim per round) costs O(1)
        per port instead of O(x) allocations.
        """
        tr = self._tracer
        if tr is not None:
            tr.flood_sent(dst.node, dst.port, count)
        if self._block is not None and self._block(-1, dst.node):
            # The victim's machine is down (floods originate outside the
            # group, so a partition never blocks them): the whole batch
            # is wasted without a loss draw.
            self.sent_packets += count
            self.blocked_packets += count
            if tr is not None:
                tr.dropped(
                    "partition", node=dst.node, port=dst.port,
                    count=count, fabricated=count,
                )
            return 0
        if self.naive:
            # Reference implementation: fabricate and route ``count``
            # real Packet objects, one loss draw each — the per-packet
            # cost the bulk path eliminates.
            delivered = 0
            for _ in range(count):
                self.sent_packets += 1
                if not self._delivered():
                    self.lost_packets += 1
                    continue
                ports = self._channels.get(dst.node)
                if ports is None or dst.port not in ports:
                    self.dead_lettered += 1
                    continue
                ports[dst.port].deliver(
                    Packet(dst=dst, payload=None, fabricated=True)
                )
                delivered += 1
            return delivered
        self.sent_packets += count
        bump("packets_flooded_bulk", count)
        survivors = self.loss.surviving_count(count)
        self.lost_packets += count - survivors
        if tr is not None and count > survivors:
            tr.dropped(
                "loss", node=dst.node, port=dst.port,
                count=count - survivors, fabricated=count - survivors,
            )
        ports = self._channels.get(dst.node)
        if ports is None or dst.port not in ports:
            self.dead_lettered += survivors
            if tr is not None and survivors:
                tr.dropped(
                    "closed", node=dst.node, port=dst.port,
                    count=survivors, fabricated=survivors,
                )
            return 0
        ports[dst.port].inject_fabricated(survivors)
        return survivors

    def end_round(self, nodes: Optional[Iterable[int]] = None) -> int:
        """Discard unread backlog on every channel; returns total dropped."""
        dropped = 0
        targets = self._channels if nodes is None else {
            n: self._channels.get(n, {}) for n in nodes
        }
        tr = self._tracer
        if tr is None:
            for ports in targets.values():
                for channel in ports.values():
                    dropped += channel.end_round()
            return dropped
        for node, ports in targets.items():
            for port, channel in ports.items():
                count = channel.end_round()
                if count:
                    tr.dropped("round_end", node=node, port=port, count=count)
                dropped += count
        return dropped
