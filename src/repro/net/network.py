"""The round-based simulated network fabric.

A :class:`Network` owns, for every node, the set of currently open ports
and a :class:`~repro.net.channel.BoundedChannel` per open port.  Sending
applies link loss; packets addressed to closed ports (e.g. an attacker
guessing at a random port that is no longer live) vanish silently, as
they would on a real host.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.net.address import Address
from repro.net.channel import BoundedChannel
from repro.net.link import LossModel
from repro.net.packet import Packet
from repro.util import SeedSequenceFactory
from repro.util.rng import SeedLike


class Network:
    """Lossy datagram fabric for the object-level round simulator."""

    def __init__(self, loss: Optional[LossModel] = None, *, seed: SeedLike = None):
        self._seeds = SeedSequenceFactory(seed)
        self.loss = loss if loss is not None else LossModel(0.0, seed=self._seeds.next_seed())
        self._channels: Dict[int, Dict[int, BoundedChannel]] = {}
        self.sent_packets = 0
        self.lost_packets = 0
        self.dead_lettered = 0
        # Passive wiretaps (the paper's snooping adversary): each is
        # called with every packet in transit.  What a tap can *learn*
        # is limited by what the payload exposes — sealed envelopes
        # keep random ports opaque even to a tap on every link.
        self._snoopers = []

    def add_snooper(self, snooper) -> None:
        """Register a passive wiretap called with every sent packet."""
        self._snoopers.append(snooper)

    # -- port management ------------------------------------------------

    def register_node(self, node: int) -> None:
        """Create the port table for ``node`` (idempotent)."""
        self._channels.setdefault(node, {})

    def open_port(self, addr: Address) -> BoundedChannel:
        """Open ``addr`` for reception and return its channel."""
        ports = self._channels.setdefault(addr.node, {})
        if addr.port not in ports:
            ports[addr.port] = BoundedChannel(addr.port, seed=self._seeds.next_seed())
        return ports[addr.port]

    def close_port(self, addr: Address) -> None:
        """Close ``addr``; anything queued there is dropped."""
        ports = self._channels.get(addr.node)
        if ports is not None:
            ports.pop(addr.port, None)

    def is_open(self, addr: Address) -> bool:
        """True when ``addr`` currently accepts packets."""
        return addr.port in self._channels.get(addr.node, {})

    def channel(self, addr: Address) -> BoundedChannel:
        """Return the channel behind an open port."""
        try:
            return self._channels[addr.node][addr.port]
        except KeyError:
            raise KeyError(f"port {addr} is not open") from None

    def open_ports(self, node: int) -> List[int]:
        """All ports currently open on ``node``."""
        return sorted(self._channels.get(node, {}))

    # -- traffic ---------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Transmit one packet; returns True when it was enqueued."""
        self.sent_packets += 1
        for snooper in self._snoopers:
            snooper(packet)
        if not self.loss.delivered():
            self.lost_packets += 1
            return False
        ports = self._channels.get(packet.dst.node)
        if ports is None or packet.dst.port not in ports:
            self.dead_lettered += 1
            return False
        ports[packet.dst.port].deliver(packet)
        return True

    def flood(self, dst: Address, count: int) -> int:
        """Inject ``count`` fabricated packets at ``dst`` (attack traffic).

        Loss applies to attack traffic like any other; returns how many
        packets actually reached the channel.
        """
        self.sent_packets += count
        survivors = self.loss.surviving_count(count)
        self.lost_packets += count - survivors
        ports = self._channels.get(dst.node)
        if ports is None or dst.port not in ports:
            self.dead_lettered += survivors
            return 0
        ports[dst.port].inject_fabricated(survivors)
        return survivors

    def end_round(self, nodes: Optional[Iterable[int]] = None) -> int:
        """Discard unread backlog on every channel; returns total dropped."""
        dropped = 0
        targets = self._channels if nodes is None else {
            n: self._channels.get(n, {}) for n in nodes
        }
        for ports in targets.values():
            for channel in ports.values():
                dropped += channel.end_round()
        return dropped
