"""Link-loss model.

The paper assumes a constant, link-independent loss probability (0.01 in
all simulations).  ``LossModel`` captures that and exposes both scalar
and vectorised sampling so the object-level and numpy engines share one
definition.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_probability, derive_rng
from repro.util.rng import SeedLike


class LossModel:
    """I.i.d. Bernoulli loss, identical for every link."""

    __slots__ = ("loss_probability", "_rng", "_random")

    def __init__(self, loss_probability: float = 0.0, *, seed: SeedLike = None):
        check_probability("loss_probability", loss_probability)
        self.loss_probability = float(loss_probability)
        self._rng = derive_rng(seed)
        # ``delivered`` runs once per sent packet; binding the generator
        # method once shaves two attribute lookups off that hot path.
        self._random = self._rng.random

    def reseed(self, seed: SeedLike) -> None:
        """Replace the internal generator (used when replaying runs)."""
        self._rng = derive_rng(seed)
        self._random = self._rng.random

    def delivered(self) -> bool:
        """Sample one transmission: True when the packet survives."""
        if self.loss_probability == 0.0:
            return True
        return self._random() >= self.loss_probability

    def surviving_count(self, sent: int) -> int:
        """Sample how many of ``sent`` independent packets survive."""
        if sent < 0:
            raise ValueError(f"sent must be >= 0, got {sent}")
        if self.loss_probability == 0.0 or sent == 0:
            return sent
        return int(self._rng.binomial(sent, 1.0 - self.loss_probability))

    def survival_mask(self, count: int) -> np.ndarray:
        """Boolean mask of length ``count``: True where packets survive."""
        if self.loss_probability == 0.0:
            return np.ones(count, dtype=bool)
        return self._rng.random(count) >= self.loss_probability
