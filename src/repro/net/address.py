"""Endpoint addressing.

Each process owns a numeric node id and a port space.  Three well-known
ports exist on every node — push-offer, push-data, and pull-request —
plus a region of *random* ports that the protocols allocate per round and
advertise inside encrypted envelopes (see :mod:`repro.crypto.encryption`).
An adversary can flood any well-known port but cannot predict a live
random port, which is the property Drum's port-randomisation leverages.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Well-known port on which push-offers are received.
PORT_PUSH_OFFER = 1
#: Well-known port on which push data messages are received (used by the
#: round-based simulator, which models push without the offer handshake).
PORT_PUSH_DATA = 2
#: Well-known port on which pull-requests are received.
PORT_PULL_REQUEST = 3
#: Well-known port for pull-replies — only used by the Section 9
#: "no random ports" ablation, where it becomes attackable.
PORT_PULL_REPLY = 4
#: First port number of the dynamically allocated (random) port region.
RANDOM_PORT_BASE = 1024


@dataclass(frozen=True, order=True, slots=True)
class Address:
    """A (node id, port) endpoint."""

    node: int
    port: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node id must be >= 0, got {self.node}")
        if self.port < 0:
            raise ValueError(f"port must be >= 0, got {self.port}")

    def is_well_known(self) -> bool:
        """True when the port is one of the protocol's fixed ports."""
        return self.port < RANDOM_PORT_BASE

    def with_port(self, port: int) -> "Address":
        """Return the same node with a different port."""
        return Address(self.node, port)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.node}:{self.port}"
