"""Per-port, per-round bounded inboxes.

Drum's central defensive mechanism is *bounded random acceptance*: a
process reads at most ``bound`` messages from each port per round, chosen
uniformly at random among everything that arrived, and discards the rest
when the round ends.  Because rounds are locally timed and randomly
jittered, an attacker cannot aim traffic at the start of a round, so a
fabricated message is as likely to be discarded as a valid one — which is
exactly what makes the acceptance probability of a valid message
``min(1, bound / arrivals)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Packet
from repro.util import check_non_negative, derive_rng
from repro.util.profiling import bump
from repro.util.rng import SeedLike


class BoundedChannel:
    """One port's inbox for the current round.

    ``persistent=True`` builds the *ablated* channel the paper warns
    against: unread messages survive the round boundary instead of being
    discarded.  Under a flood, stale fabricated backlog then accumulates
    without bound and the acceptance probability of fresh valid traffic
    collapses toward zero — the behaviour
    ``tests/test_net_channel.py::TestRoundEndDiscardAblation`` verifies.

    The RNG behind the random acceptance subset is built lazily from the
    stored seed: a channel only draws randomness when more arrives than
    its bound accepts, and the vast majority of channels (per-round
    random reply ports awaiting one packet) never overload.  Deferring
    the ``Generator`` construction to first use keeps channel setup off
    the exact engine's hot path without changing a single drawn value.
    """

    __slots__ = (
        "port", "persistent", "naive", "_arrivals", "_fabricated_arrivals",
        "_seed", "_rng_obj", "_tracer", "_node",
    )

    def __init__(
        self,
        port: int,
        *,
        seed: SeedLike = None,
        persistent: bool = False,
        naive: bool = False,
        tracer=None,
        node: Optional[int] = None,
    ):
        self.port = port
        self.persistent = persistent
        #: Observability: when a repro.obs Tracer is attached (by
        #: Network.open_port_at), ``drain`` emits accepted/dropped
        #: events carrying ``node`` as the receiver id.  The tracer
        #: draws no randomness, so traced drains accept identical
        #: subsets.  The naive reference mode is not instrumented.
        self._tracer = tracer
        self._node = node
        #: Reference (unoptimised) mode for the perf harness: the RNG is
        #: built eagerly, fabricated packets are stored as objects, and
        #: ``drain`` picks its subset directly over the arrival objects.
        #: Statistically identical to the fast path, but it consumes a
        #: different RNG stream — never use it for golden-traced runs.
        self.naive = naive
        self._arrivals: List[Packet] = []
        self._fabricated_arrivals = 0
        self._seed = seed
        self._rng_obj = None
        if naive:
            self._rng_obj = derive_rng(seed)
            self._seed = None

    @property
    def _rng(self):
        rng = self._rng_obj
        if rng is None:
            bump("channel_rngs_built")
            rng = self._rng_obj = derive_rng(self._seed)
            self._seed = None
        return rng

    def __len__(self) -> int:
        return len(self._arrivals) + self._fabricated_arrivals

    @property
    def valid_arrivals(self) -> int:
        """Number of non-fabricated packets waiting."""
        if self.naive:
            return sum(1 for p in self._arrivals if not p.fabricated)
        return len(self._arrivals)

    @property
    def fabricated_arrivals(self) -> int:
        """Number of fabricated packets waiting (attack traffic)."""
        if self.naive:
            return sum(1 for p in self._arrivals if p.fabricated)
        return self._fabricated_arrivals

    def deliver(self, packet: Packet) -> None:
        """Enqueue one arriving packet."""
        if packet.fabricated and not self.naive:
            # Fabricated packets carry no protocol-relevant payload; we
            # count them instead of storing objects, which keeps large
            # attacks (x in the thousands) cheap to simulate.
            self._fabricated_arrivals += 1
        else:
            self._arrivals.append(packet)

    def inject_fabricated(self, count: int) -> None:
        """Enqueue ``count`` fabricated packets in one call."""
        check_non_negative("count", count)
        self._fabricated_arrivals += count

    def drain(self, bound: Optional[int]) -> List[Packet]:
        """Read up to ``bound`` packets; the remainder is discarded
        (or, on a persistent channel, left queued for later rounds).

        Returns the *valid* packets among the accepted subset (fabricated
        ones are read too — consuming acceptance slots — but carry nothing
        for the protocol).  ``bound=None`` means unbounded.
        """
        if self.naive:
            return self._drain_naive(bound)
        total = len(self._arrivals) + self._fabricated_arrivals
        if total == 0:
            # Nothing arrived: both queues are already empty, so there
            # is nothing to clear — the common case for per-round random
            # reply ports, which usually see at most one packet.
            return []
        tr = self._tracer
        if bound is None or total <= bound:
            # Everything fits: hand the arrival list itself to the
            # caller (both modes clear the queues after a full read, so
            # no copy is needed).
            accepted = self._arrivals
            fab = self._fabricated_arrivals
            self._arrivals = []
            self._fabricated_arrivals = 0
            if tr is not None:
                tr.accepted(
                    self._node, self.port, valid=len(accepted), fabricated=fab
                )
            return accepted
        # Choose a uniformly random bound-sized subset of all arrivals.
        # The number of *valid* packets in that subset is hypergeometric;
        # then pick which valid packets uniformly.
        valid = len(self._arrivals)
        accepted_valid = int(
            self._rng.hypergeometric(valid, total - valid, bound)
        ) if valid else 0
        if accepted_valid == 0:
            result: List[Packet] = []
        elif accepted_valid == valid:
            result = list(self._arrivals)
        else:
            idx = self._rng.choice(valid, size=accepted_valid, replace=False)
            result = [self._arrivals[i] for i in sorted(idx)]
        if tr is not None:
            fab = self._fabricated_arrivals
            tr.accepted(
                self._node, self.port,
                valid=accepted_valid, fabricated=bound - accepted_valid,
            )
            if not self.persistent:
                # Overflow discard: "attack" when flood traffic shared
                # the channel this round, plain "bound" otherwise.
                tr.dropped(
                    "attack" if fab > 0 else "bound",
                    node=self._node, port=self.port,
                    count=total - bound,
                    valid=valid - accepted_valid,
                    fabricated=fab - (bound - accepted_valid),
                )
        if self.persistent:
            # Ablation: the unread remainder stays queued.
            accepted_fabricated = bound - accepted_valid
            kept = set(id(p) for p in result)
            self._arrivals = [p for p in self._arrivals if id(p) not in kept]
            self._fabricated_arrivals -= accepted_fabricated
        else:
            self._reset()
        return result

    def _drain_naive(self, bound: Optional[int]) -> List[Packet]:
        """The textbook acceptance rule, applied to stored objects.

        Chooses a uniformly random ``bound``-sized subset of *all*
        arrival objects (fabricated ones included) and returns the valid
        packets in it — the definition the fast path's hypergeometric
        split is derived from.  Kept as the perf harness's reference.
        """
        arrivals = self._arrivals
        total = len(arrivals)
        if total == 0:
            return []
        if bound is None or total <= bound:
            accepted = [p for p in arrivals if not p.fabricated]
        else:
            idx = self._rng.choice(total, size=bound, replace=False)
            accepted = [
                arrivals[i] for i in sorted(idx) if not arrivals[i].fabricated
            ]
        self._arrivals = []
        return accepted

    def end_round(self) -> int:
        """Discard everything unread; returns how many were dropped.

        On a persistent (ablated) channel this is a no-op returning 0 —
        the backlog survives, which is exactly the vulnerability.
        """
        if self.persistent:
            return 0
        dropped = len(self._arrivals) + self._fabricated_arrivals
        if dropped:
            self._reset()
        return dropped

    def _reset(self) -> None:
        self._arrivals = []
        self._fabricated_arrivals = 0
