"""Simulated network substrate.

Provides the building blocks the protocols run on:

- :class:`~repro.net.address.Address` — (node, port) endpoints and the
  well-known port numbers used by the protocols.
- :class:`~repro.net.packet.Packet` — an immutable datagram.
- :class:`~repro.net.link.LossModel` — i.i.d. Bernoulli link loss, equal on
  all links (the paper's network model).
- :class:`~repro.net.channel.BoundedChannel` — a per-port, per-round inbox
  with bounded random acceptance; unread messages are discarded at round
  end, exactly as Drum prescribes.
- :class:`~repro.net.network.Network` — the fabric tying nodes, ports,
  loss, and channels together for the round-based simulator.
- :class:`~repro.net.transport.Transport` and implementations — the async
  datagram abstraction used by the discrete-event and threaded runtimes.
"""

from repro.net.address import (
    PORT_PULL_REPLY,
    PORT_PULL_REQUEST,
    PORT_PUSH_DATA,
    PORT_PUSH_OFFER,
    RANDOM_PORT_BASE,
    Address,
)
from repro.net.channel import BoundedChannel
from repro.net.link import LossModel
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.transport import InMemoryTransport, Transport, UdpTransport

__all__ = [
    "Address",
    "BoundedChannel",
    "InMemoryTransport",
    "LossModel",
    "Network",
    "PORT_PULL_REPLY",
    "PORT_PULL_REQUEST",
    "PORT_PUSH_DATA",
    "PORT_PUSH_OFFER",
    "Packet",
    "RANDOM_PORT_BASE",
    "Transport",
    "UdpTransport",
]
