"""Datagram transports for the threaded runtime.

The round-based simulator talks to :class:`~repro.net.network.Network`
directly; the *runtime* (Section 8-style measurements) instead sends real
datagrams between concurrently running nodes.  Two interchangeable
transports are provided:

- :class:`InMemoryTransport` — thread-safe loopback delivery between
  in-process nodes.  Deterministic-ish, fast, no OS resources; the
  default for tests and examples.
- :class:`UdpTransport` — real UDP sockets on localhost, demonstrating
  that the node logic runs over an actual network stack.

Both apply an optional :class:`~repro.net.link.LossModel` on send and
deliver to per-port handler callbacks registered by receivers.
"""

from __future__ import annotations

import errno
import pickle
import socket
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

from repro.net.address import Address
from repro.net.link import LossModel

Handler = Callable[[Address, object], None]
"""Receive callback: (claimed sender address, payload)."""


class Transport(ABC):
    """Abstract datagram transport keyed by :class:`Address`."""

    def __init__(self, loss: Optional[LossModel] = None):
        self.loss = loss

    @abstractmethod
    def bind(self, addr: Address, handler: Handler) -> None:
        """Start delivering packets addressed to ``addr`` to ``handler``."""

    @abstractmethod
    def unbind(self, addr: Address) -> None:
        """Stop reception on ``addr``."""

    @abstractmethod
    def send(self, src: Address, dst: Address, payload: object) -> None:
        """Send one datagram.  Silently dropped on loss or closed port."""

    def close(self) -> None:
        """Release any resources held by the transport."""


class InMemoryTransport(Transport):
    """Loopback transport delivering synchronously under a lock.

    Handlers run on the sender's thread, which mirrors UDP's behaviour of
    the receiver thread being woken immediately and keeps the runtime
    free of extra delivery threads.
    """

    def __init__(self, loss: Optional[LossModel] = None):
        super().__init__(loss)
        self._handlers: Dict[Address, Handler] = {}
        self._lock = threading.Lock()
        self.delivered = 0
        self.dropped = 0

    def bind(self, addr: Address, handler: Handler) -> None:
        with self._lock:
            self._handlers[addr] = handler

    def unbind(self, addr: Address) -> None:
        with self._lock:
            self._handlers.pop(addr, None)

    def send(self, src: Address, dst: Address, payload: object) -> None:
        if self.loss is not None and not self.loss.delivered():
            with self._lock:
                self.dropped += 1
            return
        with self._lock:
            handler = self._handlers.get(dst)
            if handler is None:
                self.dropped += 1
                return
            self.delivered += 1
        handler(src, payload)


class UdpTransport(Transport):
    """UDP/localhost transport.

    Node/port addresses are mapped onto real UDP ports as
    ``base_port + node * ports_per_node + port_slot``, where random ports
    occupy slots above the well-known region.  One receiver thread per
    bound address keeps the implementation simple; the runtime binds a
    handful of ports per node, so thread counts stay modest.
    """

    def __init__(
        self,
        loss: Optional[LossModel] = None,
        *,
        host: str = "127.0.0.1",
        base_port: int = 20000,
        ports_per_node: int = 64,
    ):
        super().__init__(loss)
        self.host = host
        self.base_port = base_port
        self.ports_per_node = ports_per_node
        self._sockets: Dict[Address, socket.socket] = {}
        self._threads: Dict[Address, threading.Thread] = {}
        self._port_map: Dict[Address, int] = {}
        self._lock = threading.Lock()
        self._send_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._send_lock = threading.Lock()
        self._closed = False
        #: Sends retried after a transient kernel error (EAGAIN /
        #: ENOBUFS — a loaded localhost stack under flood returns these).
        self.send_retries = 0
        #: Sends abandoned after exhausting the retry budget.
        self.send_errors = 0

    def _udp_port(self, addr: Address) -> int:
        from repro.net.address import RANDOM_PORT_BASE

        if addr.port < RANDOM_PORT_BASE:
            slot = addr.port
        else:
            # Random ports are mapped modulo the per-node slot budget,
            # skipping the well-known region.
            well_known = 8
            slot = well_known + (addr.port - RANDOM_PORT_BASE) % (
                self.ports_per_node - well_known
            )
        return self.base_port + addr.node * self.ports_per_node + slot

    def bind(self, addr: Address, handler: Handler) -> None:
        udp_port = self._udp_port(addr)
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(0.2)
        try:
            sock.bind((self.host, udp_port))
        except OSError:
            # Two random protocol ports mapped onto the same UDP slot.
            # The advertised port stays dark and anything sent there is
            # lost — indistinguishable from packet loss, which the
            # protocol already tolerates.
            sock.close()
            return
        with self._lock:
            self._sockets[addr] = sock
            self._port_map[addr] = udp_port

        def _receive_loop() -> None:
            while True:
                with self._lock:
                    if self._closed or self._sockets.get(addr) is not sock:
                        break
                try:
                    data, _ = sock.recvfrom(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                try:
                    src, payload = pickle.loads(data)
                except Exception:
                    continue  # malformed datagram: drop, as a real node would
                handler(src, payload)
            sock.close()

        thread = threading.Thread(target=_receive_loop, daemon=True)
        with self._lock:
            self._threads[addr] = thread
        thread.start()

    def unbind(self, addr: Address) -> None:
        with self._lock:
            self._sockets.pop(addr, None)
            self._threads.pop(addr, None)
            self._port_map.pop(addr, None)

    #: Transient kernel errors worth one more try: the datagram never
    #: left, so retrying cannot duplicate it.
    _TRANSIENT_ERRNOS = frozenset(
        {errno.EAGAIN, errno.EWOULDBLOCK, errno.ENOBUFS}
    )
    #: Retry budget; backoff is ~1ms·2^k so the worst case stays under
    #: ~15 ms — less than a round, long enough for a send queue to drain.
    _MAX_SEND_RETRIES = 4

    def send(self, src: Address, dst: Address, payload: object) -> None:
        if self._closed:
            return  # send after close: drop, like any dead NIC
        if self.loss is not None and not self.loss.delivered():
            return
        data = pickle.dumps((src, payload))
        target = (self.host, self._udp_port(dst))
        for attempt in range(self._MAX_SEND_RETRIES + 1):
            try:
                with self._send_lock:
                    if self._closed:
                        return
                    self._send_sock.sendto(data, target)
                return
            except OSError as exc:
                if (
                    exc.errno not in self._TRANSIENT_ERRNOS
                    or attempt == self._MAX_SEND_RETRIES
                ):
                    if exc.errno in self._TRANSIENT_ERRNOS:
                        self.send_errors += 1
                    return  # closed port / unreachable: UDP drops silently
                self.send_retries += 1
                time.sleep(0.001 * (2**attempt))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            sockets = list(self._sockets.values())
            self._sockets.clear()
            self._threads.clear()
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass
        with self._send_lock:
            self._send_sock.close()
