"""Lightweight profiling: per-phase hotspot timers and operation counters.

The exact object-level engine is the semantic reference for every
equivalence test, so its optimisations must be *measured*, not guessed.
This module provides the two instruments that measurement needs:

- a process-wide table of **operation counters** (packets allocated,
  signature digests computed, channel RNGs materialised, …) bumped from
  the hot paths themselves.  Counters are deterministic for a fixed
  seed, which makes them CI-stable regression metrics — unlike wall
  time, they do not vary with shared-runner load;
- a :class:`Profiler` of **per-phase wall-time timers** that
  :class:`~repro.sim.engine.RoundSimulator` drives through one run,
  rendering a hotspot table for ``python -m repro simulate --profile``.

``REPRO_PROFILE=1`` turns CLI profiling on from the environment; it is
validated like ``REPRO_WORKERS`` (a bare integer, here restricted to 0
or 1).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.util.tables import Table

# ---------------------------------------------------------------------------
# operation counters
# ---------------------------------------------------------------------------

#: Process-wide operation counters.  A plain dict bump costs ~100 ns, so
#: hot paths can afford to count unconditionally; benchmarks snapshot
#: around a run and diff.
_counters: Dict[str, int] = {}


def bump(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` (creating it at 0)."""
    _counters[name] = _counters.get(name, 0) + n


def counter(name: str) -> int:
    """Current value of counter ``name`` (0 if never bumped)."""
    return _counters.get(name, 0)


def counters_snapshot() -> Dict[str, int]:
    """A copy of every counter's current value."""
    return dict(_counters)


def reset_counters() -> None:
    """Zero every counter (benchmarks call this between measurements)."""
    _counters.clear()


def counters_since(snapshot: Dict[str, int]) -> Dict[str, int]:
    """Counter deltas relative to an earlier :func:`counters_snapshot`."""
    return {
        name: value - snapshot.get(name, 0)
        for name, value in _counters.items()
        if value != snapshot.get(name, 0)
    }


# ---------------------------------------------------------------------------
# environment toggle
# ---------------------------------------------------------------------------

def profiling_enabled(default: bool = False) -> bool:
    """Whether ``REPRO_PROFILE`` asks for profiling.

    Validated like ``REPRO_WORKERS``: the value must parse as an
    integer, and additionally must be 0 or 1.
    """
    raw = os.environ.get("REPRO_PROFILE")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_PROFILE must be 0 or 1, got {raw!r}"
        ) from exc
    if value not in (0, 1):
        raise ValueError(f"REPRO_PROFILE must be 0 or 1, got {value}")
    return bool(value)


# ---------------------------------------------------------------------------
# per-phase timers
# ---------------------------------------------------------------------------

class Profiler:
    """Accumulates per-phase wall time over one or more simulation runs.

    The engine calls ``phase_start`` / ``phase_stop`` around each round
    phase; both are cheap enough (one ``perf_counter_ns`` each) that a
    profiled run stays within a few percent of an unprofiled one.
    """

    __slots__ = ("phase_ns", "phase_calls", "_open")

    def __init__(self):
        self.phase_ns: Dict[str, int] = {}
        self.phase_calls: Dict[str, int] = {}
        self._open: Dict[str, int] = {}

    def phase_start(self, name: str) -> None:
        """Open a phase interval (one at a time per name)."""
        self._open[name] = time.perf_counter_ns()

    def phase_stop(self, name: str) -> None:
        """Close the open interval for ``name`` and accumulate it."""
        start = self._open.pop(name, None)
        if start is None:
            return
        self.phase_ns[name] = (
            self.phase_ns.get(name, 0) + time.perf_counter_ns() - start
        )
        self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def record(self, name: str, ns: int, calls: int = 1) -> None:
        """Accumulate an externally measured interval."""
        self.phase_ns[name] = self.phase_ns.get(name, 0) + int(ns)
        self.phase_calls[name] = self.phase_calls.get(name, 0) + calls

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's accumulated phases into this one."""
        for name, ns in other.phase_ns.items():
            self.record(name, ns, other.phase_calls.get(name, 0))

    def total_ns(self) -> int:
        """Sum of every phase's accumulated time."""
        return sum(self.phase_ns.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals as a JSON-friendly dict."""
        return {
            name: {
                "seconds": self.phase_ns[name] / 1e9,
                "calls": self.phase_calls.get(name, 0),
            }
            for name in self.phase_ns
        }

    def hotspot_table(self, title: str = "Exact-engine hotspots") -> Table:
        """Phases sorted by total time, with share-of-total percentages."""
        table = Table(title, ["phase", "calls", "total [ms]", "share"])
        total = self.total_ns() or 1
        for name in sorted(
            self.phase_ns, key=self.phase_ns.get, reverse=True
        ):
            ns = self.phase_ns[name]
            table.add_row(
                name,
                self.phase_calls.get(name, 0),
                round(ns / 1e6, 3),
                f"{100.0 * ns / total:.1f}%",
            )
        return table


def maybe_profiler(default: bool = False) -> Optional[Profiler]:
    """A fresh :class:`Profiler` when profiling is enabled, else None."""
    return Profiler() if profiling_enabled(default) else None
