"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Monte-Carlo drivers derive independent
per-run generators from a root seed so that experiments are reproducible
and individual runs can be replayed in isolation.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def derive_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` statistically independent seed sequences.

    Used by Monte-Carlo runners: one child sequence per run keeps runs
    independent while the whole experiment stays a pure function of the
    root seed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a root sequence from the generator's own stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(count))


class SeedSequenceFactory:
    """Hands out independent child seeds from a root seed, in order.

    A tiny convenience wrapper used by simulation engines that need to
    create many seeded subcomponents (per-process RNGs, per-round draws)
    without coordinating indices by hand.
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        elif isinstance(seed, np.random.Generator):
            self._root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
        else:
            self._root = np.random.SeedSequence(seed)
        self._count = 0

    @property
    def spawned(self) -> int:
        """Number of child seeds handed out so far."""
        return self._count

    def next_seed(self) -> np.random.SeedSequence:
        """Return the next child seed sequence."""
        child = self._root.spawn(1)[0]
        # SeedSequence.spawn mutates spawn_key bookkeeping on the parent,
        # so successive calls yield distinct children.
        self._count += 1
        return child

    def next_rng(self) -> np.random.Generator:
        """Return a generator built on the next child seed."""
        return np.random.default_rng(self.next_seed())
