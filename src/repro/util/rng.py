"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Monte-Carlo drivers derive independent
per-run generators from a root seed so that experiments are reproducible
and individual runs can be replayed in isolation.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[
    None, int, "LazySeed", np.random.SeedSequence, np.random.Generator
]


class LazySeed:
    """A recipe for one positional child of a :class:`~numpy.random.SeedSequence`.

    Materialising a ``SeedSequence`` (and especially a ``Generator`` on
    top of it) costs microseconds that dominate hot loops which open
    thousands of per-round channels whose RNG is almost never drawn
    from.  A ``LazySeed`` carries only ``(entropy, spawn_key, index)``
    and builds the *identical* child sequence — ``SeedSequence.spawn``
    derives child ``i`` as ``SeedSequence(entropy, spawn_key + (i,))`` —
    only when someone actually needs random numbers.
    """

    __slots__ = ("entropy", "spawn_key", "pool_size")

    def __init__(self, entropy, spawn_key, pool_size):
        self.entropy = entropy
        self.spawn_key = spawn_key
        self.pool_size = pool_size

    def resolve(self) -> np.random.SeedSequence:
        """Build the seed sequence this recipe describes."""
        return np.random.SeedSequence(
            entropy=self.entropy,
            spawn_key=self.spawn_key,
            pool_size=self.pool_size,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LazySeed(spawn_key={self.spawn_key})"


def derive_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`numpy.random.SeedSequence`, a :class:`LazySeed`, or an
    existing generator (returned unchanged, so callers can thread one
    generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, LazySeed):
        return np.random.default_rng(seed.resolve())
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` statistically independent seed sequences.

    Used by Monte-Carlo runners: one child sequence per run keeps runs
    independent while the whole experiment stays a pure function of the
    root seed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a root sequence from the generator's own stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(count))


class SeedSequenceFactory:
    """Hands out independent child seeds from a root seed, in order.

    A tiny convenience wrapper used by simulation engines that need to
    create many seeded subcomponents (per-process RNGs, per-round draws)
    without coordinating indices by hand.
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, LazySeed):
            seed = seed.resolve()
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        elif isinstance(seed, np.random.Generator):
            self._root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
        else:
            self._root = np.random.SeedSequence(seed)
        self._count = 0
        # Children are derived positionally — child i is
        # SeedSequence(entropy, spawn_key + (i,)), exactly what
        # ``self._root.spawn`` would hand out — starting past any
        # children the root spawned before we got it.  Positional
        # derivation keeps ``next_lazy`` O(1) with no SeedSequence
        # construction at all.
        self._base = int(self._root.n_children_spawned)
        self._key = tuple(self._root.spawn_key)

    @property
    def spawned(self) -> int:
        """Number of child seeds handed out so far."""
        return self._count

    def next_seed(self) -> np.random.SeedSequence:
        """Return the next child seed sequence."""
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=self._key + (self._base + self._count,),
            pool_size=self._root.pool_size,
        )
        self._count += 1
        return child

    def next_lazy(self) -> LazySeed:
        """Return the next child seed as an unmaterialised recipe.

        The recipe resolves to byte-identical state to what
        :meth:`next_seed` would have returned at this position, but
        costs only a tuple concatenation now; components whose RNG is
        rarely exercised (e.g. single-reply bounded channels) defer the
        entire SeedSequence + Generator construction until first use.
        """
        lazy = LazySeed(
            self._root.entropy,
            self._key + (self._base + self._count,),
            self._root.pool_size,
        )
        self._count += 1
        return lazy

    def next_rng(self) -> np.random.Generator:
        """Return a generator built on the next child seed."""
        return np.random.default_rng(self.next_seed())
