"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
plot; a small fixed-width table keeps that output readable in a terminal
and diff-able in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class Table:
    """A fixed-width text table with a title and column headers."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the headers."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        """Append many rows at once."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Return the formatted table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)), header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
