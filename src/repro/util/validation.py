"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from numbers import Real


def check_positive(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_fraction(name: str, value: Real, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` lies in (0, 1] (or [0, 1])."""
    low_ok = value >= 0 if allow_zero else value > 0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")
