"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from numbers import Integral, Real


def check_positive(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_fraction(name: str, value: Real, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` lies in (0, 1] (or [0, 1])."""
    low_ok = value >= 0 if allow_zero else value > 0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")


def coerce_int(name: str, value) -> int:
    """``value`` as an exact built-in ``int``, or ``ValueError``.

    Accepts any :class:`numbers.Integral` (``int``, numpy integer
    scalars) and any real number whose value is exactly integral —
    ``np.float64(1000.0)`` from ``np.logspace`` counts, ``1000.5`` does
    not.  Returning a built-in ``int`` keeps downstream consumers (array
    shapes, the strict canonical cache-key encoder) type-stable no
    matter how the caller produced the number.
    """
    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, Integral):
        return int(value)
    if isinstance(value, Real):
        coerced = int(value)
        if coerced == value:
            return coerced
    raise ValueError(f"{name} must be an integer, got {value!r}")
