"""Canonical, process-stable tokens for cache and store keys.

:func:`canonical_token` recursively lowers an experiment-description
object graph — scenarios, attack specs, fault plans, seeds, and the
plain values they are built from — into a JSON document whose bytes are
identical in every process, interpreter session, and numpy version.
That is the property content-addressed result stores need: a cache key
must never depend on ``repr`` (whose output for e.g. ``np.float64``
changed between numpy 1.x and 2.x) or on anything else that can drift
between the process that wrote an entry and the process that reads it.

The encoder is *strict*: any type it does not positively recognise
raises ``TypeError`` instead of falling back to a lossy string.  A
caller that wants "uncacheable" semantics catches the ``TypeError`` and
skips caching — it never stores under an unstable key.

Composite values encode as tagged lists so structurally different
inputs can never collide (a user-supplied list ``["dc", ...]`` encodes
as ``["l", ["l", [...]]]``-style nesting, distinct from a dataclass
token):

- ``["l", [...]]`` — list or tuple (order-preserving);
- ``["d", [[key, value], ...]]`` — dict, keys sorted (string keys only);
- ``["dc", "module.QualName", [[field, value], ...]]`` — any dataclass
  instance, fields sorted by name, so two dataclass types with
  identical field sets still produce distinct tokens;
- ``["e", "module.QualName", value]`` — an :class:`enum.Enum` member;
- ``["ss", entropy, [spawn_key...], pool_size]`` — a
  ``numpy.random.SeedSequence`` with explicit entropy (one without is
  fresh randomness and therefore *raises*: it has no stable identity).

Scalars pass through: ``None``, ``bool``, ``int``, ``str`` unchanged;
floats (and numpy floating scalars) as Python floats, which
``json.dumps`` renders via ``repr`` — shortest round-trip notation,
stable across CPython processes; numpy integer/bool scalars as their
Python equivalents.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np


def _type_name(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_token(obj: Any) -> Any:
    """A JSON-able token of ``obj``; raises ``TypeError`` when unstable.

    Equal inputs (up to list/tuple interchange and numpy/Python scalar
    interchange) produce equal tokens; unequal inputs of recognised
    types produce unequal tokens.  Unrecognised types — generators,
    arrays, arbitrary objects — raise ``TypeError`` rather than encode
    unstably.
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return ["e", _type_name(obj), canonical_token(obj.value)]
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.random.SeedSequence):
        if obj.entropy is None:
            raise TypeError(
                "SeedSequence without explicit entropy has no stable "
                "identity and cannot be canonicalised"
            )
        return [
            "ss",
            canonical_token(obj.entropy),
            [int(k) for k in obj.spawn_key],
            int(obj.pool_size),
        ]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dc",
            _type_name(obj),
            [
                [f.name, canonical_token(getattr(obj, f.name))]
                for f in sorted(dataclasses.fields(obj), key=lambda f: f.name)
            ],
        ]
    if isinstance(obj, (list, tuple)):
        return ["l", [canonical_token(item) for item in obj]]
    if isinstance(obj, dict):
        pairs = []
        for key in sorted(obj):
            if not isinstance(key, str):
                raise TypeError(
                    f"canonical dicts need string keys, got {key!r}"
                )
            pairs.append([key, canonical_token(obj[key])])
        return ["d", pairs]
    raise TypeError(
        f"cannot build a canonical token for {_type_name(obj)} "
        f"instance {obj!r}"
    )


def canonical_json(obj: Any) -> str:
    """The canonical JSON encoding of ``obj``'s token (one line,
    sorted keys, no whitespace) — byte-identical across processes."""
    return json.dumps(
        canonical_token(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_key(obj: Any) -> str:
    """The sha256 hex digest of :func:`canonical_json` — the
    content-address used by result caches and sweep stores."""
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()
