"""Shared utilities: seeded RNG plumbing, validation, and table rendering."""

from repro.util.canonical import canonical_json, canonical_key, canonical_token
from repro.util.rng import SeedSequenceFactory, derive_rng, spawn_seeds
from repro.util.tables import Table
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    coerce_int,
)

__all__ = [
    "SeedSequenceFactory",
    "Table",
    "canonical_json",
    "canonical_key",
    "canonical_token",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "coerce_int",
    "derive_rng",
    "spawn_seeds",
]
