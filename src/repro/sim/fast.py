"""Vectorised Monte-Carlo engine.

Implements the same round semantics as :mod:`repro.sim.engine` but
stacks all runs of an experiment into numpy array operations, making the
paper's 1000-runs-per-point sweeps tractable in Python.

Equivalence notes (validated by tests against the exact engine and the
Appendix C numerical analysis):

- View draws are exact F-subsets without replacement (duplicate rows are
  resampled), targets uniform over the other ``n - 1`` members.
- Channel acceptance is exact at the margin: the number of M-carrying
  messages accepted on a flooded channel is hypergeometric over the mix
  of valid and fabricated arrivals, which is precisely the distribution
  induced by "read a uniformly random bound-sized subset".
- Pull-request acceptance events at *different* targets are sampled
  independently with the exact marginal probability ``min(1, bound /
  arrivals)``; the negative correlation between two requesters accepted
  at the *same* flooded target is neglected.  The paper's own Appendix C
  analysis makes the same independence approximation (its ``q*``
  products), and Figures 13–14 show it is indistinguishable from the
  object-level simulation.
- Fabricated traffic is thinned by link loss, as in Appendix C, and
  fractional per-port rates are realised by randomised rounding so fixed
  budget sweeps inject exactly ``B`` messages per round in expectation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.adversary.attacks import PortLoad
from repro.core.config import ProtocolKind
from repro.sim.results import MonteCarloResult
from repro.sim.scenario import Scenario
from repro.util import derive_rng
from repro.util.rng import SeedLike

#: Largest group size the dense layout accepts.  The engine stacks runs
#: into (runs, n) state and (runs, senders, F) view matrices; past this
#: point one 64-run shard's per-round draws alone run to hundreds of MB
#: and the next power of ten would try multi-GB allocations.  Larger
#: groups belong on the packed engine (``engine="mega"``), which holds
#: per-node state in bitmaps and streams the node axis.
FAST_MAX_N = 100_000


def _draw_views(
    rng: np.random.Generator, runs: int, senders: np.ndarray, n: int, v: int
) -> np.ndarray:
    """(runs, S, v) gossip targets: uniform, self-free, distinct per row."""
    if v * (v - 1) >= n - 1:
        # Dense fan-out: whole-row rejection sampling stalls (for
        # v = n-1 it essentially never terminates), so take the first v
        # entries of a uniform permutation of the other n-1 members —
        # the same uniform ordered v-subset distribution.
        keys = rng.random((runs, len(senders), n - 1))
        targets = np.argsort(keys, axis=2)[:, :, :v]
        targets += targets >= senders[None, :, None]
        return targets
    targets = rng.integers(0, n - 1, size=(runs, len(senders), v))
    # Skip the sender's own id so targets are uniform over the others.
    targets += targets >= senders[None, :, None]
    if v > 1:
        while True:
            ordered = np.sort(targets, axis=2)
            dup_rows = (ordered[:, :, 1:] == ordered[:, :, :-1]).any(axis=2)
            if not dup_rows.any():
                break
            redraw = rng.integers(0, n - 1, size=(int(dup_rows.sum()), v))
            sender_of_row = np.broadcast_to(
                senders[None, :], dup_rows.shape
            )[dup_rows]
            redraw += redraw >= sender_of_row[:, None]
            targets[dup_rows] = redraw
    return targets


def _bincount(run_ix: np.ndarray, targets: np.ndarray, runs: int, n: int) -> np.ndarray:
    """Per-(run, target) arrival counts from flat index arrays."""
    flat = run_ix * n + targets
    return np.bincount(flat, minlength=runs * n).reshape(runs, n)


def _fabricated_counts(
    rng: np.random.Generator,
    rate: float,
    shape: tuple,
    loss,
) -> np.ndarray:
    """Loss-thinned fabricated arrivals at ``rate`` per victim per round.

    ``loss`` is a scalar, or a per-run column (broadcastable against
    ``shape``) when a fault plan drives per-round bursty loss.
    """
    if rate <= 0:
        return np.zeros(shape, dtype=np.int64)
    base = int(rate)
    frac = rate - base
    counts = np.full(shape, base, dtype=np.int64)
    if frac > 0:
        counts += rng.random(shape) < frac
    if np.any(loss > 0):
        counts = rng.binomial(counts, 1.0 - loss)
    return counts


def _draw_views_from_pool(
    rng: np.random.Generator,
    r_count: int,
    sender_ids: np.ndarray,
    pool: np.ndarray,
    v: int,
) -> np.ndarray:
    """(runs, S, v) gossip targets drawn from a membership pool.

    The churn-mode analogue of :func:`_draw_views`: targets are uniform
    distinct ``v``-subsets of ``pool`` (a sorted id array — the current
    aware-and-responsive membership view), excluding the sender itself
    when it appears in the pool.
    """
    k = len(pool)
    pos = np.searchsorted(pool, sender_ids)
    in_pool = (pos < k) & (pool[np.minimum(pos, k - 1)] == sender_ids)
    high = k - in_pool.astype(np.int64)  # per-sender candidate count
    if np.any(high < v):
        raise ValueError(
            f"membership view too small for {v} distinct gossip targets "
            f"(churn left only {int(high.min())} candidates)"
        )
    if v * (v - 1) >= int(high.min()) - 1:
        # Dense fan-out relative to the pool: permutation draw, with the
        # sender's own slot pushed past every candidate.
        keys = rng.random((r_count, len(sender_ids), k))
        rows = np.flatnonzero(in_pool)
        if len(rows):
            keys[:, rows, pos[rows]] = np.inf
        idx = np.argsort(keys, axis=2)[:, :, :v]
        return pool[idx]
    idx = rng.integers(0, high[None, :, None], size=(r_count, len(sender_ids), v))
    idx += in_pool[None, :, None] & (idx >= pos[None, :, None])
    if v > 1:
        while True:
            ordered = np.sort(idx, axis=2)
            dup_rows = (ordered[:, :, 1:] == ordered[:, :, :-1]).any(axis=2)
            if not dup_rows.any():
                break
            count = int(dup_rows.sum())
            high_of = np.broadcast_to(high[None, :], dup_rows.shape)[dup_rows]
            redraw = rng.integers(0, high_of[:, None], size=(count, v))
            pos_of = np.broadcast_to(pos[None, :], dup_rows.shape)[dup_rows]
            inp_of = np.broadcast_to(in_pool[None, :], dup_rows.shape)[dup_rows]
            redraw += inp_of[:, None] & (redraw >= pos_of[:, None])
            idx[dup_rows] = redraw
    return pool[idx]


def _accept_any(
    rng: np.random.Generator,
    m_arrivals: np.ndarray,
    total_arrivals: np.ndarray,
    bound: int,
) -> np.ndarray:
    """Whether ≥1 M-carrying message survives bounded random acceptance.

    Exact: the accepted subset is uniform over all arrivals, so the
    number of accepted M-messages is hypergeometric.
    """
    got = np.zeros(m_arrivals.shape, dtype=bool)
    under = total_arrivals <= bound
    got[under] = m_arrivals[under] >= 1
    over = ~under & (m_arrivals > 0)
    if over.any():
        accepted = rng.hypergeometric(
            m_arrivals[over], total_arrivals[over] - m_arrivals[over], bound
        )
        got[over] = accepted >= 1
    return got


def run_fast(
    scenario: Scenario,
    runs: int,
    *,
    seed: SeedLike = None,
    horizon: Optional[int] = None,
    tracer=None,
) -> MonteCarloResult:
    """Simulate ``runs`` independent runs of ``scenario``.

    ``horizon`` forces simulating exactly that many rounds regardless of
    the coverage threshold — used by the CDF experiments, which plot
    coverage growth past 99 %.

    ``tracer`` attaches a :class:`repro.obs.Tracer`.  The vectorised
    engine has no per-message view, so it emits *aggregate* events:
    one ``gossip_sent`` / ``flood_sent`` / ``delivered`` per round
    carrying run-summed ``count`` totals (flood counts are post-loss —
    the thinned arrivals are all this engine materialises).  The tracer
    draws no randomness, so traced results are bit-identical.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if scenario.n > FAST_MAX_N:
        # The refusal text comes from the engine registry so it names
        # whichever registered engines actually scale past this limit
        # (lazy import: the registry imports this module's FAST_MAX_N).
        from repro.api.engines import group_size_refusal

        raise ValueError(
            group_size_refusal(
                "fast",
                scenario.n,
                detail="its per-round view matrices would need multi-GB "
                "allocations at this size",
            )
        )
    # Resolve the fault plan up front (seedless): churn plans run on a
    # dedicated loop whose state spans the extended id universe.
    schedule = scenario.fault_schedule()
    if schedule is not None and schedule.has_churn:
        return _run_fast_churn(
            scenario, runs, schedule, seed=seed, horizon=horizon, tracer=tracer
        )
    rng = derive_rng(seed)
    n = scenario.n
    cfg = scenario.protocol_config()
    kind = scenario.protocol
    loss = scenario.loss

    num_alive = scenario.num_alive_correct
    num_attacked = scenario.num_attacked
    # The deterministic scenario layout puts alive correct processes at
    # the lowest ids; the engine relies on that contiguity.
    senders = np.arange(num_alive)
    alive_mask = np.zeros(n, dtype=bool)
    alive_mask[:num_alive] = True

    v_push = cfg.view_push_size
    v_pull = cfg.view_pull_size
    shared_bound = cfg.shared_in_bound
    if v_push + v_pull > n - 1:
        raise ValueError(
            f"group of {n} is too small for a combined fan-out of "
            f"{v_push + v_pull} distinct targets"
        )

    if scenario.attack is not None:
        load = scenario.attack.port_load(kind)
    else:
        load = PortLoad()

    num_perturbed = scenario.num_perturbed
    perturb_lo = num_alive - num_perturbed
    perturb_prob = scenario.perturbation_prob

    # -- fault plan ----------------------------------------------------------
    # The schedule resolves crash / stall / partition windows to id sets
    # (seedless, identical to the exact engine's resolution).  Bursty
    # loss runs one Gilbert–Elliott chain per *run*, stepped once per
    # round — a coarser burst granularity than the exact engine's
    # per-packet chain, but the same stationary loss; cross-engine
    # equivalence under faults is statistical only.  None of this block
    # touches the RNG unless the scenario carries faults.
    ge = None
    ge_bad = None
    nondoomed_cols = None
    if schedule is not None:
        link = scenario.faults.link
        if link is not None and link.affects_loss:
            ge = link
            ge_bad = np.zeros(runs, dtype=bool)
        doomed = schedule.doomed_ids(scenario.max_rounds)
        if doomed:
            nondoomed_cols = np.array(
                [i for i in range(num_alive) if i not in doomed]
            )

    has = np.zeros((runs, n), dtype=bool)
    has[:, scenario.source] = True

    target = scenario.threshold_count()
    max_rounds = horizon if horizon is not None else scenario.max_rounds

    cur_total = np.ones(runs, dtype=np.int32)
    cur_attacked = np.ones(runs, dtype=np.int32)  # the source is attacked
    if num_attacked == 0:
        cur_attacked = np.zeros(runs, dtype=np.int32)
    hist_total: List[np.ndarray] = [cur_total.copy()]
    hist_attacked: List[np.ndarray] = [cur_attacked.copy()]

    active = np.ones(runs, dtype=bool)
    if horizon is None:
        active &= cur_total < target

    if tracer is not None:
        tracer.run_start(
            "fast", protocol=scenario.protocol.value, n=n, runs=runs
        )
        tracer.delivered(
            node=scenario.source, via="source", count=int(cur_total.sum())
        )

    for round_no in range(1, max_rounds + 1):
        if not active.any():
            break
        act = np.flatnonzero(active)
        r_count = len(act)
        if tracer is not None:
            tracer.round_start(round_no, active_runs=r_count)
        has_start = has[act]
        new_has = has_start.copy()

        # Per-run bursty loss: step every run's Gilbert–Elliott chain
        # once per round (active or not, so the stream never depends on
        # which runs already stopped), then broadcast the per-run loss
        # against the per-view draw shapes below.
        if ge is not None:
            flip = np.where(ge_bad, ge.p_bad_to_good, ge.p_good_to_bad)
            ge_bad ^= rng.random(runs) < flip
            loss_run = np.where(ge_bad, ge.loss_bad, ge.loss_good)[act]
            loss2 = loss_run[:, None]
            loss3 = loss_run[:, None, None]
        else:
            loss2 = loss3 = loss

        views = _draw_views(rng, r_count, senders, n, v_push + v_pull)
        t_push = views[:, :, :v_push]
        t_pull = views[:, :, v_push:]

        # Perturbed processes sleep through a round with probability
        # perturbation_prob: no sending, no accepting, no replying.
        awake = np.ones((r_count, n), dtype=bool)
        if num_perturbed and perturb_prob > 0:
            awake[:, perturb_lo:num_alive] = (
                rng.random((r_count, num_perturbed)) >= perturb_prob
            )

        # Scheduled fault events, resolved exactly like the exact
        # engine: crashed processes take part in nothing (their ``has``
        # state persists), stalled processes send nothing — no gossip,
        # no replies — but keep accepting, and a partition cuts member
        # links crossing the split (attacker floods originate outside
        # the group and are never cut).
        in_a = None
        stall_ok = None
        if schedule is not None:
            crashed = schedule.crashed_at(round_no)
            if crashed:
                awake[:, list(crashed)] = False
            stalled = schedule.stalled_at(round_no)
            if stalled:
                stall_ok = np.ones(n, dtype=bool)
                stall_ok[list(stalled)] = False
            side_a = schedule.partition_at(round_no)
            if side_a is not None:
                in_a = np.zeros(n, dtype=bool)
                in_a[list(side_a)] = True

        sender_awake = awake[:, :num_alive, None]
        if stall_ok is not None:
            sender_awake = sender_awake & stall_ok[:num_alive][None, :, None]

        # ---- gather per-target channel loads -------------------------------
        push_valid = push_m = fab_push = None
        if v_push:
            sent = (rng.random(t_push.shape) >= loss3) & sender_awake
            if in_a is not None:
                sent &= in_a[:num_alive][None, :, None] == in_a[t_push]
            run_ix = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_push.shape
            )
            push_valid = _bincount(
                run_ix[sent], t_push[sent], r_count, n
            )
            holder = sent & has_start[:, :num_alive, None]
            push_m = _bincount(run_ix[holder], t_push[holder], r_count, n)
            fab_push = np.zeros((r_count, n), dtype=np.int64)
            if load.push > 0 and num_attacked:
                fab_push[:, :num_attacked] = _fabricated_counts(
                    rng, load.push, (r_count, num_attacked), loss2
                )

        req_valid = fab_req = req_sent = None
        fab_reply = None
        if v_pull:
            req_sent = (rng.random(t_pull.shape) >= loss3) & sender_awake
            if in_a is not None:
                req_sent &= in_a[:num_alive][None, :, None] == in_a[t_pull]
            run_ix_q = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_pull.shape
            )
            req_valid = _bincount(
                run_ix_q[req_sent], t_pull[req_sent], r_count, n
            )
            fab_req = np.zeros((r_count, n), dtype=np.int64)
            if load.pull_request > 0 and num_attacked:
                fab_req[:, :num_attacked] = _fabricated_counts(
                    rng, load.pull_request, (r_count, num_attacked), loss2
                )

        # ---- shared-bounds variant: joint control-message pool ---------------
        # The pool at each node holds push-offer arrivals, pull-request
        # arrivals, the fabricated flood on both well-known ports, and
        # the node's own incoming push-replies (one per offer it sent).
        # Every control message independently wins one of the
        # ``shared_bound`` slots with the pool's marginal probability.
        p_pool = None
        if shared_bound is not None:
            pool = (push_valid + fab_push + req_valid + fab_req).astype(float)
            pool[:, :num_alive] += v_push
            with np.errstate(divide="ignore", invalid="ignore"):
                p_pool = np.where(
                    pool > 0, np.minimum(1.0, shared_bound / pool), 1.0
                )
            p_pool = p_pool * alive_mask[None, :] * awake

        # ---- push reception --------------------------------------------------
        if v_push and shared_bound is None:
            total = push_valid + fab_push
            got_push = _accept_any(rng, push_m, total, cfg.push_in_bound)
            got_push &= alive_mask[None, :] & awake
            new_has |= got_push
        elif v_push:
            # Offer handshake: the offer must win the target's pool, the
            # push-reply must win the sender's pool, and each of offer /
            # reply / data crosses one lossy link.
            run_ix = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_push.shape
            )
            offer_ok = (rng.random(t_push.shape) >= loss3) & sender_awake
            if in_a is not None:
                offer_ok &= in_a[:num_alive][None, :, None] == in_a[t_push]
            offer_acc = offer_ok & (
                rng.random(t_push.shape) < p_pool[run_ix, t_push]
            )
            if stall_ok is not None:
                # A stalled target accepts the offer but its push-reply
                # never leaves the machine.
                offer_acc &= stall_ok[t_push]
            reply_acc = (
                offer_acc
                & (rng.random(t_push.shape) >= loss3)
                & (rng.random(t_push.shape) < p_pool[:, :num_alive, None])
            )
            data_ok = reply_acc & (rng.random(t_push.shape) >= loss3)
            m_data = data_ok & has_start[:, :num_alive, None]
            arrivals = _bincount(run_ix[m_data], t_push[m_data], r_count, n)
            got_push = (arrivals >= 1) & alive_mask[None, :] & awake
            new_has |= got_push

        # ---- pull: request acceptance and replies -----------------------------
        if v_pull:
            if shared_bound is not None:
                accept_prob = p_pool * awake
            else:
                denom = req_valid + fab_req
                with np.errstate(divide="ignore", invalid="ignore"):
                    accept_prob = np.where(
                        denom > 0,
                        np.minimum(1.0, cfg.pull_in_bound / denom),
                        1.0,
                    )
                accept_prob = accept_prob * alive_mask[None, :] * awake

            run_ix_q = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_pull.shape
            )
            accepted = req_sent & (
                rng.random(t_pull.shape) < accept_prob[run_ix_q, t_pull]
            )
            if stall_ok is not None:
                # A stalled target accepts the request but its reply
                # never leaves the machine.
                accepted &= stall_ok[t_pull]
            reply_ok = accepted & (rng.random(t_pull.shape) >= loss3)
            m_reply = reply_ok & has_start[run_ix_q, t_pull]

            if cfg.uses_random_ports:
                got_pull = m_reply.any(axis=2)
            else:
                # Well-known reply port: bounded and attacked (Fig 12a).
                replies = reply_ok.sum(axis=2)
                m_replies = m_reply.sum(axis=2)
                fab_reply = np.zeros((r_count, num_alive), dtype=np.int64)
                if load.pull_reply > 0 and num_attacked:
                    fab_reply[:, :num_attacked] = _fabricated_counts(
                        rng, load.pull_reply, (r_count, num_attacked), loss2
                    )
                got_pull = _accept_any(
                    rng, m_replies, replies + fab_reply, cfg.pull_in_bound
                )
            new_has[:, :num_alive] |= got_pull

        has[act] = new_has
        cur_total[act] = new_has[:, :num_alive].sum(axis=1, dtype=np.int32)
        cur_attacked[act] = new_has[:, :num_attacked].sum(
            axis=1, dtype=np.int32
        )
        hist_total.append(cur_total.copy())
        hist_attacked.append(cur_attacked.copy())

        if tracer is not None:
            attempts = int(sender_awake.sum()) * (v_push + v_pull)
            if attempts:
                tracer.gossip_sent(-1, -1, count=attempts)
            fab_total = 0
            for fab in (fab_push, fab_req, fab_reply):
                if fab is not None:
                    fab_total += int(fab.sum())
            if fab_total:
                tracer.flood_sent(-1, -1, count=fab_total)
            delivered_now = int(
                new_has[:, :num_alive].sum() - has_start[:, :num_alive].sum()
            )
            if delivered_now:
                tracer.delivered(count=delivered_now)

        if horizon is None:
            active[act] = cur_total[act] < target
            if nondoomed_cols is not None:
                # Processes crashed for good can strand runs below the
                # threshold forever; a run is over once every process
                # that can still change state holds M.
                active[act] &= ~new_has[:, nondoomed_cols].all(axis=1)

    if tracer is not None:
        tracer.run_end(
            rounds=len(hist_total) - 1,
            delivered=int(cur_total.sum()),
            runs=runs,
        )
    counts = np.stack(hist_total, axis=1)
    counts_attacked = np.stack(hist_attacked, axis=1)
    reachable_holders = None
    if schedule is not None:
        reachable = sorted(schedule.reachable_ids(scenario.max_rounds))
        reachable_holders = has[:, reachable].sum(axis=1).astype(np.int32)
    return MonteCarloResult(
        scenario=scenario,
        counts=counts,
        counts_attacked=counts_attacked,
        counts_non_attacked=counts - counts_attacked,
        reachable_holders=reachable_holders,
    )


def _run_fast_churn(
    scenario: Scenario,
    runs: int,
    schedule,
    *,
    seed: SeedLike,
    horizon: Optional[int],
    tracer,
) -> MonteCarloResult:
    """Churn-mode vectorised loop over the extended id universe.

    Joiners occupy ids ``n .. total_n - 1`` and the state arrays span
    ``total_n`` columns.  Membership is the deterministic awareness-lag
    model shared with the mega engine: every node's gossip candidate
    list at round ``r`` is ``schedule.aware_targets_at(r, lag)`` with
    ``lag = schedule.awareness_lag(fan_out)`` — a membership event
    becomes globally visible after the logarithmic dissemination delay
    an epidemic of the event record needs, and failure-detector
    suspicions drop unresponsive members from the pool after
    ``FD_TIMEOUT_ROUNDS`` silent rounds.  The exact engine realises the
    same sequence of join / leave / expel / suspect transitions through
    object-level certificates and per-process detectors; the fast model
    keeps the *sequence* identical (it is resolved seedlessly by the
    schedule) and approximates only the propagation jitter.

    This loop is only entered for plans with churn tokens, so the
    faultless and crash/partition-only RNG streams of :func:`run_fast`
    are untouched.
    """
    rng = derive_rng(seed)
    n = scenario.n
    total_n = schedule.total_n
    if total_n > FAST_MAX_N:
        from repro.api.engines import group_size_refusal

        raise ValueError(
            group_size_refusal(
                "fast",
                total_n,
                detail="the churn plan grows the group to this many ids",
            )
        )
    cfg = scenario.protocol_config()
    loss = scenario.loss
    num_alive = scenario.num_alive_correct
    num_attacked = scenario.num_attacked
    lag = schedule.awareness_lag(scenario.fan_out)

    # Correct processes: the initial alive-correct block plus every
    # joiner id.  Malicious and crashed-block ids never accept M.
    correct = np.zeros(total_n, dtype=bool)
    correct[:num_alive] = True
    correct[n:] = True

    v_push = cfg.view_push_size
    v_pull = cfg.view_pull_size
    shared_bound = cfg.shared_in_bound
    if v_push + v_pull > n - 1:
        raise ValueError(
            f"group of {n} is too small for a combined fan-out of "
            f"{v_push + v_pull} distinct targets"
        )

    if scenario.attack is not None:
        load = scenario.attack.port_load(scenario.protocol)
    else:
        load = PortLoad()

    num_perturbed = scenario.num_perturbed
    perturb_lo = num_alive - num_perturbed
    perturb_prob = scenario.perturbation_prob

    ge = None
    ge_bad = None
    link = scenario.faults.link if scenario.faults is not None else None
    if link is not None and link.affects_loss:
        ge = link
        ge_bad = np.zeros(runs, dtype=bool)

    # Joiner bookkeeping: spawn rounds and first-delivery rounds feed
    # the join-latency metric.
    join_round_of = {}
    for at, _stop, first_id, count in schedule.join_blocks():
        for j in range(first_id, first_id + count):
            join_round_of[j] = at
    joiner_ids = np.array(sorted(join_round_of), dtype=np.int64)
    join_rounds = np.array(
        [join_round_of[j] for j in joiner_ids], dtype=np.int64
    )
    deliv = np.full((runs, len(joiner_ids)), -1, dtype=np.int32)

    doomed = schedule.doomed_ids(scenario.max_rounds)
    nondoomed_cols = None
    if doomed:
        nondoomed_cols = np.array(
            sorted(
                (set(range(num_alive)) | set(joiner_ids.tolist())) - doomed
            ),
            dtype=np.int64,
        )

    # Runs stay active until every membership event has both fired and
    # propagated, mirroring the exact engine's minimum-round floor.
    min_rounds = max(e["round"] for e in schedule.churn_timeline()) + lag

    has = np.zeros((runs, total_n), dtype=bool)
    has[:, scenario.source] = True

    target = scenario.threshold_count()
    max_rounds = horizon if horizon is not None else scenario.max_rounds

    cur_total = np.ones(runs, dtype=np.int32)
    cur_attacked = np.ones(runs, dtype=np.int32)
    if num_attacked == 0:
        cur_attacked = np.zeros(runs, dtype=np.int32)
    hist_total: List[np.ndarray] = [cur_total.copy()]
    hist_attacked: List[np.ndarray] = [cur_attacked.copy()]

    active = np.ones(runs, dtype=bool)
    end_round = np.zeros(runs, dtype=np.int32)

    if tracer is not None:
        tracer.run_start(
            "fast", protocol=scenario.protocol.value, n=n, runs=runs
        )
        tracer.delivered(
            node=scenario.source, via="source", count=int(cur_total.sum())
        )

    for round_no in range(1, max_rounds + 1):
        if not active.any():
            break
        act = np.flatnonzero(active)
        r_count = len(act)
        if tracer is not None:
            tracer.round_start(round_no, active_runs=r_count)
        has_start = has[act]
        new_has = has_start.copy()

        if ge is not None:
            flip = np.where(ge_bad, ge.p_bad_to_good, ge.p_good_to_bad)
            ge_bad ^= rng.random(runs) < flip
            loss_run = np.where(ge_bad, ge.loss_bad, ge.loss_good)[act]
            loss2 = loss_run[:, None]
            loss3 = loss_run[:, None, None]
        else:
            loss2 = loss3 = loss

        # ---- deterministic membership state for this round ------------------
        present = schedule.present_at(round_no)
        crashed = schedule.crashed_at(round_no)
        stalled = schedule.stalled_at(round_no)
        pool = np.fromiter(
            sorted(schedule.aware_targets_at(round_no, lag)),
            dtype=np.int64,
        )
        present_mask = np.zeros(total_n, dtype=bool)
        present_mask[list(present)] = True
        can_recv = correct & present_mask
        sender_ids = np.array(
            sorted(
                i
                for i in present
                if (i < num_alive or i >= n)
                and i not in crashed
                and i not in stalled
            ),
            dtype=np.int64,
        )

        views = _draw_views_from_pool(
            rng, r_count, sender_ids, pool, v_push + v_pull
        )
        t_push = views[:, :, :v_push]
        t_pull = views[:, :, v_push:]

        awake = np.ones((r_count, total_n), dtype=bool)
        if num_perturbed and perturb_prob > 0:
            awake[:, perturb_lo:num_alive] = (
                rng.random((r_count, num_perturbed)) >= perturb_prob
            )
        if crashed:
            awake[:, list(crashed)] = False
        stall_ok = None
        if stalled:
            stall_ok = np.ones(total_n, dtype=bool)
            stall_ok[list(stalled)] = False
        in_a = None
        side_a = schedule.partition_at(round_no)
        if side_a is not None:
            # Joiners sit with the source's side of the split, matching
            # the schedule's reachability accounting.
            in_a = np.zeros(total_n, dtype=bool)
            in_a[list(side_a)] = True
            in_a[n:] = in_a[scenario.source]

        sender_awake = awake[:, sender_ids, None]
        if stall_ok is not None:
            sender_awake = sender_awake & stall_ok[sender_ids][None, :, None]

        push_valid = push_m = fab_push = None
        if v_push:
            sent = (rng.random(t_push.shape) >= loss3) & sender_awake
            if in_a is not None:
                sent &= in_a[sender_ids][None, :, None] == in_a[t_push]
            run_ix = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_push.shape
            )
            push_valid = _bincount(
                run_ix[sent], t_push[sent], r_count, total_n
            )
            holder = sent & has_start[:, sender_ids][:, :, None]
            push_m = _bincount(
                run_ix[holder], t_push[holder], r_count, total_n
            )
            fab_push = np.zeros((r_count, total_n), dtype=np.int64)
            if load.push > 0 and num_attacked:
                fab_push[:, :num_attacked] = _fabricated_counts(
                    rng, load.push, (r_count, num_attacked), loss2
                )

        req_valid = fab_req = req_sent = None
        fab_reply = None
        if v_pull:
            req_sent = (rng.random(t_pull.shape) >= loss3) & sender_awake
            if in_a is not None:
                req_sent &= in_a[sender_ids][None, :, None] == in_a[t_pull]
            run_ix_q = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_pull.shape
            )
            req_valid = _bincount(
                run_ix_q[req_sent], t_pull[req_sent], r_count, total_n
            )
            fab_req = np.zeros((r_count, total_n), dtype=np.int64)
            if load.pull_request > 0 and num_attacked:
                fab_req[:, :num_attacked] = _fabricated_counts(
                    rng, load.pull_request, (r_count, num_attacked), loss2
                )

        p_pool = None
        if shared_bound is not None:
            pool_load = (push_valid + fab_push + req_valid + fab_req).astype(
                float
            )
            pool_load[:, sender_ids] += v_push
            with np.errstate(divide="ignore", invalid="ignore"):
                p_pool = np.where(
                    pool_load > 0,
                    np.minimum(1.0, shared_bound / pool_load),
                    1.0,
                )
            p_pool = p_pool * can_recv[None, :] * awake

        if v_push and shared_bound is None:
            total = push_valid + fab_push
            got_push = _accept_any(rng, push_m, total, cfg.push_in_bound)
            got_push &= can_recv[None, :] & awake
            new_has |= got_push
        elif v_push:
            run_ix = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_push.shape
            )
            offer_ok = (rng.random(t_push.shape) >= loss3) & sender_awake
            if in_a is not None:
                offer_ok &= in_a[sender_ids][None, :, None] == in_a[t_push]
            offer_acc = offer_ok & (
                rng.random(t_push.shape) < p_pool[run_ix, t_push]
            )
            if stall_ok is not None:
                offer_acc &= stall_ok[t_push]
            reply_acc = (
                offer_acc
                & (rng.random(t_push.shape) >= loss3)
                & (rng.random(t_push.shape) < p_pool[:, sender_ids, None])
            )
            data_ok = reply_acc & (rng.random(t_push.shape) >= loss3)
            m_data = data_ok & has_start[:, sender_ids][:, :, None]
            arrivals = _bincount(
                run_ix[m_data], t_push[m_data], r_count, total_n
            )
            got_push = (arrivals >= 1) & can_recv[None, :] & awake
            new_has |= got_push

        if v_pull:
            if shared_bound is not None:
                accept_prob = p_pool * awake
            else:
                denom = req_valid + fab_req
                with np.errstate(divide="ignore", invalid="ignore"):
                    accept_prob = np.where(
                        denom > 0,
                        np.minimum(1.0, cfg.pull_in_bound / denom),
                        1.0,
                    )
                accept_prob = accept_prob * can_recv[None, :] * awake

            run_ix_q = np.broadcast_to(
                np.arange(r_count)[:, None, None], t_pull.shape
            )
            accepted = req_sent & (
                rng.random(t_pull.shape) < accept_prob[run_ix_q, t_pull]
            )
            if stall_ok is not None:
                accepted &= stall_ok[t_pull]
            reply_ok = accepted & (rng.random(t_pull.shape) >= loss3)
            m_reply = reply_ok & has_start[run_ix_q, t_pull]

            if cfg.uses_random_ports:
                got_pull = m_reply.any(axis=2)
            else:
                replies = reply_ok.sum(axis=2)
                m_replies = m_reply.sum(axis=2)
                fab_reply = np.zeros(
                    (r_count, len(sender_ids)), dtype=np.int64
                )
                rows_attacked = np.flatnonzero(sender_ids < num_attacked)
                if load.pull_reply > 0 and len(rows_attacked):
                    fab_reply[:, rows_attacked] = _fabricated_counts(
                        rng,
                        load.pull_reply,
                        (r_count, len(rows_attacked)),
                        loss2,
                    )
                got_pull = _accept_any(
                    rng, m_replies, replies + fab_reply, cfg.pull_in_bound
                )
            new_has[:, sender_ids] = new_has[:, sender_ids] | got_pull

        has[act] = new_has
        cur_total[act] = new_has[:, :num_alive].sum(axis=1, dtype=np.int32)
        cur_attacked[act] = new_has[:, :num_attacked].sum(
            axis=1, dtype=np.int32
        )
        hist_total.append(cur_total.copy())
        hist_attacked.append(cur_attacked.copy())
        end_round[act] = round_no

        if len(joiner_ids):
            fresh = new_has[:, joiner_ids] & (deliv[act] == -1)
            if fresh.any():
                block = deliv[act]
                block[fresh] = round_no
                deliv[act] = block

        if tracer is not None:
            attempts = int(sender_awake.sum()) * (v_push + v_pull)
            if attempts:
                tracer.gossip_sent(-1, -1, count=attempts)
            fab_total = 0
            for fab in (fab_push, fab_req, fab_reply):
                if fab is not None:
                    fab_total += int(fab.sum())
            if fab_total:
                tracer.flood_sent(-1, -1, count=fab_total)
            delivered_now = int(new_has.sum() - has_start.sum())
            if delivered_now:
                tracer.delivered(count=delivered_now)

        if horizon is None and round_no >= min_rounds:
            still = cur_total[act] < target
            if nondoomed_cols is not None:
                still &= ~new_has[:, nondoomed_cols].all(axis=1)
            active[act] = still

    if tracer is not None:
        tracer.run_end(
            rounds=len(hist_total) - 1,
            delivered=int(cur_total.sum()),
            runs=runs,
        )
    counts = np.stack(hist_total, axis=1)
    counts_attacked = np.stack(hist_attacked, axis=1)
    reachable = schedule.reachable_ids(scenario.max_rounds)
    reachable_holders = (
        has[:, sorted(reachable)].sum(axis=1).astype(np.int32)
    )

    # churn_stats[:, 0]: mean join latency (rounds from spawn to first
    # copy of M) over joiners still reachable at the horizon, censored
    # at each run's final simulated round.  churn_stats[:, 1]: view
    # convergence — deterministic ``lag`` under the awareness model.
    churn_stats = np.full((runs, 2), np.nan, dtype=np.float64)
    reach_mask = np.array(
        [int(j) in reachable for j in joiner_ids], dtype=bool
    )
    if reach_mask.any():
        # Latency counts joiner-local rounds starting at 1 (delivery in
        # the spawn round itself is latency 1), matching the exact
        # engine's per-process round clock.
        d = deliv[:, reach_mask].astype(np.float64)
        jr = join_rounds[reach_mask].astype(np.float64)
        latency = np.where(d >= 0, d - jr, end_round[:, None] - jr) + 1.0
        churn_stats[:, 0] = np.maximum(latency, 1.0).mean(axis=1)
    churn_stats[:, 1] = float(lag)
    return MonteCarloResult(
        scenario=scenario,
        counts=counts,
        counts_attacked=counts_attacked,
        counts_non_attacked=counts - counts_attacked,
        reachable_holders=reachable_holders,
        churn_stats=churn_stats,
    )
