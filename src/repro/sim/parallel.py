"""Parallel, deterministic Monte-Carlo execution.

This module shards Monte-Carlo work across the process-wide persistent
pool (:mod:`repro.sim.executor`) while keeping every result a pure
function of the root seed, *independent of the worker count*:

- the run fan-out of :func:`~repro.sim.runner.monte_carlo` is split into
  shards whose layout and seeds depend only on ``(runs, seed)`` — never
  on ``workers`` — so ``workers=1`` and ``workers=8`` produce
  bit-identical :class:`~repro.sim.results.MonteCarloResult` arrays;
- the sweep helpers in :mod:`repro.sim.sweeps` pre-derive every grid
  cell's seed in the parent and only *schedule* cells on the pool, so
  sweep reports are byte-identical JSON for any worker count.

Execution is organised as **jobs** (:func:`make_job` /
:func:`execute_job`): a job knows its deterministic shard layout up
front, which is what enables the zero-copy result path — the parent
preallocates one shared-memory segment shaped by that layout
(:class:`~repro.sim.executor.SharedArrays`), each worker writes its
shard's trajectory rows directly into its slice (padded with each row's
final value, exactly the :func:`_stack_padded` rule), and the parent
assembles the result without any array travelling through a pickle.
Traced runs, serial runs, and platforms without shared memory fall back
to the historical pickled-shard path; both paths assemble positionally
and are byte-identical.

The worker count defaults to the ``REPRO_WORKERS`` environment variable
(validated exactly like ``REPRO_RUNS``; fallback 1 = serial in-process).
The pool's start method honours ``REPRO_START_METHOD`` — see
:func:`repro.sim.executor.start_method`.

:class:`ResultCache` adds an on-disk memo keyed by ``(scenario, runs,
seed, engine, horizon)`` so benchmark figures that share sweep points
(e.g. the rate-0 baseline reused across Figures 2, 3, and 7) compute
each point once.  Decoded entries are additionally held in a
process-wide LRU (validated against the file's stat signature), so the
figures sharing a point decode its npz once per process rather than
once per figure.  Cache reads are best-effort — a missing, corrupted,
or partially-written entry falls back to recomputation — but no longer
*silently*: :meth:`ResultCache.load_ex` distinguishes ``hit`` /
``miss`` / ``corrupt``, and a ``tracer`` turns those into
``cache_hit`` / ``cache_miss`` / ``cache_corrupt`` events.
"""

from __future__ import annotations

import math
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.engine import run_exact
from repro.sim.executor import (
    SharedArrays,
    get_pool,
    mp_context,
    try_shared,
)
from repro.sim.fast import run_fast
from repro.sim.results import MonteCarloResult
from repro.sim.scenario import Scenario
from repro.util import spawn_seeds
from repro.util.canonical import canonical_key
from repro.util.rng import SeedLike

#: Runs per fast-engine shard.  The shard layout is a function of the
#: run count only (never of the worker count) — that is what makes
#: results worker-count invariant.  64 keeps shards large enough to
#: vectorise well while giving a 1000-run point 16-way parallelism.
FAST_SHARD_RUNS = 64


# ---------------------------------------------------------------------------
# worker-count plumbing
# ---------------------------------------------------------------------------

def check_workers(value) -> int:
    """Validate a worker count: an integer >= 1."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"workers must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"workers must be >= 1, got {value}")
    return int(value)


def default_workers(fallback: int = 1) -> int:
    """The worker count: ``REPRO_WORKERS`` env var or ``fallback``."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return fallback
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def _mp_context():
    """The pool's multiprocessing context (kept as the historical name).

    Delegates to :func:`repro.sim.executor.mp_context`: ``fork`` where
    available and safe (no live non-daemon threads), overridable via
    ``REPRO_START_METHOD``.
    """
    return mp_context()


def parallel_map(fn: Callable, tasks: Sequence, workers: int = 1) -> List:
    """``[fn(t) for t in tasks]``, optionally across the persistent pool.

    Output order always matches input order, so callers see identical
    results for any ``workers``; with one task (or one worker) the work
    runs serially in-process.  Parallel calls ride the process-wide
    :class:`~repro.sim.executor.WorkerPool` — the pool is forked once
    and reused, not per call.
    """
    tasks = list(tasks)
    workers = check_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    pool = get_pool(min(workers, len(tasks)))
    return pool.run_calls([(fn, task) for task in tasks])


# ---------------------------------------------------------------------------
# sharded monte_carlo execution
# ---------------------------------------------------------------------------

def child_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """``spawn_seeds`` without mutating a caller-owned ``SeedSequence``.

    ``SeedSequence.spawn`` advances the parent's child counter, which
    would make an experiment's result depend on how many experiments
    shared the seed *before* it — and a pool worker's pickled copy would
    not see the parent's mutations, so serial and parallel sweeps would
    diverge.  Deriving children positionally from the seed's value
    (entropy + spawn_key) keeps every experiment a pure function of the
    seed.  Generator seeds stay stateful by design and fall back to
    :func:`spawn_seeds`.
    """
    if isinstance(seed, np.random.Generator):
        return spawn_seeds(seed, count)
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [
        np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=tuple(root.spawn_key) + (i,),
            pool_size=root.pool_size,
        )
        for i in range(count)
    ]


def fast_shard_sizes(runs: int) -> List[int]:
    """Deterministic fast-engine shard layout for ``runs`` runs.

    A function of ``runs`` alone, so the per-shard seed derivation (and
    therefore every sampled value) is identical for any worker count.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    full, rem = divmod(runs, FAST_SHARD_RUNS)
    return [FAST_SHARD_RUNS] * full + ([rem] if rem else [])


def _shard_tracer():
    """A worker-local (tracer, sink) pair for traced shard execution.

    Workers cannot share the caller's tracer across process boundaries,
    so each shard records into its own in-memory sink and ships the
    plain-dict events back with its arrays; the parent re-emits them in
    deterministic shard order (see :func:`run_sharded`).
    """
    from repro.obs import MemorySink, Tracer

    sink = MemorySink()
    return Tracer(sink), sink


def _fast_shard(task) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray], Optional[list]]:
    scenario, shard_runs, seed, horizon, trace = task
    tracer = sink = None
    if trace:
        tracer, sink = _shard_tracer()
    result = run_fast(
        scenario, shard_runs, seed=seed, horizon=horizon, tracer=tracer
    )
    return (
        result.counts,
        result.counts_attacked,
        result.counts_non_attacked,
        result.reachable_holders,
        result.churn_stats,
        sink.events if sink is not None else None,
    )


def _run_churn_row(result) -> np.ndarray:
    """One exact run's ``[join_latency, view_convergence]`` row."""
    churn = result.churn or {}
    return np.array(
        [
            [
                float(churn.get("join_latency", float("nan"))),
                float(churn.get("view_convergence", float("nan"))),
            ]
        ],
        dtype=np.float64,
    )


def _exact_shard(task) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray], Optional[list]]]:
    scenario, seeds, trace = task
    schedule = scenario.fault_schedule()
    reachable = (
        None
        if schedule is None
        else len(schedule.reachable_ids(scenario.max_rounds))
    )
    has_churn = schedule is not None and schedule.has_churn
    out = []
    for seed in seeds:
        tracer = sink = None
        if trace:
            tracer, sink = _shard_tracer()
        result = run_exact(scenario, seed=seed, tracer=tracer)
        holders = None
        if reachable is not None:
            # residual_reliability is holders/reachable, so this
            # round-trips the integer numerator exactly.
            holders = np.array(
                [int(round(result.residual_reliability * reachable))],
                dtype=np.int32,
            )
        churn = _run_churn_row(result) if has_churn else None
        out.append(
            (
                result.counts,
                result.counts_attacked,
                result.counts_non_attacked,
                holders,
                churn,
                sink.events if sink is not None else None,
            )
        )
    return out


def _write_rows(dest: np.ndarray, row0: int, block: np.ndarray) -> None:
    """Write a 2-D trajectory block into ``dest`` starting at ``row0``,
    padding each row's tail columns with that row's final value (the
    :func:`_stack_padded` rule, applied at write time)."""
    rows, cols = block.shape
    dest[row0:row0 + rows, :cols] = block
    if cols < dest.shape[1]:
        dest[row0:row0 + rows, cols:] = block[:, -1:]


def _fast_shard_shm(task) -> int:
    """Fast shard on the zero-copy path: arrays land in shared memory,
    only the shard's trajectory width returns through the pickle."""
    scenario, shard_runs, seed, horizon, descriptor, row0 = task
    result = run_fast(scenario, shard_runs, seed=seed, horizon=horizon)
    shm, views = SharedArrays.attach(descriptor)
    try:
        _write_rows(views["counts"], row0, result.counts)
        _write_rows(views["attacked"], row0, result.counts_attacked)
        _write_rows(views["non_attacked"], row0, result.counts_non_attacked)
        if result.reachable_holders is not None:
            views["holders"][row0:row0 + shard_runs] = (
                result.reachable_holders
            )
        if result.churn_stats is not None:
            views["churn"][row0:row0 + shard_runs] = result.churn_stats
        return int(result.counts.shape[1])
    finally:
        views = None
        shm.close()


def _exact_shard_shm(task) -> List[int]:
    """Exact chunk on the zero-copy path: per-run trajectory widths are
    the only thing pickled back."""
    scenario, seeds, descriptor, row0 = task
    schedule = scenario.fault_schedule()
    reachable = (
        None
        if schedule is None
        else len(schedule.reachable_ids(scenario.max_rounds))
    )
    has_churn = schedule is not None and schedule.has_churn
    widths: List[int] = []
    shm, views = SharedArrays.attach(descriptor)
    try:
        for offset, seed in enumerate(seeds):
            result = run_exact(scenario, seed=seed)
            row = row0 + offset
            _write_rows(views["counts"], row, result.counts[None, :])
            _write_rows(
                views["attacked"], row, result.counts_attacked[None, :]
            )
            _write_rows(
                views["non_attacked"], row,
                result.counts_non_attacked[None, :],
            )
            if reachable is not None:
                views["holders"][row] = int(
                    round(result.residual_reliability * reachable)
                )
            if has_churn:
                views["churn"][row] = _run_churn_row(result)[0]
            widths.append(int(result.counts.shape[0]))
        return widths
    finally:
        views = None
        shm.close()


def _stack_padded(blocks: List[np.ndarray], width: int) -> np.ndarray:
    """Stack 2-D trajectory blocks, padding columns with the final value."""
    total = sum(block.shape[0] for block in blocks)
    out = np.zeros((total, width), dtype=np.int32)
    row = 0
    for block in blocks:
        rows, cols = block.shape
        out[row:row + rows, :cols] = block
        if cols < width:
            out[row:row + rows, cols:] = block[:, -1:]
        row += rows
    return out


class _DenseJob:
    """One fast/exact Monte-Carlo invocation as an executor job.

    A job exposes the same work in two interchangeable forms, both
    derived from the same deterministic layout so their assembled
    results are byte-identical:

    - :meth:`pickle_calls` + :meth:`assemble_pickled` — the historical
      path: shards return their arrays through the future (used serial,
      traced, and as the no-shared-memory fallback);
    - :meth:`layout` + :meth:`shm_calls` + :meth:`assemble_shm` — the
      zero-copy path: workers write rows straight into the
      :class:`~repro.sim.executor.SharedArrays` slice assigned by the
      positional layout and return only their trajectory widths.
    """

    def __init__(
        self,
        scenario: Scenario,
        runs: int,
        *,
        seed: SeedLike,
        engine: str,
        horizon: Optional[int],
        workers: int,
    ):
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        self.scenario = scenario
        self.runs = int(runs)
        self.engine = engine
        self.horizon = horizon
        schedule = scenario.fault_schedule()
        self.has_holders = schedule is not None
        self.has_churn = schedule is not None and schedule.has_churn
        #: Upper bound on any shard's trajectory width: the engines
        #: never run past max(max_rounds, horizon) rounds.  Shared rows
        #: are pre-padded to this and trimmed to the realised global
        #: maximum at assembly.
        self.width_cap = max(scenario.max_rounds, horizon or 0) + 1
        if engine == "fast":
            sizes = fast_shard_sizes(self.runs)
            if len(sizes) == 1:
                # Single shard: pass the caller's seed straight through
                # so small experiments replay the historical serial
                # stream.
                seeds: List[SeedLike] = [seed]
            else:
                seeds = list(child_seeds(seed, len(sizes)))
            self._sizes = sizes
            self._seeds = seeds
            self._rows = [0] * len(sizes)
            row = 0
            for i, size in enumerate(sizes):
                self._rows[i] = row
                row += size
        elif engine == "exact":
            run_seeds = child_seeds(seed, self.runs)
            # Result order is fixed by the per-run seeds, so the
            # chunking here only affects scheduling and may depend on
            # workers.
            chunk = max(1, math.ceil(self.runs / max(1, workers * 4)))
            self._chunks = [
                run_seeds[i:i + chunk] for i in range(0, self.runs, chunk)
            ]
            self._rows = list(range(0, self.runs, chunk))
        else:
            raise ValueError(
                f"unknown engine {engine!r}; use 'fast', 'exact', or 'mega'"
            )

    # -- pickled-result path -------------------------------------------------

    def pickle_calls(self, trace: bool) -> List[Tuple[Callable, tuple]]:
        if self.engine == "fast":
            return [
                (_fast_shard, (self.scenario, size, seed, self.horizon, trace))
                for size, seed in zip(self._sizes, self._seeds)
            ]
        return [
            (_exact_shard, (self.scenario, chunk, trace))
            for chunk in self._chunks
        ]

    def assemble_pickled(self, shards: List, tracer) -> MonteCarloResult:
        trace = tracer is not None
        if self.engine == "fast":
            triples = [shard[:5] for shard in shards]
            if trace:
                for shard_ix, shard in enumerate(shards):
                    for event in shard[5]:
                        event["shard"] = shard_ix
                        tracer.emit(event)
        else:
            per_run = [triple for shard in shards for triple in shard]
            if trace:
                for run_ix, row in enumerate(per_run):
                    for event in row[5]:
                        event["run"] = run_ix
                        tracer.emit(event)
            triples = [
                (row[None, :], att[None, :], non[None, :], holders, churn)
                for row, att, non, holders, churn, _events in per_run
            ]
        width = max(t[0].shape[1] for t in triples)
        if self.horizon is not None:
            width = max(width, self.horizon + 1)
        counts = _stack_padded([t[0] for t in triples], width)
        attacked = _stack_padded([t[1] for t in triples], width)
        non_attacked = _stack_padded([t[2] for t in triples], width)
        reachable_holders = None
        if all(t[3] is not None for t in triples):
            reachable_holders = np.concatenate([t[3] for t in triples])
        churn_stats = None
        if self.has_churn and all(t[4] is not None for t in triples):
            churn_stats = np.concatenate([t[4] for t in triples])
        return MonteCarloResult(
            scenario=self.scenario,
            counts=counts,
            counts_attacked=attacked,
            counts_non_attacked=non_attacked,
            reachable_holders=reachable_holders,
            churn_stats=churn_stats,
        )

    # -- zero-copy path ------------------------------------------------------

    def layout(self) -> List[Tuple[str, tuple, object]]:
        spec = [
            (name, (self.runs, self.width_cap), np.int32)
            for name in ("counts", "attacked", "non_attacked")
        ]
        if self.has_holders:
            spec.append(("holders", (self.runs,), np.int32))
        if self.has_churn:
            spec.append(("churn", (self.runs, 2), np.float64))
        return spec

    def shm_calls(self, descriptor) -> List[Tuple[Callable, tuple]]:
        if self.engine == "fast":
            return [
                (
                    _fast_shard_shm,
                    (self.scenario, size, seed, self.horizon, descriptor, row),
                )
                for size, seed, row in zip(
                    self._sizes, self._seeds, self._rows
                )
            ]
        return [
            (_exact_shard_shm, (self.scenario, chunk, descriptor, row))
            for chunk, row in zip(self._chunks, self._rows)
        ]

    def assemble_shm(self, shared: SharedArrays, metas: List) -> MonteCarloResult:
        widths = (
            metas
            if self.engine == "fast"
            else [w for chunk in metas for w in chunk]
        )
        width = max(widths)
        if self.horizon is not None:
            width = max(width, self.horizon + 1)
        views = shared.arrays()
        counts = np.array(views["counts"][:, :width])
        attacked = np.array(views["attacked"][:, :width])
        non_attacked = np.array(views["non_attacked"][:, :width])
        reachable_holders = (
            np.array(views["holders"]) if self.has_holders else None
        )
        churn_stats = (
            np.array(views["churn"]) if self.has_churn else None
        )
        views = None
        return MonteCarloResult(
            scenario=self.scenario,
            counts=counts,
            counts_attacked=attacked,
            counts_non_attacked=non_attacked,
            reachable_holders=reachable_holders,
            churn_stats=churn_stats,
        )


def make_job(
    scenario: Scenario,
    runs: int,
    *,
    seed: SeedLike = None,
    engine: str = "fast",
    horizon: Optional[int] = None,
    workers: int = 1,
):
    """The executor job for one Monte-Carlo invocation.

    ``engine="mega"`` returns a :class:`repro.sim.mega.MegaJob` (one
    task per packed run); ``"fast"``/``"exact"`` return a
    :class:`_DenseJob`.  Feed the job to :func:`execute_job` — the
    sweep orchestrator instead splices many jobs' calls into one global
    work queue and assembles each as its calls complete.
    """
    if engine == "mega":
        from repro.sim.mega import MegaJob

        return MegaJob(
            scenario, runs, seed=seed, horizon=horizon
        )
    return _DenseJob(
        scenario, runs, seed=seed, engine=engine, horizon=horizon,
        workers=workers,
    )


def execute_job(job, *, workers: int = 1, tracer=None, pool=None) -> MonteCarloResult:
    """Run ``job``'s calls and assemble its result.

    Serial (``workers=1``) and single-call jobs run in-process on the
    pickled path — byte-identical to the historical serial behaviour.
    Traced jobs also take the pickled path (events ride back with the
    arrays).  Everything else goes zero-copy through the persistent
    pool, falling back to pickled shards when shared memory is
    unavailable.  All paths assemble positionally, so the result is
    byte-identical regardless of path, worker count, or completion
    order.
    """
    workers = check_workers(workers)
    trace = tracer is not None
    calls = job.pickle_calls(trace)
    if workers <= 1 or len(calls) <= 1:
        shards = [fn(payload) for fn, payload in calls]
        return job.assemble_pickled(shards, tracer)
    if pool is None:
        pool = get_pool(min(workers, len(calls)))
    if trace:
        return job.assemble_pickled(pool.run_calls(calls), tracer)
    shared = try_shared(job.layout())
    if shared is None:
        return job.assemble_pickled(pool.run_calls(calls), None)
    try:
        metas = pool.run_calls(job.shm_calls(shared.descriptor))
        return job.assemble_shm(shared, metas)
    finally:
        shared.destroy()


def run_sharded(
    scenario: Scenario,
    runs: int,
    *,
    seed: SeedLike = None,
    engine: str = "fast",
    horizon: Optional[int] = None,
    workers: int = 1,
    tracer=None,
) -> MonteCarloResult:
    """Run ``scenario`` ``runs`` times, sharded across ``workers``.

    Seeds are derived in the parent before any shard executes, and the
    fast engine's shard layout depends only on ``runs`` — so the result
    is bit-identical for every worker count.  The exact engine derives
    one child seed per run (exactly the historical serial behaviour),
    which makes *its* sharding free to chase load balance.

    ``tracer`` attaches a :class:`repro.obs.Tracer`.  Each shard records
    into a worker-local in-memory sink and ships its events back; the
    parent re-emits them into the caller's tracer ordered by *shard
    index* (fast) or *run index* (exact) — an ordering fixed by the
    seed-derivation layout, never by the worker count or completion
    order, so the merged event stream is identical for any ``workers``.
    Re-emitted events carry a ``shard`` (fast) or ``run`` (exact) key.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    workers = check_workers(workers)
    if engine == "mega":
        # The packed engine owns its own run fan-out (one run per task,
        # node axis streamed in shards) and result type; delegate whole.
        # Imported lazily: mega imports this module's seed plumbing.
        from repro.sim.mega import run_mega

        return run_mega(
            scenario,
            runs,
            seed=seed,
            horizon=horizon,
            workers=workers,
            tracer=tracer,
        )
    job = make_job(
        scenario, runs, seed=seed, engine=engine, horizon=horizon,
        workers=workers,
    )
    return execute_job(job, workers=workers, tracer=tracer)


# ---------------------------------------------------------------------------
# on-disk result cache
# ---------------------------------------------------------------------------

#: Bump when result semantics change so stale entries never resurface.
#: v2: scenarios carry a ``faults`` plan and results a per-run
#: ``reachable_holders`` array.
#: v3: keys are canonical tokens (:mod:`repro.util.canonical`) — the
#: old encoding fell back to ``default=repr`` for any non-JSON leaf
#: (attack/fault dataclasses flattened by ``dataclasses.asdict``, numpy
#: scalars), and ``repr`` output is not stable across processes or
#: numpy versions, so keys could silently change and permanently miss.
#: v4: the packed ``mega`` engine joins the cache (entries may carry a
#: ``mega_meta`` side-car and deserialise to ``MegaResult``), and
#: scenarios normalise integer-like numpy values for ``n``/``fan_out``/
#: ``max_rounds`` to built-in ints, which changes the canonical token
#: of any grid that previously smuggled numpy scalars through.
CACHE_VERSION = 4

#: Decoded npz entries kept in the process-wide LRU.  Sweeps revisit
#: shared points (the rate-0 baseline appears in Figures 2, 3, and 7);
#: the LRU makes each entry decode once per process instead of once per
#: figure.  Entries are validated against the backing file's stat
#: signature, so an overwritten/corrupted file is never served stale.
NPZ_LRU_ENTRIES = 128

#: ``(root, key) -> (stat_signature, decoded result)``, LRU-ordered.
_NPZ_LRU: "OrderedDict[Tuple[Path, str], Tuple[tuple, object]]" = (
    OrderedDict()
)


def _npz_lru_clear() -> None:
    """Drop every memoised entry (test hook)."""
    _NPZ_LRU.clear()


def _npz_lru_put(root: Path, key: str, sig: tuple, result) -> None:
    _NPZ_LRU[(root, key)] = (sig, result)
    _NPZ_LRU.move_to_end((root, key))
    while len(_NPZ_LRU) > NPZ_LRU_ENTRIES:
        _NPZ_LRU.popitem(last=False)


def _stat_signature(path: Path) -> Optional[tuple]:
    """The file identity an LRU entry is valid for, or None if missing."""
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size, st.st_ino)


@dataclass(frozen=True)
class ResultCache:
    """Best-effort on-disk memo of :func:`monte_carlo` results.

    Entries live under ``root`` as ``<sha256>.npz``, keyed by the full
    experiment identity ``(scenario, runs, seed, engine, horizon)`` plus
    :data:`CACHE_VERSION`.  Invalidation rule: keys never collide across
    differing inputs, so the only reason to clear the cache is an engine
    semantics change — delete ``root`` (or bump ``CACHE_VERSION``).
    """

    root: Path

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))

    def key(
        self,
        scenario: Scenario,
        runs: int,
        *,
        seed: SeedLike = None,
        engine: str = "fast",
        horizon: Optional[int] = None,
    ) -> Optional[str]:
        """The entry key, or None when the experiment is uncacheable.

        Keys are canonical-token digests (:func:`repro.util.canonical
        .canonical_key`): byte-identical across processes for the same
        experiment, with *no* lossy fallback — a scenario carrying a
        value the canonical encoder does not recognise is treated as
        uncacheable (None) rather than keyed unstably.  ``None`` seeds
        (fresh entropy), ``bool`` seeds, and generator seeds have no
        stable identity and are never cached.
        """
        if seed is None or isinstance(seed, (bool, np.random.Generator)):
            return None
        payload = {
            "version": CACHE_VERSION,
            "scenario": scenario,
            "runs": int(runs),
            "seed": seed,
            "engine": engine,
            "horizon": None if horizon is None else int(horizon),
        }
        try:
            return canonical_key(payload)
        except TypeError:
            return None

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def load(
        self, key: str, scenario: Scenario, tracer=None
    ) -> Optional[MonteCarloResult]:
        """The cached result, or None on miss *or any read failure*.

        ``tracer`` (a :class:`repro.obs.Tracer`) observes the outcome as
        a ``cache_hit`` / ``cache_miss`` / ``cache_corrupt`` event — the
        corrupt case is a real read failure falling back to
        recomputation, which used to be indistinguishable from a miss.
        """
        result, status = self.load_ex(key, scenario)
        if tracer is not None:
            if status == "hit":
                tracer.cache_hit(key=key, tier="npz")
            elif status == "corrupt":
                tracer.cache_corrupt(key=key, tier="npz")
            else:
                tracer.cache_miss(key=key, tier="npz")
        return result

    def load_ex(
        self, key: str, scenario: Scenario
    ) -> Tuple[Optional[MonteCarloResult], str]:
        """``(result, status)`` with status ``"hit"`` / ``"miss"`` /
        ``"corrupt"``; result is None unless status is ``"hit"``.

        Hits are served from the process-wide decoded-entry LRU when the
        backing file's stat signature still matches (so an entry shared
        by several figures decodes once); any signature change forces a
        re-decode, and a failed decode or validation evicts the entry
        and reports ``"corrupt"``.
        """
        path = self.path_for(key)
        sig = _stat_signature(path)
        if sig is None:
            _NPZ_LRU.pop((self.root, key), None)
            return None, "miss"
        entry = _NPZ_LRU.get((self.root, key))
        if entry is not None and entry[0] == sig:
            _NPZ_LRU.move_to_end((self.root, key))
            return entry[1], "hit"
        result = self._decode(path, scenario)
        if result is None:
            _NPZ_LRU.pop((self.root, key), None)
            return None, "corrupt"
        _npz_lru_put(self.root, key, sig, result)
        return result, "hit"

    def _decode(
        self, path: Path, scenario: Scenario
    ) -> Optional[MonteCarloResult]:
        """Decode and validate one npz entry; None on any failure."""
        try:
            with np.load(path) as data:
                counts = np.asarray(data["counts"])
                attacked = np.asarray(data["counts_attacked"])
                non_attacked = np.asarray(data["counts_non_attacked"])
                reachable_holders = (
                    np.asarray(data["reachable_holders"])
                    if "reachable_holders" in data.files
                    else None
                )
                churn_stats = (
                    np.asarray(data["churn_stats"])
                    if "churn_stats" in data.files
                    else None
                )
                mega_meta = (
                    np.asarray(data["mega_meta"])
                    if "mega_meta" in data.files
                    else None
                )
        except Exception:
            # Truncated, corrupted, or wrong-format entry: behave like
            # a miss and let the caller recompute (load_ex reports it
            # as "corrupt" so the fallback is at least observable).
            return None
        if (
            counts.ndim != 2
            or counts.shape != attacked.shape
            or counts.shape != non_attacked.shape
        ):
            return None
        # A poisoned entry (float or object dtype smuggled in under a
        # valid shape) must not masquerade as a real count matrix:
        # downstream thresholding would silently produce garbage.
        if any(
            arr.dtype.kind not in "iu"
            for arr in (counts, attacked, non_attacked)
        ):
            return None
        if reachable_holders is not None and (
            reachable_holders.shape != (counts.shape[0],)
            or reachable_holders.dtype.kind not in "iu"
        ):
            return None
        if churn_stats is not None and (
            churn_stats.shape != (counts.shape[0], 2)
            or churn_stats.dtype.kind != "f"
        ):
            return None
        if mega_meta is not None:
            # Self-describing packed-engine entry: the side-car records
            # (shard_nodes, blocks, peak_state_bytes) and selects the
            # MegaResult envelope kind on the way back out.
            if mega_meta.shape != (3,) or mega_meta.dtype.kind not in "iu":
                return None
            from repro.sim.mega import MegaResult

            return MegaResult(
                scenario=scenario,
                counts=counts,
                counts_attacked=attacked,
                counts_non_attacked=non_attacked,
                reachable_holders=reachable_holders,
                churn_stats=churn_stats,
                shard_nodes=int(mega_meta[0]),
                blocks=int(mega_meta[1]),
                peak_state_bytes=int(mega_meta[2]),
            )
        return MonteCarloResult(
            scenario=scenario,
            counts=counts,
            counts_attacked=attacked,
            counts_non_attacked=non_attacked,
            reachable_holders=reachable_holders,
            churn_stats=churn_stats,
        )

    def store(self, key: str, result: MonteCarloResult) -> None:
        """Persist ``result`` atomically; failures are swallowed."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    arrays = dict(
                        counts=result.counts,
                        counts_attacked=result.counts_attacked,
                        counts_non_attacked=result.counts_non_attacked,
                    )
                    if result.reachable_holders is not None:
                        arrays["reachable_holders"] = result.reachable_holders
                    if result.churn_stats is not None:
                        arrays["churn_stats"] = result.churn_stats
                    if hasattr(result, "mega_meta"):
                        arrays["mega_meta"] = result.mega_meta()
                    np.savez_compressed(handle, **arrays)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                os.unlink(tmp)
                raise
            # The entry just written is about to be this process's
            # hottest: seed the LRU so the first load never re-decodes.
            sig = _stat_signature(self.path_for(key))
            if sig is not None:
                _npz_lru_put(self.root, key, sig, result)
        except OSError:
            pass


def as_cache(
    cache: Union[None, str, Path, ResultCache]
) -> Optional[ResultCache]:
    """Coerce a cache argument: None, a directory path, or a cache."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(Path(cache))
    raise TypeError(
        f"cache must be None, a path, or a ResultCache, got {cache!r}"
    )
