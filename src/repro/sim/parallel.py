"""Parallel, deterministic Monte-Carlo execution.

This module shards Monte-Carlo work across a process pool while keeping
every result a pure function of the root seed, *independent of the
worker count*:

- the run fan-out of :func:`~repro.sim.runner.monte_carlo` is split into
  shards whose layout and seeds depend only on ``(runs, seed)`` — never
  on ``workers`` — so ``workers=1`` and ``workers=8`` produce
  bit-identical :class:`~repro.sim.results.MonteCarloResult` arrays;
- the sweep helpers in :mod:`repro.sim.sweeps` pre-derive every grid
  cell's seed in the parent and only *schedule* cells on the pool, so
  sweep reports are byte-identical JSON for any worker count.

The worker count defaults to the ``REPRO_WORKERS`` environment variable
(validated exactly like ``REPRO_RUNS``; fallback 1 = serial in-process).

:class:`ResultCache` adds an on-disk memo keyed by ``(scenario, runs,
seed, engine, horizon)`` so benchmark figures that share sweep points
(e.g. the rate-0 baseline reused across Figures 2, 3, and 7) compute
each point once.  Cache reads are best-effort: a missing, corrupted, or
partially-written entry silently falls back to recomputation.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.engine import run_exact
from repro.sim.fast import run_fast
from repro.sim.results import MonteCarloResult
from repro.sim.scenario import Scenario
from repro.util import spawn_seeds
from repro.util.canonical import canonical_key
from repro.util.rng import SeedLike

#: Runs per fast-engine shard.  The shard layout is a function of the
#: run count only (never of the worker count) — that is what makes
#: results worker-count invariant.  64 keeps shards large enough to
#: vectorise well while giving a 1000-run point 16-way parallelism.
FAST_SHARD_RUNS = 64


# ---------------------------------------------------------------------------
# worker-count plumbing
# ---------------------------------------------------------------------------

def check_workers(value) -> int:
    """Validate a worker count: an integer >= 1."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"workers must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"workers must be >= 1, got {value}")
    return int(value)


def default_workers(fallback: int = 1) -> int:
    """The worker count: ``REPRO_WORKERS`` env var or ``fallback``."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return fallback
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def _mp_context():
    # fork is far cheaper than spawn and available everywhere we support
    # parallelism; fall back to the platform default elsewhere.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def parallel_map(fn: Callable, tasks: Sequence, workers: int = 1) -> List:
    """``[fn(t) for t in tasks]``, optionally across a process pool.

    Output order always matches input order, so callers see identical
    results for any ``workers``; with one task (or one worker) the work
    runs serially in-process.
    """
    tasks = list(tasks)
    workers = check_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)), mp_context=_mp_context()
    ) as pool:
        return list(pool.map(fn, tasks))


# ---------------------------------------------------------------------------
# sharded monte_carlo execution
# ---------------------------------------------------------------------------

def child_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """``spawn_seeds`` without mutating a caller-owned ``SeedSequence``.

    ``SeedSequence.spawn`` advances the parent's child counter, which
    would make an experiment's result depend on how many experiments
    shared the seed *before* it — and a pool worker's pickled copy would
    not see the parent's mutations, so serial and parallel sweeps would
    diverge.  Deriving children positionally from the seed's value
    (entropy + spawn_key) keeps every experiment a pure function of the
    seed.  Generator seeds stay stateful by design and fall back to
    :func:`spawn_seeds`.
    """
    if isinstance(seed, np.random.Generator):
        return spawn_seeds(seed, count)
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [
        np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=tuple(root.spawn_key) + (i,),
            pool_size=root.pool_size,
        )
        for i in range(count)
    ]


def fast_shard_sizes(runs: int) -> List[int]:
    """Deterministic fast-engine shard layout for ``runs`` runs.

    A function of ``runs`` alone, so the per-shard seed derivation (and
    therefore every sampled value) is identical for any worker count.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    full, rem = divmod(runs, FAST_SHARD_RUNS)
    return [FAST_SHARD_RUNS] * full + ([rem] if rem else [])


def _shard_tracer():
    """A worker-local (tracer, sink) pair for traced shard execution.

    Workers cannot share the caller's tracer across process boundaries,
    so each shard records into its own in-memory sink and ships the
    plain-dict events back with its arrays; the parent re-emits them in
    deterministic shard order (see :func:`run_sharded`).
    """
    from repro.obs import MemorySink, Tracer

    sink = MemorySink()
    return Tracer(sink), sink


def _fast_shard(task) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], Optional[list]]:
    scenario, shard_runs, seed, horizon, trace = task
    tracer = sink = None
    if trace:
        tracer, sink = _shard_tracer()
    result = run_fast(
        scenario, shard_runs, seed=seed, horizon=horizon, tracer=tracer
    )
    return (
        result.counts,
        result.counts_attacked,
        result.counts_non_attacked,
        result.reachable_holders,
        sink.events if sink is not None else None,
    )


def _exact_shard(task) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], Optional[list]]]:
    scenario, seeds, trace = task
    schedule = scenario.fault_schedule()
    reachable = (
        None
        if schedule is None
        else len(schedule.reachable_ids(scenario.max_rounds))
    )
    out = []
    for seed in seeds:
        tracer = sink = None
        if trace:
            tracer, sink = _shard_tracer()
        result = run_exact(scenario, seed=seed, tracer=tracer)
        holders = None
        if reachable is not None:
            # residual_reliability is holders/reachable, so this
            # round-trips the integer numerator exactly.
            holders = np.array(
                [int(round(result.residual_reliability * reachable))],
                dtype=np.int32,
            )
        out.append(
            (
                result.counts,
                result.counts_attacked,
                result.counts_non_attacked,
                holders,
                sink.events if sink is not None else None,
            )
        )
    return out


def _stack_padded(blocks: List[np.ndarray], width: int) -> np.ndarray:
    """Stack 2-D trajectory blocks, padding columns with the final value."""
    total = sum(block.shape[0] for block in blocks)
    out = np.zeros((total, width), dtype=np.int32)
    row = 0
    for block in blocks:
        rows, cols = block.shape
        out[row:row + rows, :cols] = block
        if cols < width:
            out[row:row + rows, cols:] = block[:, -1:]
        row += rows
    return out


def run_sharded(
    scenario: Scenario,
    runs: int,
    *,
    seed: SeedLike = None,
    engine: str = "fast",
    horizon: Optional[int] = None,
    workers: int = 1,
    tracer=None,
) -> MonteCarloResult:
    """Run ``scenario`` ``runs`` times, sharded across ``workers``.

    Seeds are derived in the parent before any shard executes, and the
    fast engine's shard layout depends only on ``runs`` — so the result
    is bit-identical for every worker count.  The exact engine derives
    one child seed per run (exactly the historical serial behaviour),
    which makes *its* sharding free to chase load balance.

    ``tracer`` attaches a :class:`repro.obs.Tracer`.  Each shard records
    into a worker-local in-memory sink and ships its events back; the
    parent re-emits them into the caller's tracer ordered by *shard
    index* (fast) or *run index* (exact) — an ordering fixed by the
    seed-derivation layout, never by the worker count or completion
    order, so the merged event stream is identical for any ``workers``.
    Re-emitted events carry a ``shard`` (fast) or ``run`` (exact) key.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    workers = check_workers(workers)
    trace = tracer is not None

    if engine == "fast":
        sizes = fast_shard_sizes(runs)
        if len(sizes) == 1:
            # Single shard: pass the caller's seed straight through so
            # small experiments replay the historical serial stream.
            seeds: List[SeedLike] = [seed]
        else:
            seeds = list(child_seeds(seed, len(sizes)))
        tasks = [
            (scenario, size, shard_seed, horizon, trace)
            for size, shard_seed in zip(sizes, seeds)
        ]
        shards = parallel_map(_fast_shard, tasks, workers=workers)
        triples = [shard[:4] for shard in shards]
        if trace:
            for shard_ix, shard in enumerate(shards):
                for event in shard[4]:
                    event["shard"] = shard_ix
                    tracer.emit(event)
    elif engine == "exact":
        run_seeds = child_seeds(seed, runs)
        # Result order is fixed by the per-run seeds, so the chunking
        # here only affects scheduling and may depend on workers.
        chunk = max(1, math.ceil(runs / max(1, workers * 4)))
        tasks = [
            (scenario, run_seeds[i:i + chunk], trace)
            for i in range(0, runs, chunk)
        ]
        per_run = [
            triple
            for shard in parallel_map(_exact_shard, tasks, workers=workers)
            for triple in shard
        ]
        if trace:
            for run_ix, row in enumerate(per_run):
                for event in row[4]:
                    event["run"] = run_ix
                    tracer.emit(event)
        triples = [
            (row[None, :], att[None, :], non[None, :], holders)
            for row, att, non, holders, _events in per_run
        ]
    elif engine == "mega":
        # The packed engine owns its own run fan-out (one run per task,
        # node axis streamed in shards) and result type; delegate whole.
        # Imported lazily: mega imports this module's seed plumbing.
        from repro.sim.mega import run_mega

        return run_mega(
            scenario,
            runs,
            seed=seed,
            horizon=horizon,
            workers=workers,
            tracer=tracer,
        )
    else:
        raise ValueError(
            f"unknown engine {engine!r}; use 'fast', 'exact', or 'mega'"
        )

    width = max(counts.shape[1] for counts, _, _, _ in triples)
    if horizon is not None:
        width = max(width, horizon + 1)
    counts = _stack_padded([t[0] for t in triples], width)
    attacked = _stack_padded([t[1] for t in triples], width)
    non_attacked = _stack_padded([t[2] for t in triples], width)
    reachable_holders = None
    if all(t[3] is not None for t in triples):
        reachable_holders = np.concatenate([t[3] for t in triples])
    return MonteCarloResult(
        scenario=scenario,
        counts=counts,
        counts_attacked=attacked,
        counts_non_attacked=non_attacked,
        reachable_holders=reachable_holders,
    )


# ---------------------------------------------------------------------------
# on-disk result cache
# ---------------------------------------------------------------------------

#: Bump when result semantics change so stale entries never resurface.
#: v2: scenarios carry a ``faults`` plan and results a per-run
#: ``reachable_holders`` array.
#: v3: keys are canonical tokens (:mod:`repro.util.canonical`) — the
#: old encoding fell back to ``default=repr`` for any non-JSON leaf
#: (attack/fault dataclasses flattened by ``dataclasses.asdict``, numpy
#: scalars), and ``repr`` output is not stable across processes or
#: numpy versions, so keys could silently change and permanently miss.
#: v4: the packed ``mega`` engine joins the cache (entries may carry a
#: ``mega_meta`` side-car and deserialise to ``MegaResult``), and
#: scenarios normalise integer-like numpy values for ``n``/``fan_out``/
#: ``max_rounds`` to built-in ints, which changes the canonical token
#: of any grid that previously smuggled numpy scalars through.
CACHE_VERSION = 4


@dataclass(frozen=True)
class ResultCache:
    """Best-effort on-disk memo of :func:`monte_carlo` results.

    Entries live under ``root`` as ``<sha256>.npz``, keyed by the full
    experiment identity ``(scenario, runs, seed, engine, horizon)`` plus
    :data:`CACHE_VERSION`.  Invalidation rule: keys never collide across
    differing inputs, so the only reason to clear the cache is an engine
    semantics change — delete ``root`` (or bump ``CACHE_VERSION``).
    """

    root: Path

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))

    def key(
        self,
        scenario: Scenario,
        runs: int,
        *,
        seed: SeedLike = None,
        engine: str = "fast",
        horizon: Optional[int] = None,
    ) -> Optional[str]:
        """The entry key, or None when the experiment is uncacheable.

        Keys are canonical-token digests (:func:`repro.util.canonical
        .canonical_key`): byte-identical across processes for the same
        experiment, with *no* lossy fallback — a scenario carrying a
        value the canonical encoder does not recognise is treated as
        uncacheable (None) rather than keyed unstably.  ``None`` seeds
        (fresh entropy), ``bool`` seeds, and generator seeds have no
        stable identity and are never cached.
        """
        if seed is None or isinstance(seed, (bool, np.random.Generator)):
            return None
        payload = {
            "version": CACHE_VERSION,
            "scenario": scenario,
            "runs": int(runs),
            "seed": seed,
            "engine": engine,
            "horizon": None if horizon is None else int(horizon),
        }
        try:
            return canonical_key(payload)
        except TypeError:
            return None

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def load(self, key: str, scenario: Scenario) -> Optional[MonteCarloResult]:
        """The cached result, or None on miss *or any read failure*."""
        try:
            with np.load(self.path_for(key)) as data:
                counts = np.asarray(data["counts"])
                attacked = np.asarray(data["counts_attacked"])
                non_attacked = np.asarray(data["counts_non_attacked"])
                reachable_holders = (
                    np.asarray(data["reachable_holders"])
                    if "reachable_holders" in data.files
                    else None
                )
                mega_meta = (
                    np.asarray(data["mega_meta"])
                    if "mega_meta" in data.files
                    else None
                )
        except Exception:
            # Missing, truncated, corrupted, or wrong-format entry:
            # behave exactly like a miss and let the caller recompute.
            return None
        if (
            counts.ndim != 2
            or counts.shape != attacked.shape
            or counts.shape != non_attacked.shape
        ):
            return None
        # A poisoned entry (float or object dtype smuggled in under a
        # valid shape) must not masquerade as a real count matrix:
        # downstream thresholding would silently produce garbage.
        if any(
            arr.dtype.kind not in "iu"
            for arr in (counts, attacked, non_attacked)
        ):
            return None
        if reachable_holders is not None and (
            reachable_holders.shape != (counts.shape[0],)
            or reachable_holders.dtype.kind not in "iu"
        ):
            return None
        if mega_meta is not None:
            # Self-describing packed-engine entry: the side-car records
            # (shard_nodes, blocks, peak_state_bytes) and selects the
            # MegaResult envelope kind on the way back out.
            if mega_meta.shape != (3,) or mega_meta.dtype.kind not in "iu":
                return None
            from repro.sim.mega import MegaResult

            return MegaResult(
                scenario=scenario,
                counts=counts,
                counts_attacked=attacked,
                counts_non_attacked=non_attacked,
                reachable_holders=reachable_holders,
                shard_nodes=int(mega_meta[0]),
                blocks=int(mega_meta[1]),
                peak_state_bytes=int(mega_meta[2]),
            )
        return MonteCarloResult(
            scenario=scenario,
            counts=counts,
            counts_attacked=attacked,
            counts_non_attacked=non_attacked,
            reachable_holders=reachable_holders,
        )

    def store(self, key: str, result: MonteCarloResult) -> None:
        """Persist ``result`` atomically; failures are swallowed."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    arrays = dict(
                        counts=result.counts,
                        counts_attacked=result.counts_attacked,
                        counts_non_attacked=result.counts_non_attacked,
                    )
                    if result.reachable_holders is not None:
                        arrays["reachable_holders"] = result.reachable_holders
                    if hasattr(result, "mega_meta"):
                        arrays["mega_meta"] = result.mega_meta()
                    np.savez_compressed(handle, **arrays)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass


def as_cache(
    cache: Union[None, str, Path, ResultCache]
) -> Optional[ResultCache]:
    """Coerce a cache argument: None, a directory path, or a cache."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(Path(cache))
    raise TypeError(
        f"cache must be None, a path, or a ResultCache, got {cache!r}"
    )
