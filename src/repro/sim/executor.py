"""Process-wide persistent worker pool with a zero-copy result path.

Historically every ``parallel_map`` call forked a fresh
``ProcessPoolExecutor`` and every shard pickled its numpy result arrays
back through a pipe — a fork + pickle tax paid once per ``monte_carlo``
call and once per sweep batch.  This module removes both:

- :class:`WorkerPool` wraps **one** ``ProcessPoolExecutor`` that is
  forked on first use and reused for every subsequent Monte-Carlo call,
  sweep cell, and equivalence-harness run in the process
  (:func:`get_pool`).  It survives worker death — a task that dies with
  the pool (``BrokenProcessPool``) is resubmitted to a respawned
  executor, bounded by :data:`MAX_TASK_ATTEMPTS` — and is torn down
  explicitly via :func:`close_pool` or automatically at interpreter
  exit.
- :class:`SharedArrays` preallocates named ``multiprocessing.shared_memory``
  segments sized by the deterministic positional shard layout; workers
  attach by name and write their shard's result arrays **directly into
  their slice**, so the parent assembles results without a single
  pickle of array data (workers return only small per-shard metadata —
  trajectory widths, peak byte counts).

Scheduling never affects values: shard layout and seed derivation
remain pure functions of ``(runs, seed)`` (see
:mod:`repro.sim.parallel`), and results are assembled positionally, so
any worker count, completion order, or respawn pattern yields
byte-identical arrays.

The pool's start method defaults to ``fork`` where available (cheapest
by far), but forking a process whose parent is running non-daemon
threads is a classic deadlock factory — a forked child inherits every
lock in whatever state the thread left it.  :func:`start_method`
therefore refuses implicit fork while such threads are alive and points
at the ``REPRO_START_METHOD`` environment override (validated exactly
like ``REPRO_WORKERS``; an explicit ``REPRO_START_METHOD=fork`` asserts
the caller knows the threads are fork-safe).

:class:`ExecutorStats` (module-wide, :func:`stats`) counts pool spawns,
respawns, tasks, and — the number the zero-copy claim is gated on in
CI — the ndarray bytes that came back through pickles.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: How many times one task may be resubmitted after dying with a broken
#: pool before the failure propagates.  Death is expected to be rare
#: (OOM kill, operator signal); a task that kills its worker every time
#: is a genuine bug and must surface.
MAX_TASK_ATTEMPTS = 3


# ---------------------------------------------------------------------------
# execution statistics
# ---------------------------------------------------------------------------

def _array_bytes(obj) -> int:
    """Total ndarray bytes reachable inside a task result.

    This is the metric the zero-copy contract is gated on: results that
    come back through the future (i.e. were pickled across the pipe)
    are walked recursively, and every ``ndarray.nbytes`` found counts
    against the shard-result path.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, dict):
        return sum(_array_bytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_array_bytes(v) for v in obj)
    return 0


@dataclass
class ExecutorStats:
    """Counters describing how the persistent executor has been used."""

    #: Executors created (first spawn and every resize/respawn).
    pool_spawns: int = 0
    #: Executors recreated specifically because a worker died.
    respawns: int = 0
    #: Tasks handed to the pool (retries of a dead task not included).
    tasks_scheduled: int = 0
    #: Tasks whose results were delivered.
    tasks_completed: int = 0
    #: ndarray bytes that travelled back through pickled task results.
    #: Zero on the shared-memory result path.
    result_array_bytes: int = 0
    #: Bytes allocated in shared-memory result segments.
    shm_bytes: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }


#: Module-wide stats; read via :func:`stats`, zeroed via ``stats().reset()``.
_STATS = ExecutorStats()


def stats() -> ExecutorStats:
    """The process-wide :class:`ExecutorStats` instance."""
    return _STATS


# ---------------------------------------------------------------------------
# start-method selection
# ---------------------------------------------------------------------------

def start_method() -> str:
    """The multiprocessing start method the pool will fork with.

    ``REPRO_START_METHOD`` overrides (validated against the platform's
    ``multiprocessing.get_all_start_methods()`` exactly like
    ``REPRO_WORKERS`` is validated: a loud ``ValueError``, never a
    silent fallback).  Without an override, ``fork`` is chosen where
    available — unless the parent is running non-daemon threads, in
    which case forking would duplicate held locks mid-flight (the live
    runtime's node threads, for instance) and the call refuses with a
    pointer at the override.
    """
    methods = multiprocessing.get_all_start_methods()
    raw = os.environ.get("REPRO_START_METHOD")
    if raw is not None:
        if raw not in methods:
            raise ValueError(
                f"REPRO_START_METHOD must be one of {sorted(methods)}, "
                f"got {raw!r}"
            )
        return raw
    if "fork" not in methods:
        return multiprocessing.get_start_method()
    threads = [
        t
        for t in threading.enumerate()
        if t is not threading.main_thread() and t.is_alive() and not t.daemon
    ]
    if threads:
        names = ", ".join(repr(t.name) for t in threads[:3])
        raise RuntimeError(
            f"refusing to fork a worker pool while {len(threads)} "
            f"non-daemon thread(s) are running ({names}): a forked child "
            "inherits every lock in whatever state those threads hold it, "
            "which deadlocks. Stop the threads (e.g. a live runtime "
            "cluster) before spawning workers, or set "
            "REPRO_START_METHOD=spawn (safe) / REPRO_START_METHOD=fork "
            "(assert the threads are fork-safe)."
        )
    return "fork"


def mp_context():
    """The :mod:`multiprocessing` context matching :func:`start_method`."""
    return multiprocessing.get_context(start_method())


# ---------------------------------------------------------------------------
# shared-memory result segments
# ---------------------------------------------------------------------------

_ATTACH_FILTER_INSTALLED = False
_ATTACHING = False


def _install_attach_filter() -> None:
    """Stop the resource tracker from adopting *attached* segments.

    Attached processes do not own the segments they map — the creating
    parent does, and it registered them.  Re-registering on attach makes
    the (process-shared, set-backed) tracker unlink live segments early
    and log spurious ``KeyError`` noise when several workers attach and
    release the same name.  The filter drops ``shared_memory``
    registrations only while :func:`_attach_untracked` is mid-attach;
    segment *creation* keeps its crash-cleanup registration.
    """
    global _ATTACH_FILTER_INSTALLED
    if _ATTACH_FILTER_INSTALLED:
        return
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype == "shared_memory" and _ATTACHING:
            return
        original(name, rtype)

    resource_tracker.register = register
    _ATTACH_FILTER_INSTALLED = True


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    Python 3.13 grew ``track=`` for exactly this; earlier versions need
    the registration filter above.
    """
    global _ATTACHING
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        _install_attach_filter()
        _ATTACHING = True
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            _ATTACHING = False


def _views(shm: shared_memory.SharedMemory, layout) -> Dict[str, np.ndarray]:
    return {
        name: np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                         offset=offset)
        for name, shape, dtype, offset in layout
    }


class SharedArrays:
    """Named result arrays in one shared-memory segment.

    Created in the parent from a spec ``[(name, shape, dtype), ...]``;
    the picklable :attr:`descriptor` travels to workers inside their
    task payload, and :meth:`attach` maps the same arrays there.  The
    parent owns the segment: :meth:`destroy` closes and unlinks it
    (idempotent, exception-safe), and every view must be dropped before
    that happens — :meth:`arrays` hands out live views, so assembly
    copies out of them and releases them first.
    """

    def __init__(self, spec: Sequence[Tuple[str, tuple, object]]):
        layout = []
        offset = 0
        for name, shape, dtype in spec:
            dt = np.dtype(dtype)
            nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
            # 8-byte alignment keeps every int64/float64 view legal.
            offset = (offset + 7) & ~7
            layout.append((name, tuple(int(s) for s in shape), dt.str, offset))
            offset += nbytes
        self._layout = layout
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(create=True, size=max(1, offset))
        )
        _STATS.shm_bytes += offset

    @property
    def descriptor(self) -> Tuple[str, list]:
        """Picklable ``(segment_name, layout)`` for worker-side attach."""
        return (self._shm.name, self._layout)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Parent-side views into the segment, by name."""
        return _views(self._shm, self._layout)

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent; errors swallowed)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            # A view is still alive somewhere; leaking the mapping for
            # the process lifetime beats crashing result assembly.  The
            # unlink below still frees the name.
            pass
        except OSError:
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    @staticmethod
    def attach(descriptor) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
        """Worker-side ``(segment, views)`` for a :attr:`descriptor`.

        The caller must drop every view before ``segment.close()``.
        """
        name, layout = descriptor
        shm = _attach_untracked(name)
        return shm, _views(shm, layout)


def try_shared(spec) -> Optional[SharedArrays]:
    """A :class:`SharedArrays` for ``spec``, or None when the platform
    cannot provide one (no /dev/shm, exhausted shm quota...) — callers
    fall back to the pickled result path."""
    try:
        return SharedArrays(spec)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# the persistent pool
# ---------------------------------------------------------------------------

def _noop(payload):
    """Round-trip marker task for scheduling-overhead measurement."""
    return payload


class WorkerPool:
    """A persistent ``ProcessPoolExecutor`` with death recovery.

    The underlying executor is spawned lazily on first submission and
    reused until :meth:`close` (or interpreter exit).  Task results are
    delivered by :meth:`imap_calls` in **completion order** with their
    submission index — positional assembly is the caller's job, which
    is exactly what keeps results independent of completion order.
    """

    def __init__(self, workers: int):
        self.workers = int(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: The start-method policy runs once per pool, at first spawn:
        #: an executor's own (non-daemon) manager thread must not trip
        #: the fork-with-threads refusal when the pool later respawns
        #: or resizes.
        self._ctx = None
        #: Executor generation, bumped on every (re)spawn so death
        #: handling can tell whether a broken future belonged to the
        #: current executor or to one already replaced.
        self._gen = 0

    # -- lifecycle ----------------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._ctx is None:
                self._ctx = mp_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx
            )
            self._gen += 1
            _STATS.pool_spawns += 1
        return self._pool

    def _respawn(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        _STATS.respawns += 1
        self._ensure()

    def resize(self, workers: int) -> None:
        """Grow the pool; the executor respawns lazily at the new size."""
        workers = int(workers)
        if workers == self.workers and self._pool is not None:
            return
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        self.workers = workers

    def close(self) -> None:
        """Shut the executor down; the pool respawns if used again."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- execution ----------------------------------------------------------

    def imap_calls(self, calls: Sequence[Tuple]) -> Iterator[Tuple[int, object]]:
        """Yield ``(index, result)`` for ``calls`` in completion order.

        ``calls`` is a sequence of ``(fn, payload)`` pairs; each runs as
        ``fn(payload)`` on the pool.  A task that dies with its worker
        is resubmitted to a respawned executor up to
        :data:`MAX_TASK_ATTEMPTS` times; a task that *raises* propagates
        immediately (the pool itself stays healthy).
        """
        calls = list(calls)
        _STATS.tasks_scheduled += len(calls)
        attempts = [1] * len(calls)
        pending: Dict[object, Tuple[int, int]] = {}

        def submit(index: int) -> None:
            fn, payload = calls[index]
            try:
                fut = self._ensure().submit(fn, payload)
            except (BrokenExecutor, RuntimeError):
                self._respawn()
                fut = self._ensure().submit(fn, payload)
            pending[fut] = (index, self._gen)

        for i in range(len(calls)):
            submit(i)
        while pending:
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            dead: List[Tuple[int, int]] = []
            for fut in done:
                index, gen = pending.pop(fut)
                try:
                    result = fut.result()
                except BrokenExecutor:
                    attempts[index] += 1
                    if attempts[index] > MAX_TASK_ATTEMPTS:
                        raise
                    dead.append((index, gen))
                else:
                    _STATS.tasks_completed += 1
                    _STATS.result_array_bytes += _array_bytes(result)
                    yield index, result
            for index, gen in dead:
                if gen == self._gen:
                    # The executor these tasks were riding is the one
                    # that broke; replace it once (later casualties of
                    # the same generation find _gen already advanced).
                    self._respawn()
                submit(index)

    def run_calls(self, calls: Sequence[Tuple]) -> List:
        """``[fn(payload) for fn, payload in calls]`` via the pool,
        results in submission order."""
        calls = list(calls)
        out: List = [None] * len(calls)
        for index, result in self.imap_calls(calls):
            out[index] = result
        return out


# ---------------------------------------------------------------------------
# the process-wide singleton
# ---------------------------------------------------------------------------

_SHARED: Optional[WorkerPool] = None
_OVERRIDE: Optional[WorkerPool] = None


def get_pool(workers: int) -> WorkerPool:
    """The process-wide pool, (re)sized to at least ``workers``.

    One executor serves every ``monte_carlo`` call, sweep cell, and
    harness run in the process; asking for more workers than the pool
    currently has grows it (one respawn), asking for fewer reuses it
    as-is.  A :func:`pool_override` (tests inject fault-injecting
    wrappers this way) short-circuits everything.
    """
    global _SHARED
    if _OVERRIDE is not None:
        return _OVERRIDE
    workers = int(workers)
    if _SHARED is None:
        _SHARED = WorkerPool(workers)
    elif _SHARED.workers < workers:
        _SHARED.resize(workers)
    return _SHARED


def close_pool() -> None:
    """Shut down the process-wide pool (it respawns on next use)."""
    global _SHARED
    pool, _SHARED = _SHARED, None
    if pool is not None:
        pool.close()


class pool_override:
    """Context manager routing :func:`get_pool` to a stand-in pool.

    The stand-in only needs ``imap_calls``/``run_calls``; the
    fault-injection tests use this to delay, reorder, and kill task
    completion without touching production scheduling.
    """

    def __init__(self, pool):
        self.pool = pool

    def __enter__(self):
        global _OVERRIDE
        self._prev = _OVERRIDE
        _OVERRIDE = self.pool
        return self.pool

    def __exit__(self, *exc):
        global _OVERRIDE
        _OVERRIDE = self._prev
        return False


atexit.register(close_pool)
