"""Result containers for simulation experiments.

Both engines produce, per run, the number of alive correct processes
holding M at the *beginning* of each round (``counts[0] == 1``: only the
source).  Every metric in the paper's simulation figures derives from
these trajectories plus the attacked/non-attacked split:

- propagation time to a coverage threshold (Figures 2, 3, 7, 8, 9, 12);
- its standard deviation across runs (Figure 4);
- the per-round CDF of coverage (Figures 5, 13, 14);
- per-subset propagation (attacked vs non-attacked, Figure 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.scenario import Scenario


#: Version of the unified result envelope produced by ``to_dict`` on
#: every result class (RunResult, MonteCarloResult, MeasurementResult).
#: Bump on any breaking change to the envelope layout.
SCHEMA = "repro.result"
SCHEMA_VERSION = 1


def _none_if_nan(value) -> Optional[float]:
    """JSON-safe float: nan (a censored metric) becomes None."""
    if value is None:
        return None
    value = float(value)
    return None if math.isnan(value) else value


def check_envelope(data: dict, kind: str) -> None:
    """Validate a ``to_dict`` envelope before deserialising ``kind``."""
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"not a {SCHEMA} document: schema={data.get('schema')!r}"
        )
    if data.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {SCHEMA} version {data.get('version')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if data.get("kind") != kind:
        raise ValueError(
            f"expected kind={kind!r}, got {data.get('kind')!r}"
        )


def rounds_to_count(trajectory: np.ndarray, target: int) -> float:
    """First round index at which ``trajectory`` reaches ``target``.

    Returns ``nan`` when the trajectory never gets there (a censored
    run).  ``trajectory`` must be non-decreasing.
    """
    reached = trajectory >= target
    if not reached.any():
        return float("nan")
    return float(np.argmax(reached))


@dataclass
class RunResult:
    """One simulation run's trajectory."""

    scenario: Scenario
    #: Holders of M among alive correct processes at the start of each round.
    counts: np.ndarray
    #: Holders within the attacked subset (includes the source).
    counts_attacked: np.ndarray
    #: Holders within the non-attacked alive correct subset.
    counts_non_attacked: np.ndarray
    #: Per-process delivery round (nan where M never arrived), indexed by
    #: process id over the alive correct processes.  Only the exact
    #: engine fills this in.
    delivery_rounds: Optional[np.ndarray] = None
    #: Graceful-degradation metrics, filled only on fault-injected runs
    #: (``scenario.faults`` set) so faultless result JSON — including the
    #: pinned golden traces — is unchanged.  Residual reliability is the
    #: fraction of *reachable* alive correct processes holding M at the
    #: end (reachable = not permanently crashed nor permanently cut from
    #: the source; see ``FaultSchedule.reachable_ids``).
    residual_reliability: Optional[float] = None
    #: Rounds from the last partition heal until threshold coverage
    #: (0 when the threshold was met during the partition; nan when the
    #: run was censored).  None when the plan has no partition.
    rounds_to_heal: Optional[float] = None
    #: Churn metrics, filled only when the plan has join/leave/expel
    #: tokens: ``{"timeline": [...], "join_latency": float|None,
    #: "view_convergence": float|None, "joiner_holders": int,
    #: "joiner_count": int}``.  ``timeline`` is the resolved membership
    #: event sequence (``FaultSchedule.churn_timeline``) — the
    #: cross-stack determinism witness; ``join_latency`` averages, over
    #: joiners reachable at the horizon, the rounds from join to first
    #: delivery (censored joiners count at the horizon);
    #: ``view_convergence`` averages the rounds until the whole group's
    #: views reflect a membership event.
    churn: Optional[dict] = None

    def rounds_to_threshold(self) -> float:
        """Rounds until the scenario's coverage threshold was met."""
        return rounds_to_count(self.counts, self.scenario.threshold_count())

    def final_coverage(self) -> float:
        """Fraction of alive correct processes that ever got M."""
        return float(self.counts[-1]) / self.scenario.num_alive_correct

    def to_jsonable(self) -> dict:
        """A canonical, JSON-serialisable view of the run.

        This is the representation the golden-trace tests freeze:
        ``json.dumps(result.to_jsonable(), sort_keys=True, indent=1)``
        of a seeded run must stay byte-identical across engine
        optimisations.
        """
        out = {
            "scenario": self.scenario.describe(),
            "counts": [int(v) for v in self.counts],
            "counts_attacked": [int(v) for v in self.counts_attacked],
            "counts_non_attacked": [int(v) for v in self.counts_non_attacked],
            "delivery_rounds": None
            if self.delivery_rounds is None
            else [
                None if math.isnan(v) else float(v)
                for v in self.delivery_rounds
            ],
        }
        # Fault metrics are keyed in only when present, so faultless
        # traces (and the golden files pinning them) stay byte-identical.
        if self.residual_reliability is not None:
            out["residual_reliability"] = float(self.residual_reliability)
        if self.rounds_to_heal is not None:
            out["rounds_to_heal"] = (
                None
                if math.isnan(self.rounds_to_heal)
                else float(self.rounds_to_heal)
            )
        if self.churn is not None:
            out["churn"] = self.churn
        return out

    def to_dict(self) -> dict:
        """The unified versioned result envelope (see ``repro.api``).

        Distinct from :meth:`to_jsonable` (the golden-pinned legacy
        view, which must never change shape): every result class —
        RunResult, MonteCarloResult, MeasurementResult — shares the
        ``{schema, version, kind, config, metrics, data}`` layout with
        common metric names (``reliability``, ``rounds_to_threshold``,
        ``rounds_to_heal``, ``latency_ms``).  Round-based results have
        no latency, so ``latency_ms`` is None here.
        """
        reliability = (
            self.final_coverage()
            if self.residual_reliability is None
            else float(self.residual_reliability)
        )
        metrics = {
            "reliability": reliability,
            "rounds_to_threshold": _none_if_nan(self.rounds_to_threshold()),
            "rounds_to_heal": _none_if_nan(self.rounds_to_heal),
            "latency_ms": None,
        }
        data = {
            "counts": [int(v) for v in self.counts],
            "counts_attacked": [int(v) for v in self.counts_attacked],
            "counts_non_attacked": [int(v) for v in self.counts_non_attacked],
            "delivery_rounds": None
            if self.delivery_rounds is None
            else [_none_if_nan(v) for v in self.delivery_rounds],
        }
        if self.residual_reliability is not None:
            data["residual_reliability"] = float(self.residual_reliability)
        if self.rounds_to_heal is not None:
            data["rounds_to_heal"] = _none_if_nan(self.rounds_to_heal)
        if self.churn is not None:
            data["churn"] = self.churn
            metrics["join_latency"] = _none_if_nan(
                self.churn.get("join_latency")
            )
            metrics["view_convergence"] = _none_if_nan(
                self.churn.get("view_convergence")
            )
        return {
            "schema": SCHEMA,
            "version": SCHEMA_VERSION,
            "kind": "run",
            "config": self.scenario.to_dict(),
            "metrics": metrics,
            "data": data,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a :class:`RunResult` from :meth:`to_dict` output."""
        check_envelope(data, "run")
        body = data["data"]
        delivery = body.get("delivery_rounds")
        heal = body.get("rounds_to_heal", None)
        return cls(
            scenario=Scenario.from_dict(data["config"]),
            counts=np.asarray(body["counts"], dtype=np.int32),
            counts_attacked=np.asarray(
                body["counts_attacked"], dtype=np.int32
            ),
            counts_non_attacked=np.asarray(
                body["counts_non_attacked"], dtype=np.int32
            ),
            delivery_rounds=None
            if delivery is None
            else np.asarray(
                [float("nan") if v is None else v for v in delivery]
            ),
            residual_reliability=body.get("residual_reliability"),
            rounds_to_heal=(
                float("nan") if heal is None else float(heal)
            )
            if "rounds_to_heal" in body
            else None,
            churn=body.get("churn"),
        )


@dataclass
class MonteCarloResult:
    """Aggregated trajectories of many independent runs."""

    scenario: Scenario
    #: (runs, rounds+1) holder counts; rows padded with their final value.
    counts: np.ndarray
    counts_attacked: np.ndarray
    counts_non_attacked: np.ndarray
    #: Per-run count of *reachable* processes holding M at the end of
    #: the run.  Filled only on fault-injected runs; engines that track
    #: per-process state compute it exactly, and
    #: :meth:`residual_reliability` falls back to clipping the final
    #: totals when it is absent (e.g. results from an old cache entry).
    reachable_holders: Optional[np.ndarray] = None
    #: (runs, 2) float64 churn metrics per run — column 0 the mean
    #: join latency (rounds from a joiner's join to its first delivery,
    #: censored joiners counted at the horizon), column 1 the mean
    #: view-convergence time (rounds until all correct members' views
    #: reflect a membership event).  Filled only under churn plans.
    churn_stats: Optional[np.ndarray] = None

    @property
    def runs(self) -> int:
        return self.counts.shape[0]

    @property
    def rounds_simulated(self) -> int:
        return self.counts.shape[1] - 1

    # -- propagation time ---------------------------------------------------

    def rounds_to_threshold(self) -> np.ndarray:
        """Per-run rounds to the coverage threshold (nan when censored)."""
        target = self.scenario.threshold_count()
        return self._per_run_rounds(self.counts, target)

    def rounds_to_subset_threshold(
        self, subset: str, fraction: Optional[float] = None
    ) -> np.ndarray:
        """Per-run rounds for the attacked / non-attacked subset alone.

        The subset threshold applies ``fraction`` (default: the
        scenario's coverage fraction) to the subset size — Figure 6
        plots propagation "to the attacked processes" and "to the
        non-attacked processes".  Note the simulation stops at the
        scenario's *global* threshold; to measure a subset fraction
        higher than the global trajectory guarantees, run the scenario
        with ``threshold=1.0``.
        """
        if subset == "attacked":
            trajectories = self.counts_attacked
            size = self.scenario.num_attacked
        elif subset == "non_attacked":
            trajectories = self.counts_non_attacked
            size = self.scenario.num_alive_correct - self.scenario.num_attacked
        else:
            raise ValueError(f"unknown subset {subset!r}")
        if size == 0:
            return np.zeros(self.runs)
        if fraction is None:
            fraction = self.scenario.threshold
        target = max(1, math.ceil(fraction * size - 1e-9))
        return self._per_run_rounds(trajectories, target)

    def mean_rounds(self) -> float:
        """Mean propagation time; censored runs count as max_rounds."""
        return float(np.nanmean(self._censored(self.rounds_to_threshold())))

    def std_rounds(self) -> float:
        """Std of the propagation time across runs."""
        return float(np.nanstd(self._censored(self.rounds_to_threshold())))

    def censored_runs(self) -> int:
        """Runs that never reached the threshold within max_rounds."""
        return int(np.isnan(self.rounds_to_threshold()).sum())

    # -- graceful degradation ---------------------------------------------------

    def residual_reliability(self) -> np.ndarray:
        """Per-run fraction of reachable processes holding M at the end.

        Under a fault plan, full coverage may be impossible (processes
        crashed for good, or stranded by a partition that never heals
        inside ``max_rounds``); this is coverage measured against what
        was *achievable*: holders within ``FaultSchedule.reachable_ids``
        over that reachable set's size.  Without faults it degenerates
        to plain final coverage.
        """
        schedule = self.scenario.fault_schedule()
        if schedule is None:
            return self.counts[:, -1] / self.scenario.num_alive_correct
        reachable = len(schedule.reachable_ids(self.scenario.max_rounds))
        if self.reachable_holders is not None:
            return self.reachable_holders / reachable
        # Totals-only fallback: final counts can include processes that
        # received M and then crashed for good, so clip at 1.
        return np.minimum(self.counts[:, -1] / reachable, 1.0)

    def rounds_to_heal(self) -> Optional[np.ndarray]:
        """Per-run rounds from the last partition heal to threshold
        coverage (0 when coverage won during the partition, nan when
        censored).  None when the plan has no partition."""
        schedule = self.scenario.fault_schedule()
        if schedule is None or schedule.last_heal_round() == 0:
            return None
        return np.maximum(
            self.rounds_to_threshold() - schedule.last_heal_round(), 0.0
        )

    def join_latency(self) -> Optional[np.ndarray]:
        """Per-run mean rounds from join to a joiner's first delivery
        (None when the plan has no churn)."""
        if self.churn_stats is None:
            return None
        return self.churn_stats[:, 0]

    def view_convergence(self) -> Optional[np.ndarray]:
        """Per-run mean rounds until every correct member's view
        reflects a membership event (None when the plan has no churn)."""
        if self.churn_stats is None:
            return None
        return self.churn_stats[:, 1]

    # -- coverage CDFs --------------------------------------------------------

    def coverage_by_round(self) -> np.ndarray:
        """Mean fraction of alive correct processes holding M per round."""
        return self.counts.mean(axis=0) / self.scenario.num_alive_correct

    def subset_coverage_by_round(self, subset: str) -> np.ndarray:
        """Mean per-round coverage within one subset."""
        if subset == "attacked":
            size = self.scenario.num_attacked
            data = self.counts_attacked
        elif subset == "non_attacked":
            size = self.scenario.num_alive_correct - self.scenario.num_attacked
            data = self.counts_non_attacked
        else:
            raise ValueError(f"unknown subset {subset!r}")
        if size == 0:
            return np.ones(self.counts.shape[1])
        return data.mean(axis=0) / size

    # -- stable serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        """The unified versioned result envelope (see ``repro.api``).

        ``metrics`` carries run-averaged summaries under the shared
        names; ``data`` preserves the full per-run trajectories, so
        :meth:`from_dict` rebuilds a result supporting every derived
        metric.
        """
        heal = self.rounds_to_heal()
        metrics = {
            "reliability": float(np.mean(self.residual_reliability())),
            "rounds_to_threshold": _none_if_nan(
                np.nanmean(self._censored(self.rounds_to_threshold()))
            ),
            "rounds_to_heal": None
            if heal is None
            else _none_if_nan(np.nanmean(heal)),
            "latency_ms": None,
        }
        data = {
            "counts": [[int(v) for v in row] for row in self.counts],
            "counts_attacked": [
                [int(v) for v in row] for row in self.counts_attacked
            ],
            "counts_non_attacked": [
                [int(v) for v in row] for row in self.counts_non_attacked
            ],
            "reachable_holders": None
            if self.reachable_holders is None
            else [int(v) for v in self.reachable_holders],
        }
        if self.churn_stats is not None:
            data["churn_stats"] = [
                [float(v) for v in row] for row in self.churn_stats
            ]
            metrics["join_latency"] = _none_if_nan(
                np.nanmean(self.churn_stats[:, 0])
            )
            metrics["view_convergence"] = _none_if_nan(
                np.nanmean(self.churn_stats[:, 1])
            )
        return {
            "schema": SCHEMA,
            "version": SCHEMA_VERSION,
            "kind": "monte_carlo",
            "config": self.scenario.to_dict(),
            "metrics": metrics,
            "data": data,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MonteCarloResult":
        """Rebuild a :class:`MonteCarloResult` from :meth:`to_dict`."""
        check_envelope(data, "monte_carlo")
        body = data["data"]
        holders = body.get("reachable_holders")
        churn_stats = body.get("churn_stats")
        return cls(
            scenario=Scenario.from_dict(data["config"]),
            counts=np.asarray(body["counts"], dtype=np.int32),
            counts_attacked=np.asarray(
                body["counts_attacked"], dtype=np.int32
            ),
            counts_non_attacked=np.asarray(
                body["counts_non_attacked"], dtype=np.int32
            ),
            reachable_holders=None
            if holders is None
            else np.asarray(holders, dtype=np.int32),
            churn_stats=None
            if churn_stats is None
            else np.asarray(churn_stats, dtype=np.float64),
        )

    # -- internals -------------------------------------------------------------

    def _per_run_rounds(self, trajectories: np.ndarray, target: int) -> np.ndarray:
        reached = trajectories >= target
        ever = reached.any(axis=1)
        first = np.argmax(reached, axis=1).astype(float)
        first[~ever] = np.nan
        return first

    def _censored(self, rounds: np.ndarray) -> np.ndarray:
        out = rounds.copy()
        out[np.isnan(out)] = self.scenario.max_rounds
        return out
