"""Mega-scale packed-bitset Monte-Carlo engine (n up to 10⁶ and beyond).

The vectorised engine (:mod:`repro.sim.fast`) stacks all runs of an
experiment into dense ``(runs, n)`` and ``(runs, senders, v)`` matrices.
That is the right trade at paper scale (n = 120/1000 × 1000 runs), but
it cannot reach the asymptotic regime of the paper's Section 6 analysis
— Drum propagating in O(log n) rounds under targeted attack while pull
degrades toward Θ(n) — because the per-round view matrices alone grow
to multiple GB near n = 10⁵.

This engine inverts the layout: **one run at a time**, with the *node*
axis as the vectorised dimension, and the hot state packed tight:

- the infection state is a **packed bitmap** (1 bit per process,
  ``uint8`` little-endian bit order — 125 KB at n = 10⁶);
- per-node bounded-channel occupancy (valid/fabricated arrival counts
  per well-known port) lives in small-int counter arrays;
- fault state (crash / stall / partition-side / reachable sets) is
  resolved to bitmaps once per schedule state and applied with
  bitwise masks.

Rounds stream the node axis **shard by shard**.  Randomness is drawn
per fixed-size *block* of :data:`MEGA_BLOCK_NODES` node ids from a
generator seeded positionally — ``SeedSequence(entropy, run_spawn_key +
(round, block))``, the same positional derivation
:mod:`repro.sim.parallel` uses for run shards — so the sampled values
depend only on ``(seed, run, round, block)``.  A *shard* is merely the
group of consecutive blocks processed through one set of vectorised
operations; regrouping blocks into different shard sizes (or fanning
runs out over any number of pool workers) therefore produces
**byte-identical** results.

Equivalence story: the packed engine draws from the same per-round
distributions as the fast engine (exact F-subset views, hypergeometric
bounded acceptance, the Appendix-C independence approximation for pull
requests, loss-thinned fabricated floods), but consumes a different
random stream, so seeded runs are *statistically* — not trace-level —
equivalent to fast/exact.  ``tests/equivalence.py`` pins that claim
with two-sample KS, chi-square, and binomial-CI checks at overlapping
group sizes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.adversary.attacks import PortLoad
from repro.sim.fast import _accept_any, _fabricated_counts
from repro.sim.results import MonteCarloResult, check_envelope
from repro.sim.scenario import Scenario
from repro.util.rng import SeedLike

#: Atomic randomness granularity: one positionally seeded generator per
#: ``MEGA_BLOCK_NODES``-wide block of node ids per round.  A multiple of
#: 8 so block boundaries align with packed-bitmap bytes.  This constant
#: is part of the engine's determinism contract — changing it reshuffles
#: every seeded mega result (bump :data:`repro.sim.parallel.CACHE_VERSION`
#: if you ever do).
MEGA_BLOCK_NODES = 4096

#: Default streaming width (nodes per shard): how many blocks are
#: concatenated into one set of vectorised operations.  Purely a
#: memory/speed trade — any value yields byte-identical results.
DEFAULT_SHARD_NODES = 1 << 18

#: Popcount lookup table for packed-bitmap byte counts.
_POP8 = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)


# ---------------------------------------------------------------------------
# packed-bitmap primitives
# ---------------------------------------------------------------------------

def packed_size(n: int) -> int:
    """Bytes needed for an ``n``-bit little-endian packed bitmap."""
    return (n + 7) // 8


def bit_get(packed: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Gather bits ``idx`` from a packed bitmap as a bool array."""
    return ((packed[idx >> 3] >> (idx & 7).astype(np.uint8)) & 1).astype(bool)


def bit_or_block(packed: np.ndarray, start: int, bits: np.ndarray) -> None:
    """OR a byte-aligned bool block (``start % 8 == 0``) into ``packed``."""
    if bits.size == 0:
        return
    pad = (-bits.size) % 8
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=bool)])
    chunk = np.packbits(bits, bitorder="little")
    packed[start >> 3: (start >> 3) + chunk.size] |= chunk


def popcount(packed: np.ndarray) -> int:
    """Number of set bits in a packed bitmap."""
    return int(_POP8[packed].sum(dtype=np.int64))


def popcount_prefix(packed: np.ndarray, k: int) -> int:
    """Number of set bits among the first ``k`` positions."""
    if k <= 0:
        return 0
    full, rem = divmod(k, 8)
    total = int(_POP8[packed[:full]].sum(dtype=np.int64))
    if rem:
        total += int(_POP8[packed[full] & ((1 << rem) - 1)])
    return total


def mask_to_packed(n: int, ids) -> np.ndarray:
    """A packed bitmap with exactly the bits in ``ids`` set."""
    packed = np.zeros(packed_size(n), dtype=np.uint8)
    idx = np.fromiter(ids, dtype=np.int64, count=len(ids))
    np.bitwise_or.at(
        packed, idx >> 3, (np.uint8(1) << (idx & 7).astype(np.uint8))
    )
    return packed


# ---------------------------------------------------------------------------
# the mega result envelope
# ---------------------------------------------------------------------------

class MegaResult(MonteCarloResult):
    """A :class:`MonteCarloResult` plus packed-engine execution facts.

    Everything the aggregate metrics need lives in the inherited count
    trajectories; the extras record *how* the packed engine ran —
    shard/block layout and the peak bytes of engine-owned state — which
    the asymptotic-scale benchmark gates its memory ceiling on.
    Serialises as envelope kind ``"mega"`` (see :mod:`repro.api.results`)
    and round-trips through the npz cache tier via a ``mega_meta``
    side-car array.
    """

    def __init__(
        self,
        *,
        scenario: Scenario,
        counts: np.ndarray,
        counts_attacked: np.ndarray,
        counts_non_attacked: np.ndarray,
        reachable_holders: Optional[np.ndarray] = None,
        churn_stats: Optional[np.ndarray] = None,
        shard_nodes: int = 0,
        blocks: int = 0,
        peak_state_bytes: int = 0,
    ):
        super().__init__(
            scenario=scenario,
            counts=counts,
            counts_attacked=counts_attacked,
            counts_non_attacked=counts_non_attacked,
            reachable_holders=reachable_holders,
            churn_stats=churn_stats,
        )
        self.shard_nodes = int(shard_nodes)
        self.blocks = int(blocks)
        self.peak_state_bytes = int(peak_state_bytes)

    def mega_meta(self) -> np.ndarray:
        """The npz side-car: ``[shard_nodes, blocks, peak_state_bytes]``."""
        return np.array(
            [self.shard_nodes, self.blocks, self.peak_state_bytes],
            dtype=np.int64,
        )

    def to_dict(self) -> dict:
        out = super().to_dict()
        out["kind"] = "mega"
        out["data"]["mega"] = {
            "shard_nodes": self.shard_nodes,
            "blocks": self.blocks,
            "peak_state_bytes": self.peak_state_bytes,
        }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MegaResult":
        check_envelope(data, "mega")
        body = data["data"]
        holders = body.get("reachable_holders")
        churn_stats = body.get("churn_stats")
        meta = body.get("mega") or {}
        return cls(
            scenario=Scenario.from_dict(data["config"]),
            counts=np.asarray(body["counts"], dtype=np.int32),
            counts_attacked=np.asarray(
                body["counts_attacked"], dtype=np.int32
            ),
            counts_non_attacked=np.asarray(
                body["counts_non_attacked"], dtype=np.int32
            ),
            reachable_holders=None
            if holders is None
            else np.asarray(holders, dtype=np.int32),
            churn_stats=None
            if churn_stats is None
            else np.asarray(churn_stats, dtype=np.float64),
            shard_nodes=meta.get("shard_nodes", 0),
            blocks=meta.get("blocks", 0),
            peak_state_bytes=meta.get("peak_state_bytes", 0),
        )


# ---------------------------------------------------------------------------
# per-run machinery
# ---------------------------------------------------------------------------

def _run_root(seed: SeedLike) -> np.random.SeedSequence:
    """The run's root :class:`SeedSequence` for positional block seeds."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        # Generator seeds are stateful by design: burn one draw for a
        # positional root, exactly like ``spawn_seeds``.
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    return np.random.SeedSequence(seed)


class _BlockRngs:
    """One lazily created generator per node block for one round.

    Block ``b``'s generator is seeded ``SeedSequence(entropy,
    run_spawn_key + (round, b))`` and is reused across all of the
    round's phases in a fixed per-block order, so values never depend
    on how blocks are grouped into shards.  Index ``n_blocks`` (one
    past the last node block) is the run-level stream (Gilbert–Elliott
    chain steps).
    """

    __slots__ = ("root", "round_no", "_gens")

    def __init__(self, root: np.random.SeedSequence, round_no: int):
        self.root = root
        self.round_no = round_no
        self._gens: dict = {}

    def __call__(self, block: int) -> np.random.Generator:
        gen = self._gens.get(block)
        if gen is None:
            seed = np.random.SeedSequence(
                entropy=self.root.entropy,
                spawn_key=tuple(self.root.spawn_key)
                + (self.round_no, block),
                pool_size=self.root.pool_size,
            )
            gen = np.random.default_rng(seed)
            self._gens[block] = gen
        return gen


def _block_views(
    g: np.random.Generator, senders: np.ndarray, n: int, v: int
) -> np.ndarray:
    """(block, v) gossip targets: uniform, self-free, distinct per row.

    Same distribution as :func:`repro.sim.fast._draw_views` (including
    the dense-fan-out permutation fallback), drawn per node block.
    """
    blen = len(senders)
    if v * (v - 1) >= n - 1:
        keys = g.random((blen, n - 1))
        targets = np.argsort(keys, axis=1)[:, :v]
        targets += targets >= senders[:, None]
        return targets
    targets = g.integers(0, n - 1, size=(blen, v))
    targets += targets >= senders[:, None]
    if v > 1:
        while True:
            ordered = np.sort(targets, axis=1)
            dup = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
            if not dup.any():
                break
            redraw = g.integers(0, n - 1, size=(int(dup.sum()), v))
            redraw += redraw >= senders[dup][:, None]
            targets[dup] = redraw
    return targets


def _fault_masks_for(state, n: int, cache: dict):
    """Bool masks (crashed, stall_ok, side_a) for one schedule state.

    States change at a handful of round boundaries, so the materialised
    bitmaps are cached per distinct ``(crashed, stalled, side_a)``
    triple (the frozensets are hashable).
    """
    cached = cache.get(state)
    if cached is not None:
        return cached
    crashed_set, stalled_set, side_a_set = state
    crashed = None
    if crashed_set:
        crashed = np.zeros(n, dtype=bool)
        crashed[np.fromiter(crashed_set, np.int64, len(crashed_set))] = True
    stall_ok = None
    if stalled_set:
        stall_ok = np.ones(n, dtype=bool)
        stall_ok[np.fromiter(stalled_set, np.int64, len(stalled_set))] = False
    in_a = None
    if side_a_set is not None:
        in_a = np.zeros(n, dtype=bool)
        in_a[np.fromiter(side_a_set, np.int64, len(side_a_set))] = True
    masks = (crashed, stall_ok, in_a)
    cache[state] = masks
    return masks


def _shard_ranges(limit: int, shard_nodes: int) -> List[Tuple[int, int]]:
    """Consecutive ``[start, stop)`` shard ranges covering ``[0, limit)``."""
    return [
        (start, min(start + shard_nodes, limit))
        for start in range(0, limit, shard_nodes)
    ]


def _run_one(
    scenario: Scenario,
    *,
    seed: SeedLike,
    horizon: Optional[int],
    shard_nodes: int,
    tracer=None,
) -> Tuple[np.ndarray, np.ndarray, Optional[int], int, Optional[tuple]]:
    """One packed run.

    Returns ``(counts, counts_attacked, reachable, peak_bytes, churn)``
    where ``churn`` is ``None`` for static plans and ``(join_latency,
    view_convergence)`` for churn plans (handled by the dedicated loop
    in :func:`_run_one_churn`).
    """
    schedule = scenario.fault_schedule()
    if schedule is not None and schedule.has_churn:
        return _run_one_churn(
            scenario,
            schedule,
            seed=seed,
            horizon=horizon,
            shard_nodes=shard_nodes,
            tracer=tracer,
        )
    root = _run_root(seed)
    n = scenario.n
    cfg = scenario.protocol_config()
    loss = scenario.loss
    num_alive = scenario.num_alive_correct
    num_attacked = scenario.num_attacked
    num_perturbed = scenario.num_perturbed
    perturb_lo = num_alive - num_perturbed
    perturb_prob = scenario.perturbation_prob

    v_push = cfg.view_push_size
    v_pull = cfg.view_pull_size
    v = v_push + v_pull
    shared_bound = cfg.shared_in_bound
    if v > n - 1:
        raise ValueError(
            f"group of {n} is too small for a combined fan-out of "
            f"{v} distinct targets"
        )

    load = (
        scenario.attack.port_load(scenario.protocol)
        if scenario.attack is not None
        else PortLoad()
    )

    n_blocks = (n + MEGA_BLOCK_NODES - 1) // MEGA_BLOCK_NODES
    sender_blocks = (num_alive + MEGA_BLOCK_NODES - 1) // MEGA_BLOCK_NODES

    ge = None
    ge_bad = False
    mask_cache: dict = {}
    nondoomed_packed = None
    nondoomed_count = 0
    if schedule is not None:
        link = scenario.faults.link
        if link is not None and link.affects_loss:
            ge = link
        doomed = schedule.doomed_ids(scenario.max_rounds)
        if doomed:
            nondoomed = [i for i in range(num_alive) if i not in doomed]
            nondoomed_packed = mask_to_packed(n, nondoomed)
            nondoomed_count = len(nondoomed)

    # -- persistent packed / counter state ----------------------------------
    has = np.zeros(packed_size(n), dtype=np.uint8)
    has[0] |= 1  # the source (id 0) holds M
    alive_awake = np.zeros(n, dtype=bool)  # refreshed per round
    push_valid = np.zeros(n, dtype=np.int64) if v_push else None
    push_m = np.zeros(n, dtype=np.int64) if v_push else None
    req_valid = np.zeros(n, dtype=np.int64) if v_pull else None
    fab_push = (
        np.zeros(num_attacked, dtype=np.int64)
        if v_push and num_attacked
        else None
    )
    fab_req = (
        np.zeros(num_attacked, dtype=np.int64)
        if v_pull and num_attacked
        else None
    )

    target = scenario.threshold_count()
    max_rounds = horizon if horizon is not None else scenario.max_rounds

    cur_total = 1
    cur_attacked = 1 if num_attacked else 0
    hist_total = [cur_total]
    hist_attacked = [cur_attacked]
    active = True if horizon is not None else cur_total < target
    peak_bytes = 0

    if tracer is not None:
        tracer.run_start(
            "mega", protocol=scenario.protocol.value, n=n, runs=1
        )
        tracer.delivered(node=scenario.source, via="source", count=1)

    for round_no in range(1, max_rounds + 1):
        if not active:
            break
        if tracer is not None:
            tracer.round_start(round_no, active_runs=1)
        rngs = _BlockRngs(root, round_no)

        # -- run-level stream: bursty-loss chain, one step per round --------
        if ge is not None:
            g_run = rngs(n_blocks)
            flip = ge.p_bad_to_good if ge_bad else ge.p_good_to_bad
            ge_bad ^= bool(g_run.random() < flip)
            loss_round = ge.loss_bad if ge_bad else ge.loss_good
        else:
            loss_round = loss

        crashed = stall_ok = in_a = None
        if schedule is not None:
            state = schedule._state(round_no)
            crashed, stall_ok, in_a = _fault_masks_for(state, n, mask_cache)

        alive_awake[:] = False
        alive_awake[:num_alive] = True
        if crashed is not None:
            alive_awake &= ~crashed
        new_has = has.copy()
        round_bytes = has.nbytes + new_has.nbytes + alive_awake.nbytes

        # -- phase A: sender draws, arrival counters -------------------------
        if push_valid is not None:
            push_valid[:] = 0
            push_m[:] = 0
        if req_valid is not None:
            req_valid[:] = 0
        # Per sender block, stash what later phases replay: targets,
        # the request-sent mask, and (shared-bounds only) push targets.
        pull_stash: List[Tuple[int, np.ndarray, np.ndarray]] = []
        push_stash: List[Tuple[int, np.ndarray]] = []
        sender_attempts = 0
        for start, stop in _shard_ranges(num_alive, shard_nodes):
            for b_start in range(start, stop, MEGA_BLOCK_NODES):
                b_stop = min(b_start + MEGA_BLOCK_NODES, stop, num_alive)
                block = b_start // MEGA_BLOCK_NODES
                g = rngs(block)
                senders = np.arange(b_start, b_stop)
                awake_b = alive_awake[b_start:b_stop]
                # (a) perturbation sleep draws for ids in this block
                if num_perturbed and perturb_prob > 0:
                    lo = max(b_start, perturb_lo)
                    hi = min(b_stop, num_alive)
                    if lo < hi:
                        asleep = g.random(hi - lo) < perturb_prob
                        awake_b = awake_b.copy()
                        awake_b[lo - b_start:hi - b_start] &= ~asleep
                        alive_awake[lo:hi] = awake_b[lo - b_start:hi - b_start]
                send_ok = awake_b
                if stall_ok is not None:
                    send_ok = send_ok & stall_ok[b_start:b_stop]
                # (b) view draws, (c) push loss, (d) pull loss
                views = _block_views(g, senders, n, v)
                t_push = views[:, :v_push]
                t_pull = views[:, v_push:]
                has_b = bit_get(has, senders)
                if v_push:
                    sent = (
                        (g.random(t_push.shape) >= loss_round)
                        & send_ok[:, None]
                    )
                    if in_a is not None:
                        sent &= in_a[senders][:, None] == in_a[t_push]
                    push_valid += np.bincount(
                        t_push[sent], minlength=n
                    )
                    holder = sent & has_b[:, None]
                    push_m += np.bincount(t_push[holder], minlength=n)
                    if shared_bound is not None:
                        push_stash.append((b_start, t_push))
                if v_pull:
                    req_sent = (
                        (g.random(t_pull.shape) >= loss_round)
                        & send_ok[:, None]
                    )
                    if in_a is not None:
                        req_sent &= in_a[senders][:, None] == in_a[t_pull]
                    req_valid += np.bincount(
                        t_pull[req_sent], minlength=n
                    )
                    pull_stash.append((b_start, t_pull, req_sent))
                sender_attempts += int(send_ok.sum()) * v
        round_bytes += sum(
            t.nbytes + m.nbytes for _, t, m in pull_stash
        ) + sum(t.nbytes for _, t in push_stash)
        if push_valid is not None:
            round_bytes += push_valid.nbytes + push_m.nbytes
        if req_valid is not None:
            round_bytes += req_valid.nbytes

        # -- phase B: fabricated floods at attacked nodes --------------------
        for fab, rate in ((fab_push, load.push), (fab_req, load.pull_request)):
            if fab is None:
                continue
            fab[:] = 0
            if rate <= 0:
                continue
            for b_start in range(0, num_attacked, MEGA_BLOCK_NODES):
                b_stop = min(b_start + MEGA_BLOCK_NODES, num_attacked)
                g = rngs(b_start // MEGA_BLOCK_NODES)
                fab[b_start:b_stop] = _fabricated_counts(
                    g, rate, (b_stop - b_start,), loss_round
                )

        # -- shared-bounds pool ---------------------------------------------
        p_pool = None
        if shared_bound is not None:
            pool = (push_valid + req_valid).astype(float)
            if fab_push is not None:
                pool[:num_attacked] += fab_push
            if fab_req is not None:
                pool[:num_attacked] += fab_req
            pool[:num_alive] += v_push
            with np.errstate(divide="ignore", invalid="ignore"):
                p_pool = np.where(
                    pool > 0, np.minimum(1.0, shared_bound / pool), 1.0
                )
            p_pool *= alive_awake
            round_bytes += p_pool.nbytes

        # -- phase C: push acceptance ---------------------------------------
        fab_total = 0
        if fab_push is not None:
            fab_total += int(fab_push.sum())
        if fab_req is not None:
            fab_total += int(fab_req.sum())
        if v_push and shared_bound is None:
            total = push_valid.copy()
            if fab_push is not None:
                total[:num_attacked] += fab_push
            for start, stop in _shard_ranges(n, shard_nodes):
                for b_start in range(start, stop, MEGA_BLOCK_NODES):
                    b_stop = min(b_start + MEGA_BLOCK_NODES, stop)
                    g = rngs(b_start // MEGA_BLOCK_NODES)
                    got = _accept_any(
                        g,
                        push_m[b_start:b_stop],
                        total[b_start:b_stop],
                        cfg.push_in_bound,
                    )
                    got &= alive_awake[b_start:b_stop]
                    bit_or_block(new_has, b_start, got)
        elif v_push:
            # Offer handshake (shared-bounds variant): offer wins the
            # target's pool, push-reply wins the sender's pool, each leg
            # crosses one lossy link.
            arrivals = np.zeros(n, dtype=np.int64)
            for b_start, t_push in push_stash:
                b_stop = b_start + t_push.shape[0]
                g = rngs(b_start // MEGA_BLOCK_NODES)
                senders = np.arange(b_start, b_stop)
                send_ok = alive_awake[b_start:b_stop]
                if stall_ok is not None:
                    send_ok = send_ok & stall_ok[b_start:b_stop]
                offer_ok = (
                    (g.random(t_push.shape) >= loss_round)
                    & send_ok[:, None]
                )
                if in_a is not None:
                    offer_ok &= in_a[senders][:, None] == in_a[t_push]
                offer_acc = offer_ok & (
                    g.random(t_push.shape) < p_pool[t_push]
                )
                if stall_ok is not None:
                    offer_acc &= stall_ok[t_push]
                reply_acc = (
                    offer_acc
                    & (g.random(t_push.shape) >= loss_round)
                    & (g.random(t_push.shape) < p_pool[senders][:, None])
                )
                data_ok = reply_acc & (g.random(t_push.shape) >= loss_round)
                m_data = data_ok & bit_get(has, senders)[:, None]
                arrivals += np.bincount(t_push[m_data], minlength=n)
            got_all = (arrivals >= 1) & alive_awake
            for b_start in range(0, n, MEGA_BLOCK_NODES):
                b_stop = min(b_start + MEGA_BLOCK_NODES, n)
                bit_or_block(new_has, b_start, got_all[b_start:b_stop])
            round_bytes += arrivals.nbytes

        # -- phase D: pull requests and replies -------------------------------
        if v_pull:
            if shared_bound is not None:
                accept_prob = p_pool
            else:
                denom = req_valid.astype(float)
                if fab_req is not None:
                    denom[:num_attacked] += fab_req
                with np.errstate(divide="ignore", invalid="ignore"):
                    accept_prob = np.where(
                        denom > 0,
                        np.minimum(1.0, cfg.pull_in_bound / denom),
                        1.0,
                    )
                accept_prob *= alive_awake
                round_bytes += accept_prob.nbytes
            wkr = not cfg.uses_random_ports
            for b_start, t_pull, req_sent in pull_stash:
                b_stop = b_start + t_pull.shape[0]
                g = rngs(b_start // MEGA_BLOCK_NODES)
                accepted = req_sent & (
                    g.random(t_pull.shape) < accept_prob[t_pull]
                )
                if stall_ok is not None:
                    accepted &= stall_ok[t_pull]
                reply_ok = accepted & (g.random(t_pull.shape) >= loss_round)
                m_reply = reply_ok & bit_get(has, t_pull)
                if not wkr:
                    got_pull = m_reply.any(axis=1)
                else:
                    # Well-known reply port: bounded and attacked.
                    replies = reply_ok.sum(axis=1)
                    m_replies = m_reply.sum(axis=1)
                    if load.pull_reply > 0 and b_start < num_attacked:
                        k = min(b_stop, num_attacked) - b_start
                        fab_reply = _fabricated_counts(
                            g, load.pull_reply, (k,), loss_round
                        )
                        fab_total += int(fab_reply.sum())
                        replies = replies.copy()
                        replies[:k] += fab_reply
                    got_pull = _accept_any(
                        g, m_replies, replies, cfg.pull_in_bound
                    )
                bit_or_block(new_has, b_start, got_pull)

        # -- end of round -----------------------------------------------------
        has = new_has
        cur_total = popcount_prefix(has, num_alive)
        cur_attacked = popcount_prefix(has, num_attacked)
        hist_total.append(cur_total)
        hist_attacked.append(cur_attacked)
        peak_bytes = max(peak_bytes, round_bytes)

        if tracer is not None:
            if sender_attempts:
                tracer.gossip_sent(-1, -1, count=sender_attempts)
            if fab_total:
                tracer.flood_sent(-1, -1, count=fab_total)
            delivered_now = hist_total[-1] - hist_total[-2]
            if delivered_now:
                tracer.delivered(count=delivered_now)

        if horizon is None:
            active = cur_total < target
            if active and nondoomed_packed is not None:
                settled = (
                    popcount(has & nondoomed_packed) == nondoomed_count
                )
                active = not settled

    if tracer is not None:
        tracer.run_end(
            rounds=len(hist_total) - 1, delivered=cur_total, runs=1
        )

    reachable_holders = None
    if schedule is not None:
        reachable = schedule.reachable_ids(scenario.max_rounds)
        reachable_holders = popcount(
            has & mask_to_packed(n, sorted(reachable))
        )
    return (
        np.array(hist_total, dtype=np.int32),
        np.array(hist_attacked, dtype=np.int32),
        reachable_holders,
        peak_bytes,
        None,
    )


def _block_views_pool(
    g: np.random.Generator, senders: np.ndarray, pool: np.ndarray, v: int
) -> np.ndarray:
    """(block, v) gossip targets drawn from a sorted membership pool.

    The churn-mode analogue of :func:`_block_views`, matching the fast
    engine's :func:`repro.sim.fast._draw_views_from_pool` distribution:
    uniform distinct ``v``-subsets of ``pool`` excluding the sender
    itself where it appears.
    """
    k = len(pool)
    pos = np.searchsorted(pool, senders)
    in_pool = (pos < k) & (pool[np.minimum(pos, k - 1)] == senders)
    high = k - in_pool.astype(np.int64)
    if np.any(high < v):
        raise ValueError(
            f"membership view too small for {v} distinct gossip targets "
            f"(churn left only {int(high.min())} candidates)"
        )
    if v * (v - 1) >= int(high.min()) - 1:
        keys = g.random((len(senders), k))
        rows = np.flatnonzero(in_pool)
        if len(rows):
            keys[rows, pos[rows]] = np.inf
        idx = np.argsort(keys, axis=1)[:, :v]
        return pool[idx]
    idx = g.integers(0, high[:, None], size=(len(senders), v))
    idx += in_pool[:, None] & (idx >= pos[:, None])
    if v > 1:
        while True:
            ordered = np.sort(idx, axis=1)
            dup = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
            if not dup.any():
                break
            redraw = g.integers(
                0, high[dup][:, None], size=(int(dup.sum()), v)
            )
            redraw += in_pool[dup][:, None] & (redraw >= pos[dup][:, None])
            idx[dup] = redraw
    return pool[idx]


def _bit_or_ids(packed: np.ndarray, ids: np.ndarray) -> None:
    """Set the (arbitrary, possibly unaligned) bits ``ids`` in ``packed``."""
    if len(ids) == 0:
        return
    np.bitwise_or.at(
        packed, ids >> 3, (np.uint8(1) << (ids & 7).astype(np.uint8))
    )


def _run_one_churn(
    scenario: Scenario,
    schedule,
    *,
    seed: SeedLike,
    horizon: Optional[int],
    shard_nodes: int,
    tracer=None,
) -> Tuple[np.ndarray, np.ndarray, Optional[int], int, Optional[tuple]]:
    """One packed run under a churn plan.

    State spans the extended id universe ``total_n`` (joiners at ids
    ``n ..``) and membership follows the same deterministic
    awareness-lag model as the fast engine's churn loop: view draws are
    restricted to ``schedule.aware_targets_at(round, lag)`` and sender
    participation to the present, unsuspected, responsive membership.
    Randomness stays positional per ``(round, node-block)`` — the
    sender set of each block is schedule-determined, never
    shard-determined — so any ``shard_nodes`` and any worker count
    yield byte-identical results.
    """
    root = _run_root(seed)
    n = scenario.n
    nm = schedule.total_n
    cfg = scenario.protocol_config()
    loss = scenario.loss
    num_alive = scenario.num_alive_correct
    num_attacked = scenario.num_attacked
    num_perturbed = scenario.num_perturbed
    perturb_lo = num_alive - num_perturbed
    perturb_prob = scenario.perturbation_prob
    lag = schedule.awareness_lag(scenario.fan_out)

    v_push = cfg.view_push_size
    v_pull = cfg.view_pull_size
    v = v_push + v_pull
    shared_bound = cfg.shared_in_bound
    if v > n - 1:
        raise ValueError(
            f"group of {n} is too small for a combined fan-out of "
            f"{v} distinct targets"
        )

    load = (
        scenario.attack.port_load(scenario.protocol)
        if scenario.attack is not None
        else PortLoad()
    )

    n_blocks = (nm + MEGA_BLOCK_NODES - 1) // MEGA_BLOCK_NODES

    ge = None
    ge_bad = False
    link = scenario.faults.link if scenario.faults is not None else None
    if link is not None and link.affects_loss:
        ge = link

    correct = np.zeros(nm, dtype=bool)
    correct[:num_alive] = True
    correct[n:] = True

    join_round_of = {}
    for at, _stop, first_id, count in schedule.join_blocks():
        for j in range(first_id, first_id + count):
            join_round_of[j] = at
    joiner_ids = np.array(sorted(join_round_of), dtype=np.int64)
    join_rounds = np.array(
        [join_round_of[j] for j in joiner_ids], dtype=np.int64
    )
    deliv = np.full(len(joiner_ids), -1, dtype=np.int32)

    doomed = schedule.doomed_ids(scenario.max_rounds)
    nondoomed_packed = None
    nondoomed_count = 0
    if doomed:
        nondoomed = sorted(
            (set(range(num_alive)) | set(joiner_ids.tolist())) - doomed
        )
        nondoomed_packed = mask_to_packed(nm, nondoomed)
        nondoomed_count = len(nondoomed)

    min_rounds = max(e["round"] for e in schedule.churn_timeline()) + lag

    has = np.zeros(packed_size(nm), dtype=np.uint8)
    has[0] |= 1  # the source (id 0) holds M
    alive_awake = np.zeros(nm, dtype=bool)
    push_valid = np.zeros(nm, dtype=np.int64) if v_push else None
    push_m = np.zeros(nm, dtype=np.int64) if v_push else None
    req_valid = np.zeros(nm, dtype=np.int64) if v_pull else None
    fab_push = (
        np.zeros(num_attacked, dtype=np.int64)
        if v_push and num_attacked
        else None
    )
    fab_req = (
        np.zeros(num_attacked, dtype=np.int64)
        if v_pull and num_attacked
        else None
    )

    target = scenario.threshold_count()
    max_rounds = horizon if horizon is not None else scenario.max_rounds

    cur_total = 1
    cur_attacked = 1 if num_attacked else 0
    hist_total = [cur_total]
    hist_attacked = [cur_attacked]
    active = True
    end_round = 0
    peak_bytes = 0

    if tracer is not None:
        tracer.run_start(
            "mega", protocol=scenario.protocol.value, n=n, runs=1
        )
        tracer.delivered(node=scenario.source, via="source", count=1)

    for round_no in range(1, max_rounds + 1):
        if not active:
            break
        if tracer is not None:
            tracer.round_start(round_no, active_runs=1)
        rngs = _BlockRngs(root, round_no)

        if ge is not None:
            g_run = rngs(n_blocks)
            flip = ge.p_bad_to_good if ge_bad else ge.p_good_to_bad
            ge_bad ^= bool(g_run.random() < flip)
            loss_round = ge.loss_bad if ge_bad else ge.loss_good
        else:
            loss_round = loss

        # ---- deterministic membership state for this round ------------------
        present = schedule.present_at(round_no)
        crashed_set = schedule.crashed_at(round_no)
        stalled_set = schedule.stalled_at(round_no)
        pool = np.fromiter(
            sorted(schedule.aware_targets_at(round_no, lag)),
            dtype=np.int64,
        )
        present_mask = np.zeros(nm, dtype=bool)
        present_mask[list(present)] = True
        sender_mask = np.zeros(nm, dtype=bool)
        sender_mask[
            [
                i
                for i in present
                if (i < num_alive or i >= n)
                and i not in crashed_set
                and i not in stalled_set
            ]
        ] = True
        stall_ok = None
        if stalled_set:
            stall_ok = np.ones(nm, dtype=bool)
            stall_ok[list(stalled_set)] = False
        in_a = None
        side_a = schedule.partition_at(round_no)
        if side_a is not None:
            in_a = np.zeros(nm, dtype=bool)
            in_a[list(side_a)] = True
            in_a[n:] = in_a[scenario.source]

        alive_awake[:] = correct & present_mask
        if crashed_set:
            alive_awake[list(crashed_set)] = False
        new_has = has.copy()
        round_bytes = (
            has.nbytes + new_has.nbytes + alive_awake.nbytes
            + present_mask.nbytes + sender_mask.nbytes + pool.nbytes
        )

        # -- phase A: sender draws, arrival counters -------------------------
        if push_valid is not None:
            push_valid[:] = 0
            push_m[:] = 0
        if req_valid is not None:
            req_valid[:] = 0
        pull_stash: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        push_stash: List[Tuple[np.ndarray, np.ndarray]] = []
        sender_attempts = 0
        for start, stop in _shard_ranges(nm, shard_nodes):
            for b_start in range(start, stop, MEGA_BLOCK_NODES):
                b_stop = min(b_start + MEGA_BLOCK_NODES, stop, nm)
                block = b_start // MEGA_BLOCK_NODES
                b_senders = np.flatnonzero(
                    sender_mask[b_start:b_stop]
                ) + b_start
                lo = max(b_start, perturb_lo)
                hi = min(b_stop, num_alive)
                needs_perturb = (
                    num_perturbed and perturb_prob > 0 and lo < hi
                )
                if not len(b_senders) and not needs_perturb:
                    continue  # positional seeding: skipping burns no draws
                g = rngs(block)
                if needs_perturb:
                    asleep = g.random(hi - lo) < perturb_prob
                    alive_awake[lo:hi] &= ~asleep
                if not len(b_senders):
                    continue
                send_ok = alive_awake[b_senders]
                views = _block_views_pool(g, b_senders, pool, v)
                t_push = views[:, :v_push]
                t_pull = views[:, v_push:]
                has_b = bit_get(has, b_senders)
                if v_push:
                    sent = (
                        (g.random(t_push.shape) >= loss_round)
                        & send_ok[:, None]
                    )
                    if in_a is not None:
                        sent &= in_a[b_senders][:, None] == in_a[t_push]
                    push_valid += np.bincount(
                        t_push[sent], minlength=nm
                    )
                    holder = sent & has_b[:, None]
                    push_m += np.bincount(t_push[holder], minlength=nm)
                    if shared_bound is not None:
                        push_stash.append((b_senders, t_push))
                if v_pull:
                    req_sent = (
                        (g.random(t_pull.shape) >= loss_round)
                        & send_ok[:, None]
                    )
                    if in_a is not None:
                        req_sent &= in_a[b_senders][:, None] == in_a[t_pull]
                    req_valid += np.bincount(
                        t_pull[req_sent], minlength=nm
                    )
                    pull_stash.append((b_senders, t_pull, req_sent))
                sender_attempts += int(send_ok.sum()) * v
        round_bytes += sum(
            s.nbytes + t.nbytes + m.nbytes for s, t, m in pull_stash
        ) + sum(s.nbytes + t.nbytes for s, t in push_stash)
        if push_valid is not None:
            round_bytes += push_valid.nbytes + push_m.nbytes
        if req_valid is not None:
            round_bytes += req_valid.nbytes

        # -- phase B: fabricated floods at attacked nodes --------------------
        for fab, rate in ((fab_push, load.push), (fab_req, load.pull_request)):
            if fab is None:
                continue
            fab[:] = 0
            if rate <= 0:
                continue
            for b_start in range(0, num_attacked, MEGA_BLOCK_NODES):
                b_stop = min(b_start + MEGA_BLOCK_NODES, num_attacked)
                g = rngs(b_start // MEGA_BLOCK_NODES)
                fab[b_start:b_stop] = _fabricated_counts(
                    g, rate, (b_stop - b_start,), loss_round
                )

        # -- shared-bounds pool ---------------------------------------------
        p_pool = None
        if shared_bound is not None:
            pool_load = (push_valid + req_valid).astype(float)
            if fab_push is not None:
                pool_load[:num_attacked] += fab_push
            if fab_req is not None:
                pool_load[:num_attacked] += fab_req
            pool_load[sender_mask] += v_push
            with np.errstate(divide="ignore", invalid="ignore"):
                p_pool = np.where(
                    pool_load > 0,
                    np.minimum(1.0, shared_bound / pool_load),
                    1.0,
                )
            p_pool *= alive_awake
            round_bytes += p_pool.nbytes

        # -- phase C: push acceptance ---------------------------------------
        fab_total = 0
        if fab_push is not None:
            fab_total += int(fab_push.sum())
        if fab_req is not None:
            fab_total += int(fab_req.sum())
        if v_push and shared_bound is None:
            total = push_valid.copy()
            if fab_push is not None:
                total[:num_attacked] += fab_push
            for start, stop in _shard_ranges(nm, shard_nodes):
                for b_start in range(start, stop, MEGA_BLOCK_NODES):
                    b_stop = min(b_start + MEGA_BLOCK_NODES, stop)
                    g = rngs(b_start // MEGA_BLOCK_NODES)
                    got = _accept_any(
                        g,
                        push_m[b_start:b_stop],
                        total[b_start:b_stop],
                        cfg.push_in_bound,
                    )
                    got &= alive_awake[b_start:b_stop]
                    bit_or_block(new_has, b_start, got)
        elif v_push:
            arrivals = np.zeros(nm, dtype=np.int64)
            for b_senders, t_push in push_stash:
                g = rngs(int(b_senders[0]) // MEGA_BLOCK_NODES)
                send_ok = alive_awake[b_senders]
                offer_ok = (
                    (g.random(t_push.shape) >= loss_round)
                    & send_ok[:, None]
                )
                if in_a is not None:
                    offer_ok &= in_a[b_senders][:, None] == in_a[t_push]
                offer_acc = offer_ok & (
                    g.random(t_push.shape) < p_pool[t_push]
                )
                if stall_ok is not None:
                    offer_acc &= stall_ok[t_push]
                reply_acc = (
                    offer_acc
                    & (g.random(t_push.shape) >= loss_round)
                    & (g.random(t_push.shape) < p_pool[b_senders][:, None])
                )
                data_ok = reply_acc & (g.random(t_push.shape) >= loss_round)
                m_data = data_ok & bit_get(has, b_senders)[:, None]
                arrivals += np.bincount(t_push[m_data], minlength=nm)
            got_all = (arrivals >= 1) & alive_awake
            for b_start in range(0, nm, MEGA_BLOCK_NODES):
                b_stop = min(b_start + MEGA_BLOCK_NODES, nm)
                bit_or_block(new_has, b_start, got_all[b_start:b_stop])
            round_bytes += arrivals.nbytes

        # -- phase D: pull requests and replies -------------------------------
        if v_pull:
            if shared_bound is not None:
                accept_prob = p_pool
            else:
                denom = req_valid.astype(float)
                if fab_req is not None:
                    denom[:num_attacked] += fab_req
                with np.errstate(divide="ignore", invalid="ignore"):
                    accept_prob = np.where(
                        denom > 0,
                        np.minimum(1.0, cfg.pull_in_bound / denom),
                        1.0,
                    )
                accept_prob *= alive_awake
                round_bytes += accept_prob.nbytes
            wkr = not cfg.uses_random_ports
            for b_senders, t_pull, req_sent in pull_stash:
                g = rngs(int(b_senders[0]) // MEGA_BLOCK_NODES)
                accepted = req_sent & (
                    g.random(t_pull.shape) < accept_prob[t_pull]
                )
                if stall_ok is not None:
                    accepted &= stall_ok[t_pull]
                reply_ok = accepted & (g.random(t_pull.shape) >= loss_round)
                m_reply = reply_ok & bit_get(has, t_pull)
                if not wkr:
                    got_pull = m_reply.any(axis=1)
                else:
                    replies = reply_ok.sum(axis=1)
                    m_replies = m_reply.sum(axis=1)
                    rows_attacked = np.flatnonzero(
                        b_senders < num_attacked
                    )
                    if load.pull_reply > 0 and len(rows_attacked):
                        fab_reply = _fabricated_counts(
                            g,
                            load.pull_reply,
                            (len(rows_attacked),),
                            loss_round,
                        )
                        fab_total += int(fab_reply.sum())
                        replies = replies.copy()
                        replies[rows_attacked] += fab_reply
                    got_pull = _accept_any(
                        g, m_replies, replies, cfg.pull_in_bound
                    )
                _bit_or_ids(new_has, b_senders[got_pull])

        # -- end of round -----------------------------------------------------
        has = new_has
        cur_total = popcount_prefix(has, num_alive)
        cur_attacked = popcount_prefix(has, num_attacked)
        hist_total.append(cur_total)
        hist_attacked.append(cur_attacked)
        peak_bytes = max(peak_bytes, round_bytes)
        end_round = round_no

        if len(joiner_ids):
            jb = bit_get(has, joiner_ids)
            fresh = jb & (deliv == -1)
            if fresh.any():
                deliv[fresh] = round_no

        if tracer is not None:
            if sender_attempts:
                tracer.gossip_sent(-1, -1, count=sender_attempts)
            if fab_total:
                tracer.flood_sent(-1, -1, count=fab_total)
            delivered_now = hist_total[-1] - hist_total[-2]
            if delivered_now:
                tracer.delivered(count=delivered_now)

        if horizon is None and round_no >= min_rounds:
            active = cur_total < target
            if active and nondoomed_packed is not None:
                settled = (
                    popcount(has & nondoomed_packed) == nondoomed_count
                )
                active = not settled

    if tracer is not None:
        tracer.run_end(
            rounds=len(hist_total) - 1, delivered=cur_total, runs=1
        )

    reachable = schedule.reachable_ids(scenario.max_rounds)
    reachable_holders = popcount(has & mask_to_packed(nm, sorted(reachable)))

    # Same conventions as the fast engine: latency counts joiner-local
    # rounds starting at 1, view convergence is the deterministic lag.
    join_latency = float("nan")
    reach_mask = np.array(
        [int(j) in reachable for j in joiner_ids], dtype=bool
    )
    if reach_mask.any():
        d = deliv[reach_mask].astype(np.float64)
        jr = join_rounds[reach_mask].astype(np.float64)
        latency = np.where(d >= 0, d - jr, float(end_round) - jr) + 1.0
        join_latency = float(np.maximum(latency, 1.0).mean())
    return (
        np.array(hist_total, dtype=np.int32),
        np.array(hist_attacked, dtype=np.int32),
        reachable_holders,
        peak_bytes,
        (join_latency, float(lag)),
    )


# ---------------------------------------------------------------------------
# the public driver
# ---------------------------------------------------------------------------

def _mega_task(task):
    scenario, seed, horizon, shard_nodes, trace = task
    tracer = sink = None
    if trace:
        from repro.sim.parallel import _shard_tracer

        tracer, sink = _shard_tracer()
    counts, attacked, reachable, peak, churn = _run_one(
        scenario,
        seed=seed,
        horizon=horizon,
        shard_nodes=shard_nodes,
        tracer=tracer,
    )
    return (
        counts,
        attacked,
        reachable,
        peak,
        churn,
        sink.events if sink is not None else None,
    )


def _mega_task_shm(task):
    """One packed run on the zero-copy path: the trajectory lands in the
    parent's shared-memory row, only ``(width, peak_bytes)`` pickles."""
    scenario, seed, horizon, shard_nodes, descriptor, row = task
    counts, attacked, reachable, peak, churn = _run_one(
        scenario, seed=seed, horizon=horizon, shard_nodes=shard_nodes
    )
    from repro.sim.executor import SharedArrays

    shm, views = SharedArrays.attach(descriptor)
    try:
        k = counts.shape[0]
        views["counts"][row, :k] = counts
        views["counts"][row, k:] = counts[-1]
        views["attacked"][row, :k] = attacked
        views["attacked"][row, k:] = attacked[-1]
        if reachable is not None:
            views["holders"][row] = reachable
        if churn is not None:
            views["churn"][row, 0] = churn[0]
            views["churn"][row, 1] = churn[1]
        return (int(k), int(peak))
    finally:
        views = None
        shm.close()


class MegaJob:
    """``runs`` packed runs as an executor job (one task per run).

    Node-block shards stream *inside* each task; the run fan-out rides
    the same persistent pool and zero-copy result path as the dense
    engines (see :class:`repro.sim.parallel._DenseJob` for the two-path
    contract).  ``runs == 1`` passes the caller's seed straight through,
    mirroring the fast engine's single-shard behaviour.
    """

    def __init__(
        self,
        scenario: Scenario,
        runs: int = 1,
        *,
        seed: SeedLike = None,
        horizon: Optional[int] = None,
        shard_nodes: Optional[int] = None,
    ):
        from repro.sim.parallel import child_seeds

        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        if shard_nodes is None:
            shard_nodes = DEFAULT_SHARD_NODES
        if isinstance(shard_nodes, bool) or not isinstance(
            shard_nodes, (int, np.integer)
        ) or shard_nodes < 1:
            raise ValueError(
                f"shard_nodes must be a positive integer, got {shard_nodes!r}"
            )
        # Shard boundaries must land on the atomic block grid —
        # otherwise a block would straddle two shards and the per-block
        # generators would collide.  Rounding up preserves the
        # contract: any requested width maps to a block-aligned one,
        # and *all* widths give identical results because draws are per
        # block, never per shard.
        self.shard_nodes = max(
            MEGA_BLOCK_NODES,
            ((int(shard_nodes) + MEGA_BLOCK_NODES - 1) // MEGA_BLOCK_NODES)
            * MEGA_BLOCK_NODES,
        )
        self.scenario = scenario
        self.runs = int(runs)
        self.horizon = horizon
        schedule = scenario.fault_schedule()
        self.has_holders = schedule is not None
        self.has_churn = schedule is not None and schedule.has_churn
        self.width_cap = max(scenario.max_rounds, horizon or 0) + 1
        id_universe = schedule.total_n if self.has_churn else scenario.n
        self.blocks = (id_universe + MEGA_BLOCK_NODES - 1) // MEGA_BLOCK_NODES
        self._seeds: List[SeedLike]
        if self.runs == 1:
            self._seeds = [seed]
        else:
            self._seeds = list(child_seeds(seed, self.runs))

    # -- pickled-result path -------------------------------------------------

    def pickle_calls(self, trace: bool):
        return [
            (
                _mega_task,
                (self.scenario, run_seed, self.horizon, self.shard_nodes,
                 trace),
            )
            for run_seed in self._seeds
        ]

    def assemble_pickled(self, rows, tracer) -> "MegaResult":
        if tracer is not None:
            for run_ix, row in enumerate(rows):
                for event in row[5]:
                    event["run"] = run_ix
                    tracer.emit(event)
        width = max(row[0].shape[0] for row in rows)
        if self.horizon is not None:
            width = max(width, self.horizon + 1)
        counts = np.zeros((self.runs, width), dtype=np.int32)
        attacked = np.zeros((self.runs, width), dtype=np.int32)
        for i, row in enumerate(rows):
            k = row[0].shape[0]
            counts[i, :k] = row[0]
            counts[i, k:] = row[0][-1]
            attacked[i, :k] = row[1]
            attacked[i, k:] = row[1][-1]
        reachable_holders = None
        if all(row[2] is not None for row in rows):
            reachable_holders = np.array(
                [row[2] for row in rows], dtype=np.int32
            )
        churn_stats = None
        if self.has_churn:
            churn_stats = np.array(
                [row[4] for row in rows], dtype=np.float64
            )
        return self._result(
            counts, attacked, reachable_holders,
            churn_stats=churn_stats,
            peak=max(row[3] for row in rows),
        )

    # -- zero-copy path ------------------------------------------------------

    def layout(self):
        spec = [
            ("counts", (self.runs, self.width_cap), np.int32),
            ("attacked", (self.runs, self.width_cap), np.int32),
        ]
        if self.has_holders:
            spec.append(("holders", (self.runs,), np.int32))
        if self.has_churn:
            spec.append(("churn", (self.runs, 2), np.float64))
        return spec

    def shm_calls(self, descriptor):
        return [
            (
                _mega_task_shm,
                (self.scenario, run_seed, self.horizon, self.shard_nodes,
                 descriptor, row),
            )
            for row, run_seed in enumerate(self._seeds)
        ]

    def assemble_shm(self, shared, metas) -> "MegaResult":
        width = max(meta[0] for meta in metas)
        if self.horizon is not None:
            width = max(width, self.horizon + 1)
        views = shared.arrays()
        counts = np.array(views["counts"][:, :width])
        attacked = np.array(views["attacked"][:, :width])
        reachable_holders = (
            np.array(views["holders"]) if self.has_holders else None
        )
        churn_stats = (
            np.array(views["churn"]) if self.has_churn else None
        )
        views = None
        return self._result(
            counts, attacked, reachable_holders,
            churn_stats=churn_stats,
            peak=max(meta[1] for meta in metas),
        )

    def _result(
        self, counts, attacked, reachable_holders, *, churn_stats=None, peak
    ):
        return MegaResult(
            scenario=self.scenario,
            counts=counts,
            counts_attacked=attacked,
            counts_non_attacked=counts - attacked,
            reachable_holders=reachable_holders,
            churn_stats=churn_stats,
            shard_nodes=self.shard_nodes,
            blocks=self.blocks,
            peak_state_bytes=peak,
        )


def run_mega(
    scenario: Scenario,
    runs: int = 1,
    *,
    seed: SeedLike = None,
    horizon: Optional[int] = None,
    workers: int = 1,
    shard_nodes: Optional[int] = None,
    tracer=None,
) -> MegaResult:
    """Simulate ``runs`` independent packed runs of ``scenario``.

    One child seed per run is derived positionally (``runs == 1`` passes
    the caller's seed straight through, mirroring the fast engine's
    single-shard behaviour), runs fan out over ``workers`` persistent
    pool processes with shared-memory result rows, and each run streams
    the node axis in ``shard_nodes``-wide shards — the result is
    byte-identical for every ``workers`` *and* every ``shard_nodes``.
    ``tracer`` attaches aggregate per-round events (run-ordered and
    worker-count invariant, like the fast engine's sharded stream).
    """
    from repro.sim.parallel import check_workers, execute_job

    workers = check_workers(workers)
    job = MegaJob(
        scenario, runs, seed=seed, horizon=horizon, shard_nodes=shard_nodes
    )
    return execute_job(job, workers=workers, tracer=tracer)
