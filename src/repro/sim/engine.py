"""The exact object-level round simulator.

Runs real :class:`~repro.core.protocol.GossipProcess` instances over a
:class:`~repro.net.network.Network`: every packet, port, sealed envelope,
and bounded channel actually exists.  This engine is the semantic
reference — the vectorised engine in :mod:`repro.sim.fast` is validated
against it — and the right tool for small-n studies and tests.

Round structure (synchronised across processes, as in the paper's
simulations):

1. every process snapshots its state and draws views;
2. every process sends push data and pull-requests;
3. the adversary floods the victims' well-known ports;
4. every process drains its bounded channels, ingesting pushes and
   answering pull-requests (replies land within the same round);
5. every process reads its pull-reply ports;
6. leftover channel backlog is discarded and rounds advance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.adversary.attacker import RoundAttacker
from repro.core import PROCESS_CLASSES
from repro.core.protocol import GossipProcess
from repro.net.link import LossModel
from repro.net.network import Network
from repro.sim.results import RunResult
from repro.sim.scenario import Scenario
from repro.util import SeedSequenceFactory
from repro.util.rng import SeedLike


class RoundSimulator:
    """Drives one run of a scenario with real protocol objects."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        seed: SeedLike = None,
        attacker_cls: Optional[type] = None,
        attacker_factory=None,
        distribute_keys: bool = True,
    ):
        """``attacker_cls`` overrides the static :class:`RoundAttacker`
        with an adaptive one (see :mod:`repro.adversary.adaptive`); it is
        constructed with the scenario's attack spec and the full set of
        alive correct processes as candidates.  ``attacker_factory``
        gives full control: called as ``factory(scenario, network,
        seed)`` and must return a :class:`RoundAttacker`-compatible
        object.  ``distribute_keys=False`` runs the *unencrypted-ports*
        ablation: processes advertise their random reply ports in
        cleartext, which a snooping adversary can harvest."""
        self.scenario = scenario
        seeds = SeedSequenceFactory(seed)
        self._rng = np.random.default_rng(seeds.next_seed())
        self._perturbed = set(scenario.perturbed_ids())
        self.network = Network(
            LossModel(scenario.loss, seed=seeds.next_seed()),
            seed=seeds.next_seed(),
        )
        config = scenario.protocol_config()
        process_cls = PROCESS_CLASSES[scenario.protocol]
        members = list(range(scenario.n))

        # Malicious and crashed nodes exist as addresses with no open
        # ports: gossip sent to them is silently wasted.
        for pid in scenario.malicious_ids() + scenario.crashed_ids():
            self.network.register_node(pid)

        self.processes: Dict[int, GossipProcess] = {}
        for pid in scenario.alive_correct_ids():
            self.processes[pid] = process_cls(
                pid,
                members,
                self.network,
                config=config,
                seed=seeds.next_seed(),
                has_message=(pid == scenario.source),
            )
        if distribute_keys:
            keys = {pid: p.keys.public for pid, p in self.processes.items()}
            for process in self.processes.values():
                process.learn_keys(keys)

        self.attacker: Optional[RoundAttacker] = None
        if scenario.attack is not None:
            if attacker_factory is not None:
                self.attacker = attacker_factory(
                    scenario, self.network, seeds.next_seed()
                )
            elif attacker_cls is not None:
                self.attacker = attacker_cls(
                    scenario.attack,
                    scenario.protocol,
                    scenario.alive_correct_ids(),
                    self.network,
                    n=scenario.n,
                    seed=seeds.next_seed(),
                )
            else:
                self.attacker = RoundAttacker(
                    scenario.attack,
                    scenario.protocol,
                    scenario.attacked_ids(),
                    self.network,
                    seed=seeds.next_seed(),
                )

    def holders(self) -> int:
        """Alive correct processes currently holding M."""
        return sum(p.has_message for p in self.processes.values())

    def step_round(self) -> None:
        """Execute one synchronised gossip round.

        Perturbed processes sleep through a round with the scenario's
        perturbation probability: they take part in no phase, and
        whatever arrived for them is discarded at round end like any
        other unread backlog.
        """
        procs = [
            p
            for p in self.processes.values()
            if p.pid not in self._perturbed
            or self._rng.random() >= self.scenario.perturbation_prob
        ]
        for p in procs:
            p.begin_round()
        for p in procs:
            p.send_phase()
        if self.attacker is not None:
            observe = getattr(self.attacker, "observe_round", None)
            if observe is not None:
                observe(
                    {pid: p.has_message for pid, p in self.processes.items()}
                )
            self.attacker.inject_round()
        for p in procs:
            p.receive_phase()
        for p in procs:
            p.reply_phase()
        for p in procs:
            p.data_phase()
        # Drum discards all unread messages at round end.
        self.network.end_round()
        for p in procs:
            p.end_round()

    def run(self) -> RunResult:
        """Run until the coverage threshold is met or max_rounds elapse."""
        scenario = self.scenario
        attacked = set(scenario.attacked_ids())
        target = scenario.threshold_count()

        counts: List[int] = [self.holders()]
        counts_attacked = [
            sum(self.processes[pid].has_message for pid in attacked)
        ]
        counts_non = [counts[0] - counts_attacked[0]]

        while counts[-1] < target and len(counts) <= scenario.max_rounds:
            self.step_round()
            total = self.holders()
            in_attacked = sum(
                self.processes[pid].has_message for pid in attacked
            )
            counts.append(total)
            counts_attacked.append(in_attacked)
            counts_non.append(total - in_attacked)

        deliveries = np.full(scenario.num_alive_correct, np.nan)
        for pid, process in self.processes.items():
            if process.delivery_round is not None:
                deliveries[pid] = process.delivery_round

        return RunResult(
            scenario=scenario,
            counts=np.asarray(counts, dtype=np.int32),
            counts_attacked=np.asarray(counts_attacked, dtype=np.int32),
            counts_non_attacked=np.asarray(counts_non, dtype=np.int32),
            delivery_rounds=deliveries,
        )


def run_exact(scenario: Scenario, *, seed: SeedLike = None) -> RunResult:
    """Convenience wrapper: build a :class:`RoundSimulator` and run it."""
    return RoundSimulator(scenario, seed=seed).run()
