"""The exact object-level round simulator.

Runs real :class:`~repro.core.protocol.GossipProcess` instances over a
:class:`~repro.net.network.Network`: every packet, port, sealed envelope,
and bounded channel actually exists.  This engine is the semantic
reference — the vectorised engine in :mod:`repro.sim.fast` is validated
against it — and the right tool for small-n studies and tests.

Round structure (synchronised across processes, as in the paper's
simulations):

1. every process snapshots its state and draws views;
2. every process sends push data and pull-requests;
3. the adversary floods the victims' well-known ports;
4. every process drains its bounded channels, ingesting pushes and
   answering pull-requests (replies land within the same round);
5. every process reads its pull-reply ports;
6. leftover channel backlog is discarded and rounds advance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.adversary.attacker import RoundAttacker
from repro.core import PROCESS_CLASSES
from repro.core.protocol import GossipProcess
from repro.faults.gilbert import GilbertElliottModel
from repro.net.link import LossModel
from repro.net.network import Network
from repro.sim.results import RunResult
from repro.sim.scenario import Scenario
from repro.util import SeedSequenceFactory
from repro.util.profiling import Profiler, maybe_profiler
from repro.util.rng import SeedLike


class RoundSimulator:
    """Drives one run of a scenario with real protocol objects."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        seed: SeedLike = None,
        attacker_cls: Optional[type] = None,
        attacker_factory=None,
        distribute_keys: bool = True,
        profile: Optional[bool] = None,
        naive: bool = False,
        tracer=None,
    ):
        """``attacker_cls`` overrides the static :class:`RoundAttacker`
        with an adaptive one (see :mod:`repro.adversary.adaptive`); it is
        constructed with the scenario's attack spec and the full set of
        alive correct processes as candidates.  ``attacker_factory``
        gives full control: called as ``factory(scenario, network,
        seed)`` and must return a :class:`RoundAttacker`-compatible
        object.  ``distribute_keys=False`` runs the *unencrypted-ports*
        ablation: processes advertise their random reply ports in
        cleartext, which a snooping adversary can harvest.

        ``profile=True`` attaches a per-phase hotspot
        :class:`~repro.util.profiling.Profiler` (read it from
        ``self.profiler`` after :meth:`run`); ``profile=None`` defers to
        the validated ``REPRO_PROFILE`` environment toggle.  Profiling
        only times phases — it draws no randomness, so profiled and
        unprofiled runs produce identical traces.

        ``naive=True`` runs the network in its unoptimised reference
        mode (object-per-packet floods, eagerly-seeded object-level
        channels).  It samples the same distributions but consumes a
        different RNG stream, so seeded naive and fast runs differ
        packet-for-packet; it exists for the perf harness to measure
        the fast path against, not for experiments.

        ``tracer`` attaches a :class:`~repro.obs.tracer.Tracer`: the
        engine then emits the full per-packet event stream (round
        markers, sends, floods, channel acceptance and drops,
        deliveries, fault transitions).  Like profiling, tracing draws
        no randomness — traced and untraced seeded runs produce
        byte-identical :class:`RunResult` traces."""
        self.scenario = scenario
        if profile is None:
            self.profiler: Optional[Profiler] = maybe_profiler(False)
        else:
            self.profiler = Profiler() if profile else None
        self._tracer = tracer
        seeds = SeedSequenceFactory(seed)
        self._rng = np.random.default_rng(seeds.next_seed())
        self._perturbed = set(scenario.perturbed_ids())
        self.network = Network(
            LossModel(scenario.loss, seed=seeds.next_seed()),
            seed=seeds.next_seed(),
            naive=naive,
            tracer=tracer,
        )
        config = scenario.protocol_config()
        process_cls = PROCESS_CLASSES[scenario.protocol]
        # The schedule itself is seedless, so resolving it early (the
        # full id universe is needed before processes are built under a
        # churn plan) consumes no seed positions; the conditional
        # Gilbert-Elliott seed draw stays in its original place below.
        self._schedule = scenario.fault_schedule()
        has_churn = self._schedule is not None and self._schedule.has_churn
        # Under churn the shared destination tables must cover every id
        # that will ever exist; the director immediately narrows each
        # process's candidate pool to the current membership view.
        members = list(
            range(self._schedule.total_n if has_churn else scenario.n)
        )

        # Malicious and crashed nodes exist as addresses with no open
        # ports: gossip sent to them is silently wasted.
        for pid in scenario.malicious_ids() + scenario.crashed_ids():
            self.network.register_node(pid)

        self.processes: Dict[int, GossipProcess] = {}
        for pid in scenario.alive_correct_ids():
            self.processes[pid] = process_cls(
                pid,
                members,
                self.network,
                config=config,
                seed=seeds.next_seed(),
                has_message=(pid == scenario.source),
            )
        self._all_procs = list(self.processes.values())
        if distribute_keys:
            keys = {pid: p.keys.public for pid, p in self.processes.items()}
            for process in self.processes.values():
                process.learn_keys(keys)

        #: 1-based number of the round currently (or last) executed;
        #: fault-event windows are expressed against this counter.
        self.round_no = 0
        # Fault wiring comes last so its (conditional) seed draw never
        # shifts the positions faultless runs consume — the golden
        # traces pin those.
        if self._schedule is not None:
            link = scenario.faults.link
            if link is not None and link.affects_loss:
                self.network.use_loss_model(
                    GilbertElliottModel.from_link_faults(
                        link, seed=seeds.next_seed()
                    )
                )

        self.attacker: Optional[RoundAttacker] = None
        if scenario.attack is not None:
            if attacker_factory is not None:
                self.attacker = attacker_factory(
                    scenario, self.network, seeds.next_seed()
                )
            elif attacker_cls is not None:
                self.attacker = attacker_cls(
                    scenario.attack,
                    scenario.protocol,
                    scenario.alive_correct_ids(),
                    self.network,
                    n=scenario.n,
                    seed=seeds.next_seed(),
                )
            else:
                self.attacker = RoundAttacker(
                    scenario.attack,
                    scenario.protocol,
                    scenario.attacked_ids(),
                    self.network,
                    seed=seeds.next_seed(),
                )

        # Membership churn wiring comes after the attacker: its joiner
        # seed pre-draws are gated on churn tokens, so fault-only and
        # faultless runs consume exactly the positions they always did.
        self._churn = None
        if has_churn:
            from repro.sim.churn import ChurnDirector

            self._churn = ChurnDirector(self, seeds)

        # Trace bookkeeping (fault-transition edge detection); emitting
        # run_start last means every seed position above is already
        # consumed, and the tracer itself never draws randomness.
        self._prev_crashed = frozenset()
        self._prev_side_a = None
        if tracer is not None:
            tracer.run_start(
                "exact",
                protocol=scenario.protocol.value,
                n=scenario.n,
            )
            tracer.delivered(node=scenario.source, via="source")

    def holders(self) -> int:
        """Alive correct processes currently holding M."""
        return sum(p.has_message for p in self.processes.values())

    def step_round(self) -> None:
        """Execute one synchronised gossip round.

        Perturbed processes sleep through a round with the scenario's
        perturbation probability: they take part in no phase, and
        whatever arrived for them is discarded at round end like any
        other unread backlog.

        Under a fault plan, crashed processes are treated like a
        perturbed process's off round (no phase at all — their buffered
        state persists, as for a paused OS process); stalled processes
        skip the send phase and the network mutes the rest of their
        uplink (replies included), while they keep receiving; and the
        network drops packets crossing an active partition cut or
        touching a crashed machine.
        """
        self.round_no += 1
        tr = self._tracer
        if tr is not None:
            tr.round_start(self.round_no)
        if self._perturbed:
            procs = [
                p
                for p in self.processes.values()
                if p.pid not in self._perturbed
                or self._rng.random() >= self.scenario.perturbation_prob
            ]
        else:
            # No perturbation draws ever happen, so the stable process
            # list is reused instead of being rebuilt every round.
            procs = self._all_procs
        if self._churn is not None:
            # Fire scheduled membership events, settle failure-detector
            # verdicts, and refresh every process's gossip candidates
            # before views are drawn.
            self._churn.begin_round(self.round_no)
            departed = self._churn.departed
            if departed:
                procs = [p for p in procs if p.pid not in departed]
            joiners = self._churn.active_joiners()
            if joiners:
                procs = procs + joiners
        send_procs = procs
        if self._schedule is not None:
            self.network.set_block(self._schedule.blocks_fn(self.round_no))
            crashed = self._schedule.crashed_at(self.round_no)
            if crashed:
                procs = [p for p in procs if p.pid not in crashed]
                send_procs = procs
            stalled = self._schedule.stalled_at(self.round_no)
            if stalled:
                send_procs = [p for p in procs if p.pid not in stalled]
            if tr is not None:
                self._emit_fault_transitions(tr, crashed)
        prof = self.profiler
        if prof is None:
            for p in procs:
                p.begin_round()
            for p in send_procs:
                p.send_phase()
            self._attacker_step()
            for p in procs:
                p.receive_phase()
            for p in procs:
                p.reply_phase()
            for p in procs:
                p.data_phase()
            # Drum discards all unread messages at round end.
            self.network.end_round()
            for p in procs:
                p.end_round()
            if self._churn is not None:
                self._churn.end_round(self.round_no)
            if tr is not None:
                self._emit_deliveries(tr)
            return
        prof.phase_start("begin_round")
        for p in procs:
            p.begin_round()
        prof.phase_stop("begin_round")
        prof.phase_start("send_phase")
        for p in send_procs:
            p.send_phase()
        prof.phase_stop("send_phase")
        prof.phase_start("attacker")
        self._attacker_step()
        prof.phase_stop("attacker")
        prof.phase_start("receive_phase")
        for p in procs:
            p.receive_phase()
        prof.phase_stop("receive_phase")
        prof.phase_start("reply_phase")
        for p in procs:
            p.reply_phase()
        prof.phase_stop("reply_phase")
        prof.phase_start("data_phase")
        for p in procs:
            p.data_phase()
        prof.phase_stop("data_phase")
        prof.phase_start("end_round")
        self.network.end_round()
        for p in procs:
            p.end_round()
        prof.phase_stop("end_round")
        if self._churn is not None:
            self._churn.end_round(self.round_no)
        if tr is not None:
            self._emit_deliveries(tr)

    def _emit_fault_transitions(self, tr, crashed) -> None:
        """Emit crash/heal and partition edges for the current round."""
        now_crashed = frozenset(crashed) if crashed else frozenset()
        went_down = now_crashed - self._prev_crashed
        came_back = self._prev_crashed - now_crashed
        if went_down:
            tr.crash(went_down)
        if came_back:
            tr.heal(came_back)
        self._prev_crashed = now_crashed
        side_a = self._schedule.partition_at(self.round_no)
        if side_a is not None and self._prev_side_a is None:
            tr.partition(side_a)
        elif side_a is None and self._prev_side_a is not None:
            tr.partition_heal()
        self._prev_side_a = side_a

    def _emit_deliveries(self, tr) -> None:
        """Emit one delivered event per process that got M this round."""
        for pid, process in self.processes.items():
            if process.delivery_round == self.round_no:
                tr.delivered(node=pid, via=process.delivery_path)
        if self._churn is not None:
            # Joiners count their rounds locally (from their own join),
            # so their deliveries are detected by state edge instead.
            self._churn.emit_joiner_deliveries(tr, self.round_no)

    def _attacker_step(self) -> None:
        """Let the attacker observe the group and inject its flood."""
        if self.attacker is None:
            return
        observe = getattr(self.attacker, "observe_round", None)
        if observe is not None:
            observe({pid: p.has_message for pid, p in self.processes.items()})
        self.attacker.inject_round()

    def run(self) -> RunResult:
        """Run until the coverage threshold is met or max_rounds elapse."""
        scenario = self.scenario
        attacked = set(scenario.attacked_ids())
        target = scenario.threshold_count()

        counts: List[int] = [self.holders()]
        counts_attacked = [
            sum(self.processes[pid].has_message for pid in attacked)
        ]
        counts_non = [counts[0] - counts_attacked[0]]

        alive = scenario.num_alive_correct
        # Under a fault plan, processes crashed for good can strand the
        # run below both the threshold and full coverage; the run is
        # over once every *other* process holds M.
        doomed = (
            self._schedule.doomed_ids(scenario.max_rounds)
            if self._schedule is not None
            else None
        )
        # Under churn the run must outlive the last scheduled membership
        # event (plus dissemination slack): a threshold met early would
        # otherwise skip joins entirely and no churn metric could exist.
        min_rounds = self._churn.min_rounds if self._churn is not None else 0
        while (
            counts[-1] < target or self.round_no < min_rounds
        ) and len(counts) <= scenario.max_rounds:
            self.step_round()
            total = self.holders()
            in_attacked = sum(
                self.processes[pid].has_message for pid in attacked
            )
            counts.append(total)
            counts_attacked.append(in_attacked)
            counts_non.append(total - in_attacked)
            if self.round_no < min_rounds:
                continue
            if total >= alive:
                # Every alive correct process holds M: no further round
                # can change any trajectory, so stop simulating even if
                # a (mis)configured threshold exceeds the group size.
                break
            if (
                doomed
                and all(
                    p.has_message
                    for pid, p in self.processes.items()
                    if pid not in doomed
                )
                and (
                    self._churn is None
                    or all(
                        p.has_message
                        for p in self._churn.active_joiners()
                    )
                )
            ):
                break

        deliveries = np.full(scenario.num_alive_correct, np.nan)
        for pid, process in self.processes.items():
            if process.delivery_round is not None:
                deliveries[pid] = process.delivery_round

        result = RunResult(
            scenario=scenario,
            counts=np.asarray(counts, dtype=np.int32),
            counts_attacked=np.asarray(counts_attacked, dtype=np.int32),
            counts_non_attacked=np.asarray(counts_non, dtype=np.int32),
            delivery_rounds=deliveries,
        )
        if self._schedule is not None:
            reachable = self._schedule.reachable_ids(scenario.max_rounds)
            if self._churn is not None:
                result.residual_reliability = sum(
                    self._churn.holder(pid) for pid in reachable
                ) / len(reachable)
                result.churn = self._churn.finalize(len(counts) - 1)
            else:
                result.residual_reliability = sum(
                    self.processes[pid].has_message for pid in reachable
                ) / len(reachable)
            heal = self._schedule.last_heal_round()
            if heal:
                rtt = result.rounds_to_threshold()
                result.rounds_to_heal = (
                    rtt if np.isnan(rtt) else max(0.0, rtt - heal)
                )
        if self._tracer is not None:
            self._tracer.run_end(
                rounds=len(counts) - 1, delivered=int(counts[-1])
            )
        return result


def run_exact(
    scenario: Scenario, *, seed: SeedLike = None, tracer=None
) -> RunResult:
    """Convenience wrapper: build a :class:`RoundSimulator` and run it."""
    return RoundSimulator(scenario, seed=seed, tracer=tracer).run()
