"""One-call experiment sweeps.

The paper's evaluation is built from three sweep shapes (rate, extent,
fixed budget).  These helpers run a sweep across protocols and return a
:class:`~repro.metrics.report.SeriesReport` ready to print, save, or
diff — the same machinery the benchmark harness uses, packaged for
interactive use::

    from repro.sim.sweeps import rate_sweep

    report = rate_sweep(
        ["drum", "push", "pull"], rates=[0, 32, 64, 128],
        n=120, alpha=0.1, runs=200, seed=1,
    )
    print(report.to_json())
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolKind
from repro.metrics.report import SeriesReport
from repro.sim.runner import monte_carlo
from repro.sim.scenario import Scenario
from repro.util import spawn_seeds
from repro.util.rng import SeedLike

ProtocolName = Union[str, ProtocolKind]


def _mean_rounds(
    protocol: ProtocolName,
    n: int,
    attack: Optional[AttackSpec],
    *,
    malicious_fraction: float,
    runs: Optional[int],
    seed,
    max_rounds: int,
) -> float:
    scenario = Scenario(
        protocol=protocol,
        n=n,
        malicious_fraction=malicious_fraction if attack else 0.0,
        attack=attack,
        max_rounds=max_rounds,
    )
    return monte_carlo(scenario, runs=runs, seed=seed).mean_rounds()


def rate_sweep(
    protocols: Sequence[ProtocolName],
    rates: Sequence[float],
    *,
    n: int = 120,
    alpha: float = 0.1,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
) -> SeriesReport:
    """Propagation time vs the per-victim attack rate ``x`` (Figure 3a)."""
    report = SeriesReport(
        name="rate_sweep",
        x_label="x (fabricated msgs/victim/round)",
        x_values=[float(x) for x in rates],
        metadata={"n": n, "alpha": alpha},
    )
    seeds = spawn_seeds(seed, len(protocols))
    for protocol, proto_seed in zip(protocols, seeds):
        times = [
            _mean_rounds(
                protocol,
                n,
                AttackSpec(alpha=alpha, x=float(x)) if x > 0 else None,
                malicious_fraction=malicious_fraction,
                runs=runs,
                seed=proto_seed,
                max_rounds=max_rounds,
            )
            for x in rates
        ]
        report.add_series(str(ProtocolKind(protocol).value), times)
    return report


def extent_sweep(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    x: float = 128.0,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
) -> SeriesReport:
    """Propagation time vs the attack extent ``α`` (Figure 3b)."""
    report = SeriesReport(
        name="extent_sweep",
        x_label="alpha (fraction of processes attacked)",
        x_values=[float(a) for a in alphas],
        metadata={"n": n, "x": x},
    )
    seeds = spawn_seeds(seed, len(protocols))
    for protocol, proto_seed in zip(protocols, seeds):
        times = [
            _mean_rounds(
                protocol,
                n,
                AttackSpec(alpha=float(a), x=x),
                malicious_fraction=malicious_fraction,
                runs=runs,
                seed=proto_seed,
                max_rounds=max_rounds,
            )
            for a in alphas
        ]
        report.add_series(str(ProtocolKind(protocol).value), times)
    return report


def budget_sweep(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    budget_per_process: float = 7.2,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
) -> SeriesReport:
    """Fixed-budget strategy sweep: ``B = budget_per_process · n``
    split over each extent in ``alphas`` (Figures 7–8)."""
    report = SeriesReport(
        name="budget_sweep",
        x_label="alpha (fraction of processes attacked)",
        x_values=[float(a) for a in alphas],
        metadata={"n": n, "budget_per_process": budget_per_process},
    )
    seeds = spawn_seeds(seed, len(protocols))
    for protocol, proto_seed in zip(protocols, seeds):
        times = [
            _mean_rounds(
                protocol,
                n,
                AttackSpec.fixed_budget(budget_per_process * n, float(a), n),
                malicious_fraction=malicious_fraction,
                runs=runs,
                seed=proto_seed,
                max_rounds=max_rounds,
            )
            for a in alphas
        ]
        report.add_series(str(ProtocolKind(protocol).value), times)
    return report
