"""One-call experiment sweeps.

The paper's evaluation is built from three sweep shapes (rate, extent,
fixed budget).  These helpers run a sweep across protocols and return a
:class:`~repro.metrics.report.SeriesReport` ready to print, save, or
diff — the same machinery the benchmark harness uses, packaged for
interactive use::

    from repro.sim.sweeps import rate_sweep

    report = rate_sweep(
        ["drum", "push", "pull"], rates=[0, 32, 64, 128],
        n=120, alpha=0.1, runs=200, seed=1, workers=4,
    )
    print(report.to_json())

``workers`` (default: the ``REPRO_WORKERS`` env var) spreads the grid's
(protocol, point) cells over a process pool.  Every cell's seed is
derived in the parent before anything runs, so the report is
byte-identical JSON for any worker count.  ``cache`` threads an on-disk
:class:`~repro.sim.parallel.ResultCache` through to each cell, letting
figures that share points (e.g. the rate-0 baseline) compute them once.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolKind
from repro.metrics.report import SeriesReport
from repro.sim.parallel import (
    ResultCache,
    as_cache,
    check_workers,
    default_workers,
    parallel_map,
)
from repro.sim.runner import monte_carlo
from repro.sim.scenario import Scenario
from repro.util import spawn_seeds
from repro.util.rng import SeedLike

ProtocolName = Union[str, ProtocolKind]

#: One sweep cell: everything a worker needs to compute one data point.
_Cell = Tuple


def _mean_rounds(
    protocol: ProtocolName,
    n: int,
    attack: Optional[AttackSpec],
    *,
    malicious_fraction: float,
    runs: Optional[int],
    seed,
    max_rounds: int,
    cache: Optional[ResultCache] = None,
) -> float:
    scenario = Scenario(
        protocol=protocol,
        n=n,
        malicious_fraction=malicious_fraction if attack else 0.0,
        attack=attack,
        max_rounds=max_rounds,
    )
    # Cells already run on the pool; keep each cell single-process so a
    # parallel sweep never nests pools (REPRO_WORKERS is ignored here).
    return monte_carlo(
        scenario, runs=runs, seed=seed, workers=1, cache=cache
    ).mean_rounds()


def _run_cell(cell: _Cell) -> float:
    protocol, n, attack, malicious_fraction, runs, seed, max_rounds, cache = cell
    return _mean_rounds(
        protocol,
        n,
        attack,
        malicious_fraction=malicious_fraction,
        runs=runs,
        seed=seed,
        max_rounds=max_rounds,
        cache=cache,
    )


def _sweep_grid(
    report: SeriesReport,
    protocols: Sequence[ProtocolName],
    cells: List[List[_Cell]],
    *,
    workers: Optional[int],
) -> SeriesReport:
    """Evaluate a protocol-major cell grid and fill ``report``'s series.

    Seeds inside ``cells`` were derived before this call, so the worker
    count only affects scheduling — never values.
    """
    workers = default_workers() if workers is None else check_workers(workers)
    flat = [cell for row in cells for cell in row]
    values = parallel_map(_run_cell, flat, workers=workers)
    points_per_protocol = len(cells[0]) if cells else 0
    for i, protocol in enumerate(protocols):
        row = values[i * points_per_protocol:(i + 1) * points_per_protocol]
        report.add_series(str(ProtocolKind(protocol).value), row)
    return report


def rate_sweep(
    protocols: Sequence[ProtocolName],
    rates: Sequence[float],
    *,
    n: int = 120,
    alpha: float = 0.1,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
) -> SeriesReport:
    """Propagation time vs the per-victim attack rate ``x`` (Figure 3a)."""
    report = SeriesReport(
        name="rate_sweep",
        x_label="x (fabricated msgs/victim/round)",
        x_values=[float(x) for x in rates],
        metadata={"n": n, "alpha": alpha},
    )
    cache = as_cache(cache)
    seeds = spawn_seeds(seed, len(protocols))
    cells = [
        [
            (
                protocol,
                n,
                AttackSpec(alpha=alpha, x=float(x)) if x > 0 else None,
                malicious_fraction,
                runs,
                proto_seed,
                max_rounds,
                cache,
            )
            for x in rates
        ]
        for protocol, proto_seed in zip(protocols, seeds)
    ]
    return _sweep_grid(report, protocols, cells, workers=workers)


def extent_sweep(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    x: float = 128.0,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
) -> SeriesReport:
    """Propagation time vs the attack extent ``α`` (Figure 3b)."""
    report = SeriesReport(
        name="extent_sweep",
        x_label="alpha (fraction of processes attacked)",
        x_values=[float(a) for a in alphas],
        metadata={"n": n, "x": x},
    )
    cache = as_cache(cache)
    seeds = spawn_seeds(seed, len(protocols))
    cells = [
        [
            (
                protocol,
                n,
                AttackSpec(alpha=float(a), x=x),
                malicious_fraction,
                runs,
                proto_seed,
                max_rounds,
                cache,
            )
            for a in alphas
        ]
        for protocol, proto_seed in zip(protocols, seeds)
    ]
    return _sweep_grid(report, protocols, cells, workers=workers)


def budget_sweep(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    budget_per_process: float = 7.2,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
) -> SeriesReport:
    """Fixed-budget strategy sweep: ``B = budget_per_process · n``
    split over each extent in ``alphas`` (Figures 7–8)."""
    report = SeriesReport(
        name="budget_sweep",
        x_label="alpha (fraction of processes attacked)",
        x_values=[float(a) for a in alphas],
        metadata={"n": n, "budget_per_process": budget_per_process},
    )
    cache = as_cache(cache)
    seeds = spawn_seeds(seed, len(protocols))
    cells = [
        [
            (
                protocol,
                n,
                AttackSpec.fixed_budget(budget_per_process * n, float(a), n),
                malicious_fraction,
                runs,
                proto_seed,
                max_rounds,
                cache,
            )
            for a in alphas
        ]
        for protocol, proto_seed in zip(protocols, seeds)
    ]
    return _sweep_grid(report, protocols, cells, workers=workers)
