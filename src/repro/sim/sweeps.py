"""One-call experiment sweeps.

The paper's evaluation is built from three sweep shapes (rate, extent,
fixed budget).  These helpers run a sweep across protocols and return a
:class:`~repro.metrics.report.SeriesReport` ready to print, save, or
diff — the same machinery the benchmark harness uses, packaged for
interactive use::

    from repro.sim.sweeps import rate_sweep

    report = rate_sweep(
        ["drum", "push", "pull"], rates=[0, 32, 64, 128],
        n=120, alpha=0.1, runs=200, seed=1, workers=4,
    )
    print(report.to_json())

Grids are built by :mod:`repro.sweep.grid` and executed by the
:class:`~repro.sweep.orchestrator.SweepRunner` on the process-wide
persistent worker pool (:mod:`repro.sim.executor`): all cells' shard
tasks are flattened into one global work queue, so no cell waits on a
barrier behind another.  Every cell's seed is derived in the parent
before anything runs, so the report is byte-identical JSON for any
worker count and any task completion order (``workers`` defaults to
the ``REPRO_WORKERS`` env var).  ``store`` (a directory path or
:class:`~repro.sweep.store.ResultStore`) makes the sweep *resumable* —
completed cells persist content-addressed, a per-sweep manifest records
cell status, and re-running an interrupted sweep recomputes only
unfinished cells.  ``cache`` (the legacy spelling: an on-disk
:class:`~repro.sim.parallel.ResultCache` or its path) provides the same
persistence without a distinct argument — a store is layered over the
same directory.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.core.config import ProtocolKind
from repro.metrics.report import SeriesReport
from repro.sim.parallel import ResultCache, as_cache
from repro.util.rng import SeedLike

ProtocolName = Union[str, ProtocolKind]


def _resolve_store(cache, store):
    """Layer the sweep store over whichever persistence arg was given."""
    from repro.sweep.store import as_store

    store = as_store(store)
    if store is not None:
        return store
    cache = as_cache(cache)
    if cache is not None:
        from repro.sweep.store import ResultStore

        return ResultStore(cache.root)
    return None


def _sweep_grid(
    report: SeriesReport,
    protocols: Sequence[ProtocolName],
    cells: List[list],
    *,
    workers: Optional[int],
    cache=None,
    store=None,
    tracer=None,
    resume: bool = True,
    name: Optional[str] = None,
) -> SeriesReport:
    """Evaluate a protocol-major cell grid and fill ``report``'s series.

    Seeds inside ``cells`` were derived before this call, so the worker
    count only affects scheduling — never values.  The grid must be
    rectangular with one row per protocol: an empty protocol list or a
    ragged grid would otherwise mis-slice series silently, so both are
    rejected up front.
    """
    from repro.sweep.orchestrator import SweepRunner

    if not protocols:
        raise ValueError("protocols must be a non-empty sequence")
    if len(cells) != len(protocols):
        raise ValueError(
            f"cell grid has {len(cells)} rows for {len(protocols)} "
            f"protocols; expected one row per protocol"
        )
    widths = {len(row) for row in cells}
    if len(widths) != 1 or widths != {len(report.x_values)}:
        raise ValueError(
            f"ragged cell grid: row lengths {sorted(widths)} must all "
            f"equal the {len(report.x_values)}-point x-axis"
        )
    runner = SweepRunner(
        store=_resolve_store(cache, store), workers=workers, tracer=tracer
    )
    result = runner.run(
        name or report.name,
        [cell for row in cells for cell in row],
        resume=resume,
    )
    return result.fill_report(report)


def rate_sweep(
    protocols: Sequence[ProtocolName],
    rates: Sequence[float],
    *,
    n: int = 120,
    alpha: float = 0.1,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    store=None,
    tracer=None,
    resume: bool = True,
    name: Optional[str] = None,
) -> SeriesReport:
    """Propagation time vs the per-victim attack rate ``x`` (Figure 3a)."""
    from repro.sweep.grid import rate_grid

    report, cells = rate_grid(
        protocols,
        rates,
        n=n,
        alpha=alpha,
        malicious_fraction=malicious_fraction,
        runs=runs,
        seed=seed,
        max_rounds=max_rounds,
    )
    return _sweep_grid(
        report, protocols, cells, workers=workers, cache=cache,
        store=store, tracer=tracer, resume=resume, name=name,
    )


def extent_sweep(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    x: float = 128.0,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    store=None,
    tracer=None,
    resume: bool = True,
    name: Optional[str] = None,
) -> SeriesReport:
    """Propagation time vs the attack extent ``α`` (Figure 3b)."""
    from repro.sweep.grid import extent_grid

    report, cells = extent_grid(
        protocols,
        alphas,
        x=x,
        n=n,
        malicious_fraction=malicious_fraction,
        runs=runs,
        seed=seed,
        max_rounds=max_rounds,
    )
    return _sweep_grid(
        report, protocols, cells, workers=workers, cache=cache,
        store=store, tracer=tracer, resume=resume, name=name,
    )


def churn_sweep(
    protocols: Sequence[ProtocolName],
    churn_fractions: Sequence[float],
    *,
    x: float = 0.0,
    alpha: float = 0.1,
    n: int = 120,
    malicious_fraction: float = 0.1,
    join_round: int = 5,
    leave_round: int = 12,
    metric: str = "reliability",
    engine: str = "fast",
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    store=None,
    tracer=None,
    resume: bool = True,
    name: Optional[str] = None,
) -> SeriesReport:
    """Residual reliability vs churn fraction (the churn-storm figure).

    Each grid point subjects the group to a symmetric churn storm
    (``join@J:c; leave@L:c``), optionally on top of a DoS attack when
    ``x > 0`` — see :func:`repro.sweep.grid.churn_grid`.  ``metric``
    accepts the churn-aware ``join_latency`` / ``view_convergence`` in
    addition to the standard monte_carlo metrics.
    """
    from repro.sweep.grid import churn_grid

    report, cells = churn_grid(
        protocols,
        churn_fractions,
        x=x,
        alpha=alpha,
        n=n,
        malicious_fraction=malicious_fraction,
        join_round=join_round,
        leave_round=leave_round,
        metric=metric,
        engine=engine,
        runs=runs,
        seed=seed,
        max_rounds=max_rounds,
    )
    return _sweep_grid(
        report, protocols, cells, workers=workers, cache=cache,
        store=store, tracer=tracer, resume=resume, name=name,
    )


def budget_sweep(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    budget_per_process: float = 7.2,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    store=None,
    tracer=None,
    resume: bool = True,
    name: Optional[str] = None,
) -> SeriesReport:
    """Fixed-budget strategy sweep: ``B = budget_per_process · n``
    split over each extent in ``alphas`` (Figures 7–8)."""
    from repro.sweep.grid import budget_grid

    report, cells = budget_grid(
        protocols,
        alphas,
        budget_per_process=budget_per_process,
        n=n,
        malicious_fraction=malicious_fraction,
        runs=runs,
        seed=seed,
        max_rounds=max_rounds,
    )
    return _sweep_grid(
        report, protocols, cells, workers=workers, cache=cache,
        store=store, tracer=tracer, resume=resume, name=name,
    )
