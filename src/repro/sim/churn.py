"""Dynamic membership for the exact engine (Section 10, object level).

The :class:`ChurnDirector` attaches to a
:class:`~repro.sim.engine.RoundSimulator` when the scenario's fault plan
carries churn tokens.  It runs the *real* membership machinery — one
:class:`~repro.crypto.ca.CertificationAuthority`, one
:class:`~repro.membership.dynamic.DynamicMembership` (with its local
:class:`~repro.membership.failure_detector.FailureDetector`) per correct
process — and disseminates CA-certified join/leave/expel events over the
protocol under test: an event is known only to the processes it has
reached along *realized, accepted* gossip contacts (the
``GossipProcess.on_contact`` hook), so join propagation itself competes
with the DoS flood for the bounded channels.

Model choices, shared with the deterministic aggregate in
:mod:`repro.faults.schedule` (the vectorised engines consume the
aggregate directly):

- **Sponsorship.** A join (or rejoin) enters the gossip stream at the
  joiner itself — it starts gossiping the moment it joins, initial view
  courtesy of the CA.  A leave or expulsion is announced by the source
  process (id 0, always present), standing in for the departing member's
  farewell multicast / the expelling authority.
- **Probes.** Section 10's responsiveness tests are modelled as one
  out-of-band probe per (process, known member) per round, answered
  exactly when the target is present and neither crashed nor stalled.
  Probes feed ``FailureDetector.heard_from`` at round end; verdicts
  (``check``) land at the top of the next round, so a member silent for
  :data:`~repro.faults.schedule.FD_TIMEOUT_ROUNDS` full rounds drops out
  of gossip views and is rehabilitated one round after it speaks again —
  byte-for-byte the aggregate ``FaultSchedule.suspected_at`` sequence.
- **Id layout.** Victim/joiner id selection is the seedless
  ``FaultSchedule`` resolution, so the realized membership timeline is
  identical across the exact, fast, and mega engines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.crypto.ca import CertificationAuthority
from repro.crypto.keys import KeyPair
from repro.faults.schedule import FD_TIMEOUT_ROUNDS
from repro.membership.dynamic import DynamicMembership
from repro.membership.events import (
    ExpelEvent,
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
)


class _EventFlight:
    """One membership event spreading through the group."""

    __slots__ = ("event", "fired_round", "aware", "converged_round")

    def __init__(self, event: MembershipEvent, fired_round: int, aware: Set[int]):
        self.event = event
        self.fired_round = fired_round
        self.aware = aware  # pids whose membership db has applied it
        self.converged_round: Optional[int] = None


class ChurnDirector:
    """Drives membership churn inside one :class:`RoundSimulator`."""

    def __init__(self, simulator, seeds):
        scenario = simulator.scenario
        schedule = simulator._schedule
        self.sim = simulator
        self.scenario = scenario
        self.schedule = schedule
        self.total_n = schedule.total_n
        # Pre-draw every joiner's process seed in id order, so the
        # engine's seed consumption is a pure function of the plan —
        # never of when (or whether) a joiner actually spawns.
        self.joiner_seeds = {
            pid: seeds.next_seed()
            for pid in range(scenario.n, schedule.total_n)
        }

        self.ca = CertificationAuthority(
            validity_period=float(scenario.max_rounds + 1000)
        )
        # Certify the whole initial group before any process bootstraps,
        # so every initial view is complete and serials are id-ordered.
        self._keys: Dict[int, KeyPair] = {}
        for pid in range(scenario.n):
            proc = simulator.processes.get(pid)
            keys = proc.keys if proc is not None else KeyPair(owner=pid)
            self._keys[pid] = keys
            self.ca.authorize_join(pid, keys.public)

        self.membership: Dict[int, DynamicMembership] = {}
        for pid, proc in simulator.processes.items():
            mem = DynamicMembership(
                pid, self.ca.public_key, failure_timeout=float(FD_TIMEOUT_ROUNDS)
            )
            for member in self.ca.initial_view(exclude=pid):
                cert = self.ca.current_certificate(member)
                if cert is not None:
                    mem.install_certificate(cert, 0.0)
            self.membership[pid] = mem
            proc.on_contact = self._on_contact

        #: Joiner processes, spawned at their join round (id -> process).
        self.joiners: Dict[int, object] = {}
        self._joiner_seen_delivered: Set[int] = set()
        self._join_round: Dict[int, int] = {}
        #: Ids (initial or joiner) that left or were expelled.
        self.departed: Set[int] = set()
        self._flights: List[_EventFlight] = []
        self._prev_suspects: Set[int] = set()
        self._update_candidates()

    # -- engine surface ------------------------------------------------------

    @property
    def min_rounds(self) -> int:
        """Rounds the run must simulate even past threshold coverage, so
        every scheduled event fires and has time to disseminate."""
        return self.schedule.last_event_round() + self.schedule.awareness_lag(
            self.scenario.fan_out
        )

    def active_joiners(self) -> List[object]:
        """Joiner processes participating this round."""
        return [
            proc
            for pid, proc in sorted(self.joiners.items())
            if pid not in self.departed
        ]

    def begin_round(self, round_no: int) -> None:
        """Fire scheduled events, settle FD verdicts, refresh views."""
        tr = self.sim._tracer
        self.ca.advance_clock(float(round_no))
        for kind, ids in self.schedule.churn_events_at(round_no):
            if kind == "join":
                self._fire_join(ids, round_no, tr)
            elif kind == "rejoin":
                self._fire_rejoin(ids, round_no, tr)
            elif kind == "leave":
                self._fire_leave(ids, round_no, tr)
            elif kind == "expel":
                self._fire_expel(ids, round_no, tr)
        self._settle_failure_detectors(round_no, tr)
        self._update_candidates()
        self._check_convergence(round_no)

    def end_round(self, round_no: int) -> None:
        """Run the responsiveness probes for the round just executed."""
        now = float(round_no)
        crashed = self.schedule.crashed_at(round_no)
        stalled = self.schedule.stalled_at(round_no)
        present = self.schedule.present_at(round_no)
        for pid, mem in self.membership.items():
            if pid in self.departed or pid in crashed:
                continue
            fd = mem.failure_detector
            for member in mem.current_members(now):
                if (
                    member in present
                    and member not in crashed
                    and member not in stalled
                    and (member < self.scenario.n or member in self.joiners)
                    and member not in self.departed
                ):
                    fd.heard_from(member, now)

    def emit_joiner_deliveries(self, tr, round_no: int) -> None:
        """Emit delivered events for joiners that got M this round."""
        for pid, proc in sorted(self.joiners.items()):
            if proc.has_message and pid not in self._joiner_seen_delivered:
                self._joiner_seen_delivered.add(pid)
                tr.delivered(node=pid, via="joiner")

    def holder(self, pid: int) -> bool:
        """Whether any process — initial or joiner — holds M."""
        proc = self.sim.processes.get(pid)
        if proc is None:
            proc = self.joiners.get(pid)
        return bool(proc is not None and proc.has_message)

    def finalize(self, horizon: int) -> dict:
        """The RunResult ``churn`` metrics block."""
        reachable = self.schedule.reachable_ids(horizon)
        latencies = []
        for pid, proc in sorted(self.joiners.items()):
            if pid not in reachable:
                continue
            if proc.delivery_round is not None:
                latencies.append(float(proc.delivery_round))
            else:
                latencies.append(float(horizon - self._join_round[pid]))
        convergence = [
            float(
                (f.converged_round if f.converged_round is not None else horizon)
                - f.fired_round
            )
            for f in self._flights
        ]
        return {
            "timeline": [dict(r) for r in self.schedule.churn_timeline()],
            "join_latency": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "view_convergence": (
                sum(convergence) / len(convergence) if convergence else None
            ),
            "joiner_holders": sum(
                1 for p in self.joiners.values() if p.has_message
            ),
            "joiner_count": len(self.joiners),
        }

    # -- event firing --------------------------------------------------------

    def _fire_join(self, ids, round_no: int, tr) -> None:
        from repro.core import PROCESS_CLASSES

        scenario = self.scenario
        process_cls = PROCESS_CLASSES[scenario.protocol]
        config = scenario.protocol_config()
        members = list(range(self.total_n))
        for pid in sorted(ids):
            proc = process_cls(
                pid,
                members,
                self.sim.network,
                config=config,
                seed=self.joiner_seeds[pid],
                has_message=False,
            )
            self._keys[pid] = proc.keys
            proc.learn_keys(
                {p: k.public for p, k in self._keys.items() if p != pid}
            )
            proc.on_contact = self._on_contact
            mem = DynamicMembership(
                pid,
                self.ca.public_key,
                failure_timeout=float(FD_TIMEOUT_ROUNDS),
            )
            cert = mem.join(self.ca, proc.keys.public, float(round_no))
            self.membership[pid] = mem
            self.joiners[pid] = proc
            self._join_round[pid] = round_no
            # The joiner announces itself: awareness spreads from here
            # along accepted gossip contacts only.
            self._flights.append(
                _EventFlight(JoinEvent(pid, cert), round_no, {pid})
            )
        if tr is not None:
            tr.member_join(sorted(ids))

    def _fire_rejoin(self, ids, round_no: int, tr) -> None:
        for pid in sorted(ids):
            self.departed.discard(pid)
            keys = self._keys[pid]
            cert = self.ca.authorize_join(pid, keys.public)
            mem = self.membership.get(pid)
            if mem is not None:
                mem.install_certificate(cert, float(round_no))
            self._flights.append(
                _EventFlight(JoinEvent(pid, cert), round_no, {pid})
            )
        if tr is not None:
            tr.member_join(sorted(ids))

    def _fire_leave(self, ids, round_no: int, tr) -> None:
        for pid in sorted(ids):
            cert = self.ca.revoke(pid)
            self.departed.add(pid)
            if cert is not None:
                # Announced by the source (the departing member is gone).
                self._flights.append(
                    _EventFlight(LeaveEvent(pid, cert), round_no, {0})
                )
                source_mem = self.membership.get(0)
                if source_mem is not None:
                    source_mem.handle_event(
                        LeaveEvent(pid, cert), float(round_no)
                    )
        if tr is not None:
            tr.member_leave(sorted(ids))

    def _fire_expel(self, ids, round_no: int, tr) -> None:
        for pid in sorted(ids):
            cert = self.ca.revoke(pid)
            self.departed.add(pid)
            if cert is not None:
                self._flights.append(
                    _EventFlight(ExpelEvent(pid, cert), round_no, {0})
                )
                source_mem = self.membership.get(0)
                if source_mem is not None:
                    source_mem.handle_event(
                        ExpelEvent(pid, cert), float(round_no)
                    )
        if tr is not None:
            tr.member_expel(sorted(ids))

    # -- dissemination -------------------------------------------------------

    def _on_contact(self, observer: int, peer: int) -> None:
        """An accepted inbound message at ``observer`` from ``peer``:
        implicit heartbeat plus event piggybacking (whatever ``peer``
        knows rides along)."""
        mem = self.membership.get(observer)
        if mem is None:
            return
        now = float(self.sim.round_no)
        mem.failure_detector.heard_from(peer, now)
        for flight in self._flights:
            if observer not in flight.aware and peer in flight.aware:
                flight.aware.add(observer)
                applied_mem = self.membership.get(observer)
                if applied_mem is not None:
                    applied_mem.handle_event(flight.event, now)
                    if isinstance(flight.event, JoinEvent):
                        subject = flight.event.subject
                        proc = self.sim.processes.get(
                            observer
                        ) or self.joiners.get(observer)
                        key = self._keys.get(subject)
                        if proc is not None and key is not None:
                            proc.peer_keys[subject] = key.public

    # -- failure detection and views -----------------------------------------

    def _settle_failure_detectors(self, round_no: int, tr) -> None:
        now = float(round_no)
        suspects: Set[int] = set()
        for pid, mem in self.membership.items():
            if pid in self.departed:
                continue
            mem.failure_detector.check(now)
            suspects |= mem.failure_detector.suspected
        if tr is not None:
            newly = suspects - self._prev_suspects
            cleared = self._prev_suspects - suspects
            if newly:
                tr.suspect(newly)
            if cleared:
                tr.rehabilitate(cleared)
        self._prev_suspects = suspects

    def _update_candidates(self) -> None:
        """Refresh every active process's gossip target pool from its
        membership database (certified and not suspected)."""
        now = float(self.sim.round_no)
        for pid, mem in self.membership.items():
            if pid in self.departed:
                continue
            proc = self.sim.processes.get(pid) or self.joiners.get(pid)
            if proc is not None:
                proc.set_gossip_candidates(mem.gossip_candidates(now))

    def _check_convergence(self, round_no: int) -> None:
        """Record, per event, the round every active correct process's
        view reflects it."""
        crashed = self.schedule.crashed_at(round_no)
        correct_active = {
            pid
            for pid in self.membership
            if pid not in self.departed and pid not in crashed
        }
        for flight in self._flights:
            if flight.converged_round is None and correct_active <= flight.aware:
                flight.converged_round = round_no
