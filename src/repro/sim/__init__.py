"""Round-synchronised simulation of the gossip protocols.

Two engines share one :class:`~repro.sim.scenario.Scenario` description:

- :mod:`repro.sim.engine` — the *exact* object-level engine: real
  packets, ports, channels, sealed envelopes.  Used by tests and small
  studies; every mechanism in :mod:`repro.core` actually executes.
- :mod:`repro.sim.fast` — the numpy Monte-Carlo engine: identical round
  semantics expressed as vectorised sampling, stacking all runs of an
  experiment into array operations.  Used by the benchmark harness,
  where the paper averages 1000 runs per data point.

:func:`repro.sim.runner.monte_carlo` dispatches between them and
aggregates :class:`~repro.sim.results.MonteCarloResult` statistics.

Parallel execution runs on the process-wide persistent worker pool
(:mod:`repro.sim.executor`): workers are forked once and reused across
every ``monte_carlo`` call and sweep cell, with shard results returned
through shared memory instead of pickles.  :func:`close_pool` tears the
pool down explicitly (it is also registered atexit).
"""

from repro.sim.scenario import Scenario
from repro.sim.results import MonteCarloResult, RunResult
from repro.sim.engine import RoundSimulator, run_exact
from repro.sim.fast import run_fast
from repro.sim.mega import MegaResult, run_mega
from repro.sim.executor import (
    WorkerPool,
    close_pool,
    pool_override,
    stats as executor_stats,
)
from repro.sim.parallel import (
    ResultCache,
    default_workers,
    parallel_map,
    run_sharded,
)
from repro.sim.runner import default_runs, monte_carlo
from repro.sim.sweeps import (
    budget_sweep,
    churn_sweep,
    extent_sweep,
    rate_sweep,
)

__all__ = [
    "MegaResult",
    "MonteCarloResult",
    "ResultCache",
    "RoundSimulator",
    "RunResult",
    "Scenario",
    "WorkerPool",
    "budget_sweep",
    "churn_sweep",
    "close_pool",
    "default_runs",
    "default_workers",
    "executor_stats",
    "extent_sweep",
    "monte_carlo",
    "parallel_map",
    "pool_override",
    "rate_sweep",
    "run_exact",
    "run_fast",
    "run_mega",
    "run_sharded",
]
