"""Monte-Carlo experiment driver.

:func:`monte_carlo` runs a scenario many times and aggregates the
trajectories.  It defaults to the vectorised engine; ``engine="exact"``
runs the object-level simulator per run instead (slower, every protocol
mechanism really executes) and aggregates identically — tests use both
and compare.

Execution is sharded by :mod:`repro.sim.parallel`: ``workers`` (default:
the ``REPRO_WORKERS`` env var, else 1) spreads the shards over the
process-wide persistent pool (:mod:`repro.sim.executor` — forked once,
reused across calls, shard results returned through shared memory
rather than pickles; ``REPRO_START_METHOD`` overrides the fork/spawn
choice), and because shard layout and seed derivation depend only on
the run count and root seed, the result is bit-identical for every
worker count.  An optional on-disk
:class:`~repro.sim.parallel.ResultCache` memoises results by
``(scenario, runs, seed, engine, horizon)``.

The run count honours the ``REPRO_RUNS`` environment variable so the
benchmark harness can be dialled between quick smoke sweeps and
paper-strength 1000-run averages without code changes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.sim.parallel import (
    ResultCache,
    as_cache,
    check_workers,
    default_workers,
    run_sharded,
)
from repro.sim.results import MonteCarloResult
from repro.sim.scenario import Scenario
from repro.util.rng import SeedLike

#: Run count used when neither the caller nor REPRO_RUNS specifies one.
#: The paper averages 1000 runs per point; 100 keeps full benchmark
#: sweeps to minutes while holding mean propagation times to within a
#: few percent.
DEFAULT_RUNS = 100


def default_runs(fallback: int = DEFAULT_RUNS) -> int:
    """The experiment run count: ``REPRO_RUNS`` env var or ``fallback``."""
    raw = os.environ.get("REPRO_RUNS")
    if raw is None:
        return fallback
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_RUNS must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ValueError(f"REPRO_RUNS must be >= 1, got {value}")
    return value


def monte_carlo(
    scenario: Scenario,
    runs: Optional[int] = None,
    *,
    seed: SeedLike = None,
    engine: str = "fast",
    horizon: Optional[int] = None,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    tracer=None,
) -> MonteCarloResult:
    """Run ``scenario`` ``runs`` times and aggregate the trajectories.

    ``workers`` shards the runs over the persistent process pool
    (``None`` reads ``REPRO_WORKERS``, defaulting to serial); any
    worker count yields bit-identical results.  ``cache`` (a directory
    path or :class:`ResultCache`) memoises the result on disk when the
    seed has a stable identity — ``None``/generator seeds always
    recompute.
    ``tracer`` attaches a :class:`repro.obs.Tracer` to every run; traced
    experiments bypass the cache entirely (a cache hit would produce no
    events), and the merged event stream is worker-count invariant.
    """
    if runs is None:
        runs = default_runs()
    if engine not in ("fast", "exact", "mega"):
        raise ValueError(
            f"unknown engine {engine!r}; use 'fast', 'exact', or 'mega'"
        )
    workers = default_workers() if workers is None else check_workers(workers)

    cache = as_cache(cache) if tracer is None else None
    key = None
    if cache is not None:
        key = cache.key(
            scenario, runs, seed=seed, engine=engine, horizon=horizon
        )
        if key is not None:
            hit = cache.load(key, scenario)
            if hit is not None:
                return hit

    result = run_sharded(
        scenario, runs, seed=seed, engine=engine, horizon=horizon,
        workers=workers, tracer=tracer,
    )
    if key is not None:
        cache.store(key, result)
    return result
