"""Monte-Carlo experiment driver.

:func:`monte_carlo` runs a scenario many times and aggregates the
trajectories.  It defaults to the vectorised engine; ``engine="exact"``
runs the object-level simulator per run instead (slower, every protocol
mechanism really executes) and aggregates identically — tests use both
and compare.

The run count honours the ``REPRO_RUNS`` environment variable so the
benchmark harness can be dialled between quick smoke sweeps and
paper-strength 1000-run averages without code changes.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from repro.sim.engine import run_exact
from repro.sim.fast import run_fast
from repro.sim.results import MonteCarloResult
from repro.sim.scenario import Scenario
from repro.util import spawn_seeds
from repro.util.rng import SeedLike

#: Run count used when neither the caller nor REPRO_RUNS specifies one.
#: The paper averages 1000 runs per point; 100 keeps full benchmark
#: sweeps to minutes while holding mean propagation times to within a
#: few percent.
DEFAULT_RUNS = 100


def default_runs(fallback: int = DEFAULT_RUNS) -> int:
    """The experiment run count: ``REPRO_RUNS`` env var or ``fallback``."""
    raw = os.environ.get("REPRO_RUNS")
    if raw is None:
        return fallback
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_RUNS must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ValueError(f"REPRO_RUNS must be >= 1, got {value}")
    return value


def monte_carlo(
    scenario: Scenario,
    runs: Optional[int] = None,
    *,
    seed: SeedLike = None,
    engine: str = "fast",
    horizon: Optional[int] = None,
) -> MonteCarloResult:
    """Run ``scenario`` ``runs`` times and aggregate the trajectories."""
    if runs is None:
        runs = default_runs()
    if engine == "fast":
        return run_fast(scenario, runs, seed=seed, horizon=horizon)
    if engine != "exact":
        raise ValueError(f"unknown engine {engine!r}; use 'fast' or 'exact'")

    results = [
        run_exact(scenario, seed=s) for s in spawn_seeds(seed, runs)
    ]
    width = max(len(r.counts) for r in results)
    if horizon is not None:
        width = max(width, horizon + 1)

    def _pad(rows: List[np.ndarray]) -> np.ndarray:
        out = np.zeros((len(rows), width), dtype=np.int32)
        for i, row in enumerate(rows):
            out[i, : len(row)] = row
            out[i, len(row):] = row[-1]
        return out

    return MonteCarloResult(
        scenario=scenario,
        counts=_pad([r.counts for r in results]),
        counts_attacked=_pad([r.counts_attacked for r in results]),
        counts_non_attacked=_pad([r.counts_non_attacked for r in results]),
    )
