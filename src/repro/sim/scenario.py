"""Experiment scenarios.

A :class:`Scenario` pins down everything a simulation run needs: group
size and composition (correct / malicious / crashed), the protocol and
its fan-out, the link-loss rate, and the DoS attack (if any).  Process
ids are laid out deterministically — the layout is immaterial because
the protocols treat members symmetrically:

- id 0 is the source of the tracked message M (always attacked when
  there is an attack, per the paper);
- the highest ``b`` ids are the malicious group members;
- crashed processes occupy the ids just below the malicious block;
- the attacked set is the lowest ``α·n`` ids (all correct and alive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Union

from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolConfig, ProtocolKind
from repro.faults.plan import FaultPlan
from repro.util import check_fraction, check_probability, coerce_int


@dataclass(frozen=True)
class Scenario:
    """One simulated configuration of group, protocol, and attack.

    .. note:: Direct construction is the legacy entry point for
       *running* experiments; prefer :class:`repro.api.Experiment`,
       which builds this (and the other stacks' configs) from one
       description.  ``Scenario`` remains fully supported as the round
       engines' native config object.
    """

    protocol: Union[ProtocolKind, str] = ProtocolKind.DRUM
    n: int = 120
    fan_out: int = 4
    loss: float = 0.01
    #: Fraction of the n group members controlled by the adversary.
    #: They never send valid messages (gossip sent to them is wasted);
    #: the paper's attack simulations use 10 %.
    malicious_fraction: float = 0.0
    #: Fraction of the n group members that crashed before M was created
    #: (Fig 2b).  The source never crashes; crashes are undetected.
    crashed_fraction: float = 0.0
    #: Fraction of alive correct processes subject to *perturbations*
    #: (Section 2's other DoS form): in any round, a perturbed process
    #: is unresponsive — neither sending nor accepting — with
    #: probability :attr:`perturbation_prob`.
    perturbed_fraction: float = 0.0
    perturbation_prob: float = 0.0
    attack: Optional[AttackSpec] = None
    #: Fraction of correct live processes that must hold M (0.99 in the
    #: paper's simulations; 1.0 reproduces the closed-form analyses).
    threshold: float = 0.99
    max_rounds: int = 500
    #: Injected faults beyond the baseline model (see
    #: :mod:`repro.faults`): link degradation plus scheduled crash /
    #: partition / stall events.  Accepts a :class:`FaultPlan` or a CLI
    #: spec string (``"crash@5:0.1;partition@8-15:0.4"``); an empty plan
    #: normalises to None so faultless scenarios compare (and cache)
    #: identically however they were built.
    faults: Optional[Union[FaultPlan, str]] = None

    def __post_init__(self) -> None:
        if isinstance(self.protocol, str):
            object.__setattr__(self, "protocol", ProtocolKind(self.protocol))
        # Integer-like inputs (numpy scalars from np.logspace grids,
        # exact-valued floats) normalise to built-in ints so engines get
        # valid array shapes and the strict canonical cache-key encoder
        # sees the same token however the number was produced.
        object.__setattr__(self, "n", coerce_int("n", self.n))
        object.__setattr__(self, "fan_out", coerce_int("fan_out", self.fan_out))
        object.__setattr__(
            self, "max_rounds", coerce_int("max_rounds", self.max_rounds)
        )
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        if self.fan_out < 1:
            raise ValueError(f"fan_out must be >= 1, got {self.fan_out}")
        check_probability("loss", self.loss)
        check_fraction("malicious_fraction", self.malicious_fraction, allow_zero=True)
        check_fraction("crashed_fraction", self.crashed_fraction, allow_zero=True)
        check_fraction("perturbed_fraction", self.perturbed_fraction, allow_zero=True)
        check_probability("perturbation_prob", self.perturbation_prob)
        check_fraction("threshold", self.threshold)
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.num_malicious + self.num_crashed >= self.n:
            raise ValueError("no correct live processes left in the group")
        if self.attack is not None:
            victims = self.attack.victim_count(self.n)
            if victims < 1:
                raise ValueError(
                    f"attack extent α={self.attack.alpha} targets no process "
                    f"in a group of {self.n}"
                )
            if victims > self.num_alive_correct:
                raise ValueError(
                    f"attack targets {victims} processes but only "
                    f"{self.num_alive_correct} are correct and alive"
                )
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultPlan.parse(self.faults))
        if self.faults is not None:
            if not isinstance(self.faults, FaultPlan):
                raise TypeError(
                    f"faults must be a FaultPlan or spec string, got "
                    f"{self.faults!r}"
                )
            if self.faults.is_empty:
                object.__setattr__(self, "faults", None)
            else:
                self.faults.validate_for(
                    n=self.n,
                    num_alive_correct=self.num_alive_correct,
                    max_rounds=self.max_rounds,
                )
        if self.num_perturbed:
            if self.num_attacked + self.num_perturbed > self.num_alive_correct - 1:
                raise ValueError(
                    "attacked and perturbed sets overlap: "
                    f"{self.num_attacked} attacked + {self.num_perturbed} "
                    f"perturbed exceed the {self.num_alive_correct} alive "
                    "correct processes (minus the unperturbed source)"
                )

    # -- group composition -------------------------------------------------

    @property
    def num_malicious(self) -> int:
        """``b``: group members controlled by the adversary."""
        return int(round(self.malicious_fraction * self.n))

    @property
    def num_crashed(self) -> int:
        return int(round(self.crashed_fraction * self.n))

    @property
    def num_correct(self) -> int:
        """Correct group members (crashed ones included — they are not faulty
        by choice, but they cannot receive M, so thresholds use
        :attr:`num_alive_correct`)."""
        return self.n - self.num_malicious

    @property
    def num_alive_correct(self) -> int:
        """Correct processes that are up: the threshold denominator."""
        return self.n - self.num_malicious - self.num_crashed

    @property
    def num_attacked(self) -> int:
        return self.attack.victim_count(self.n) if self.attack else 0

    @property
    def num_perturbed(self) -> int:
        return int(round(self.perturbed_fraction * self.num_alive_correct))

    @property
    def source(self) -> int:
        """Process id of M's source."""
        return 0

    def malicious_ids(self) -> List[int]:
        return list(range(self.n - self.num_malicious, self.n))

    def crashed_ids(self) -> List[int]:
        hi = self.n - self.num_malicious
        return list(range(hi - self.num_crashed, hi))

    def attacked_ids(self) -> List[int]:
        """The attacked processes — lowest ids, so the source is included."""
        return list(range(self.num_attacked))

    def alive_correct_ids(self) -> List[int]:
        return list(range(self.num_alive_correct))

    def perturbed_ids(self) -> List[int]:
        """Perturbed processes — the highest alive correct ids, so the
        set is disjoint from the (lowest-id) attacked set and excludes
        the source."""
        hi = self.num_alive_correct
        return list(range(hi - self.num_perturbed, hi))

    def threshold_count(self) -> int:
        """How many alive correct processes must hold M."""
        return max(1, math.ceil(self.threshold * self.num_alive_correct - 1e-9))

    # -- derived config ------------------------------------------------------

    def protocol_config(self) -> ProtocolConfig:
        """The :class:`ProtocolConfig` this scenario runs."""
        return ProtocolConfig(kind=self.protocol, fan_out=self.fan_out)

    def fault_schedule(self):
        """The scenario's :class:`~repro.faults.schedule.FaultSchedule`,
        or None when no faults are injected.  Seedless and deterministic,
        so any stack (or metrics code after the fact) can rebuild it."""
        if self.faults is None:
            return None
        from repro.faults.schedule import FaultSchedule

        return FaultSchedule(
            self.faults, n=self.n, num_alive_correct=self.num_alive_correct
        )

    def with_(self, **changes) -> "Scenario":
        """Copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)

    # -- stable serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-able dict round-tripping through :meth:`from_dict`.

        Part of the versioned result schema (see
        :mod:`repro.api.results`): enums serialise to their string
        values, the attack to its ``{alpha, x}`` pair, and the fault
        plan to its spec string (``FaultPlan.describe()`` round-trips
        through ``FaultPlan.parse()``).
        """
        out = {
            "protocol": self.protocol.value,
            "n": self.n,
            "fan_out": self.fan_out,
            "loss": self.loss,
            "malicious_fraction": self.malicious_fraction,
            "crashed_fraction": self.crashed_fraction,
            "perturbed_fraction": self.perturbed_fraction,
            "perturbation_prob": self.perturbation_prob,
            "attack": None,
            "threshold": self.threshold,
            "max_rounds": self.max_rounds,
            "faults": None,
        }
        if self.attack is not None:
            out["attack"] = {"alpha": self.attack.alpha, "x": self.attack.x}
        if self.faults is not None:
            out["faults"] = self.faults.describe()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        kwargs = dict(data)
        attack = kwargs.get("attack")
        if attack is not None:
            kwargs["attack"] = AttackSpec(
                alpha=attack["alpha"], x=attack["x"]
            )
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line human description, used in logs and benchmark output."""
        parts = [
            f"{self.protocol.value}",
            f"n={self.n}",
            f"F={self.fan_out}",
            f"loss={self.loss}",
        ]
        if self.num_malicious:
            parts.append(f"malicious={self.num_malicious}")
        if self.num_crashed:
            parts.append(f"crashed={self.num_crashed}")
        if self.num_perturbed:
            parts.append(
                f"perturbed={self.num_perturbed}@p={self.perturbation_prob:g}"
            )
        if self.attack:
            parts.append(f"attack(α={self.attack.alpha:g}, x={self.attack.x:g})")
        if self.faults is not None:
            parts.append(f"faults[{self.faults.describe()}]")
        return " ".join(parts)
