"""Fault driving for the discrete-event cluster.

The round-based engines apply a :class:`~repro.faults.schedule.FaultSchedule`
synchronously; the discrete-event stack has continuous time and locally
timed, unsynchronised rounds, so the plan's round windows are anchored
to a *global* fault clock: fault round ``r`` spans
``[(r-1)·round_duration_ms, r·round_duration_ms)`` from time zero.  With
the cluster's default round duration that makes ``crash@5`` mean "goes
down five seconds in", which is exactly how the same plan reads on the
round engines.

:class:`DesFaultController` owns the event-loop side of a plan:

- crash / recover windows become scheduled ``node.stop()`` /
  ``node.start()`` calls (stopping unbinds every port, so in-flight
  packets to a crashed node dead-letter exactly like a dead machine;
  the node's buffer survives, as for a paused OS process);
- the environment's ``block_fn`` enforces partitions, stalls, and the
  crash windows' packet drops (belt and braces over the unbound ports,
  and the only mechanism the *live* runtime's transport wrapper shares);
- Gilbert–Elliott link loss and delay/jitter/reorder/duplicate shaping
  are installed on the environment as post-construction hooks, so the
  cluster's historical seed positions never move.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.gilbert import GilbertElliottModel
from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule
from repro.util.rng import SeedLike


class DesFaultController:
    """Applies a :class:`FaultPlan` to a built DES cluster."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        env,
        nodes: Dict[int, object],
        n: int,
        num_alive_correct: int,
        round_duration_ms: float,
        seed: SeedLike = None,
        tracer=None,
    ):
        if round_duration_ms <= 0:
            raise ValueError(
                f"round_duration_ms must be > 0, got {round_duration_ms}"
            )
        self.plan = plan
        self.env = env
        self.nodes = nodes
        # Observability: crash/heal transitions are emitted as they fire
        # on the event loop, stamped with ``t`` (sim ms).
        self.tracer = tracer
        self.round_duration_ms = float(round_duration_ms)
        self.schedule = FaultSchedule(
            plan, n=n, num_alive_correct=num_alive_correct
        )
        self._seed = seed
        self._installed = False

    # -- the global fault clock ---------------------------------------------

    def current_round(self) -> int:
        """The 1-based fault round at the environment's current time."""
        return int(self.env.now() // self.round_duration_ms) + 1

    def _round_start_ms(self, round_no: int) -> float:
        return (round_no - 1) * self.round_duration_ms

    # -- wiring --------------------------------------------------------------

    def install(self) -> None:
        """Install link hooks and schedule every crash/recover event.

        Call once, after the cluster is built and before the event loop
        runs.  Safe ordering note: events land at exact round
        boundaries, and the event loop fires them before any later
        timer, so a node crashing "at round 5" is down for all of it.
        """
        if self._installed:
            raise RuntimeError("fault controller already installed")
        self._installed = True

        link = self.plan.link
        if link is not None:
            if link.affects_loss:
                self.env.loss_model = GilbertElliottModel.from_link_faults(
                    link, seed=self._seed
                )
            if link.shapes_timing:
                self.env.link_faults = link

        if self.plan.events:
            self.env.block_fn = self._block

        for start, stop, ids in self.schedule._crash_windows:
            self.env.schedule(
                self._round_start_ms(start), self._crash_fn(ids)
            )
            if stop is not None:
                self.env.schedule(
                    self._round_start_ms(stop), self._recover_fn(ids)
                )

    def _block(self, src_node: int, dst_node: int) -> bool:
        return self.schedule.blocks(self.current_round(), src_node, dst_node)

    def _crash_fn(self, ids):
        def _crash() -> None:
            downed = []
            for pid in ids:
                node = self.nodes.get(pid)
                if node is not None and node.running:
                    node.stop()
                    downed.append(pid)
            if self.tracer is not None and downed:
                self.tracer.crash(downed, t=self.env.now())

        return _crash

    def _recover_fn(self, ids):
        def _recover() -> None:
            healed = []
            for pid in ids:
                node = self.nodes.get(pid)
                if node is not None and not node.running:
                    node.start()
                    healed.append(pid)
            if self.tracer is not None and healed:
                self.tracer.heal(healed, t=self.env.now())

        return _recover

    # -- metrics support -----------------------------------------------------

    def reachable_ids(self, horizon_ms: Optional[float] = None):
        """Reachable alive-correct ids at ``horizon_ms`` (default: now)."""
        now = self.env.now() if horizon_ms is None else horizon_ms
        horizon_round = max(1, int(now // self.round_duration_ms) + 1)
        return self.schedule.reachable_ids(horizon_round)
