"""Composable, seed-deterministic fault injection.

One :class:`FaultPlan` — link degradation (Gilbert–Elliott bursty loss,
delay/jitter, reordering, duplication) plus scheduled events (crash /
recover, partition / heal, sender stall) and membership churn (join /
leave / expel, resolved through the Section 10 dynamic-membership
machinery) — is consumed uniformly by the execution stacks: the
round-based engines, the discrete-event cluster, and the live threaded
runtime.  See :mod:`repro.faults.plan` for the model and the
determinism contract.
"""

from repro.faults.gilbert import GilbertElliottModel
from repro.faults.plan import (
    CrashNodes,
    ExpelNodes,
    FaultPlan,
    JoinNodes,
    LeaveNodes,
    LinkFaults,
    Partition,
    SenderStall,
)
from repro.faults.schedule import FD_TIMEOUT_ROUNDS, FaultSchedule

__all__ = [
    "CrashNodes",
    "ExpelNodes",
    "FD_TIMEOUT_ROUNDS",
    "FaultPlan",
    "FaultSchedule",
    "GilbertElliottModel",
    "JoinNodes",
    "LeaveNodes",
    "LinkFaults",
    "Partition",
    "SenderStall",
]
