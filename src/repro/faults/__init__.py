"""Composable, seed-deterministic fault injection.

One :class:`FaultPlan` — link degradation (Gilbert–Elliott bursty loss,
delay/jitter, reordering, duplication) plus scheduled events (crash /
recover, partition / heal, sender stall) — is consumed uniformly by all
three execution stacks: the round-based engines, the discrete-event
cluster, and the live threaded runtime.  See :mod:`repro.faults.plan`
for the model and the determinism contract.
"""

from repro.faults.gilbert import GilbertElliottModel
from repro.faults.plan import (
    CrashNodes,
    FaultPlan,
    LinkFaults,
    Partition,
    SenderStall,
)
from repro.faults.schedule import FaultSchedule

__all__ = [
    "CrashNodes",
    "FaultPlan",
    "FaultSchedule",
    "GilbertElliottModel",
    "LinkFaults",
    "Partition",
    "SenderStall",
]
