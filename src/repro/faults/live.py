"""Fault injection for the live threaded runtime.

The live stack has no event loop to hook, so a plan is applied with two
small pieces:

- :class:`FaultyTransport` wraps any :class:`~repro.net.transport.Transport`
  and applies the plan's *link* conditions (Gilbert–Elliott loss, delay
  and jitter, reordering, duplication) plus the packet-level effects of
  scheduled events (partition cuts, stall muting, traffic touching a
  crashed machine).  The fault round is derived from the wall clock:
  round ``r`` spans ``[(r-1)·round_duration_ms, r·round_duration_ms)``
  measured from :meth:`FaultyTransport.start_clock` — the same global
  fault clock the discrete-event stack uses.
- :class:`LiveFaultDriver` runs crash / recover windows from a small
  timer thread, calling ``node.stop()`` / ``node.start()`` at the round
  boundaries.  It takes the *nodes* mapping rather than the cluster
  object, so this module never imports the runtime package.

Both are deterministic given a seed only up to thread scheduling — live
runs are wall-clock programs, so the contract here is weaker than the
simulators': the *plan* (who crashes when, which links are cut) is
exactly reproducible, while packet-level interleaving is not.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.gilbert import GilbertElliottModel
from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule
from repro.net.address import Address
from repro.net.transport import Handler, Transport
from repro.util import derive_rng
from repro.util.rng import SeedLike


class FaultyTransport(Transport):
    """A transport decorator applying a :class:`FaultPlan` to every send."""

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        *,
        n: int,
        num_alive_correct: int,
        round_duration_ms: float,
        seed: SeedLike = None,
        tracer=None,
    ):
        super().__init__(loss=None)
        if round_duration_ms <= 0:
            raise ValueError(
                f"round_duration_ms must be > 0, got {round_duration_ms}"
            )
        self.inner = inner
        self.plan = plan
        # Observability: dropped events (partition cuts, bursty loss)
        # stamped with ``t`` = wall ms since the fault clock's origin.
        # Share a thread-safe tracer — sends arrive from node threads.
        self.tracer = tracer
        self.round_duration_ms = float(round_duration_ms)
        self.schedule = (
            FaultSchedule(plan, n=n, num_alive_correct=num_alive_correct)
            if plan.events
            else None
        )
        link = plan.link
        self._ge: Optional[GilbertElliottModel] = None
        self._link = None
        if link is not None:
            if link.affects_loss:
                self._ge = GilbertElliottModel.from_link_faults(
                    link, seed=seed
                )
            if link.shapes_timing:
                self._link = link
        self._rng = derive_rng(seed)
        self._rng_lock = threading.Lock()
        self._timer_lock = threading.Lock()
        self._timers: set = set()
        self._origin = time.monotonic()
        self._closed = False
        #: Counters for tests and reports.
        self.blocked = 0
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    # -- the global fault clock ---------------------------------------------

    def start_clock(self) -> None:
        """Anchor fault round 1 at the current instant (call on start)."""
        self._origin = time.monotonic()

    def current_round(self) -> int:
        elapsed_ms = (time.monotonic() - self._origin) * 1000.0
        return int(elapsed_ms // self.round_duration_ms) + 1

    def _elapsed_ms(self) -> float:
        return (time.monotonic() - self._origin) * 1000.0

    # -- Transport interface --------------------------------------------------

    def bind(self, addr: Address, handler: Handler) -> None:
        self.inner.bind(addr, handler)

    def unbind(self, addr: Address) -> None:
        self.inner.unbind(addr)

    def send(self, src: Address, dst: Address, payload: object) -> None:
        if self._closed:
            return
        if self.schedule is not None and self.schedule.blocks(
            self.current_round(), src.node, dst.node
        ):
            self.blocked += 1
            if self.tracer is not None:
                self.tracer.dropped(
                    "partition", node=dst.node, port=dst.port,
                    t=self._elapsed_ms(),
                )
            return
        if self._ge is not None and not self._ge.delivered():
            self.dropped += 1
            if self.tracer is not None:
                self.tracer.dropped(
                    "loss", node=dst.node, port=dst.port,
                    t=self._elapsed_ms(),
                )
            return
        link = self._link
        if link is None:
            self.inner.send(src, dst, payload)
            return
        with self._rng_lock:
            delay = link.delay_ms
            if link.jitter_ms > 0:
                delay += float(self._rng.uniform(-link.jitter_ms, link.jitter_ms))
            if (
                link.reorder_prob > 0
                and self._rng.random() < link.reorder_prob
            ):
                # Push the packet past the link's normal spread so a
                # later send can overtake it.
                span = link.delay_ms + link.jitter_ms + 1.0
                delay += span * float(self._rng.uniform(1.0, 2.0))
            duplicate = (
                link.duplicate_prob > 0
                and self._rng.random() < link.duplicate_prob
            )
            dup_delay = (
                link.delay_ms
                + float(self._rng.uniform(0, link.jitter_ms))
                if duplicate
                else 0.0
            )
        self._send_later(max(0.0, delay), src, dst, payload)
        if duplicate:
            self.duplicated += 1
            self._send_later(max(0.0, dup_delay), src, dst, payload)

    def _send_later(
        self, delay_ms: float, src: Address, dst: Address, payload: object
    ) -> None:
        if delay_ms <= 0:
            self.inner.send(src, dst, payload)
            return
        self.delayed += 1

        def _deliver() -> None:
            with self._timer_lock:
                self._timers.discard(timer)
                if self._closed:
                    return
            self.inner.send(src, dst, payload)

        timer = threading.Timer(delay_ms / 1000.0, _deliver)
        timer.daemon = True
        with self._timer_lock:
            if self._closed:
                return
            self._timers.add(timer)
        timer.start()

    def close(self) -> None:
        with self._timer_lock:
            self._closed = True
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        self.inner.close()


class LiveFaultDriver:
    """Runs a plan's crash / recover windows against live nodes.

    ``nodes`` maps pid → :class:`~repro.des.node.GossipNode` (or anything
    with ``running`` / ``start()`` / ``stop()``).  ``lock`` should be the
    cluster's callback lock so lifecycle flips serialise with protocol
    callbacks; ``on_error`` receives ``(pid, exception)`` for failures
    inside a flip instead of letting them kill the driver thread.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        nodes: Dict[int, object],
        *,
        round_duration_ms: float,
        lock: Optional[threading.RLock] = None,
        on_error: Optional[Callable[[int, BaseException], None]] = None,
        tracer=None,
    ):
        if round_duration_ms <= 0:
            raise ValueError(
                f"round_duration_ms must be > 0, got {round_duration_ms}"
            )
        self.schedule = schedule
        self.nodes = nodes
        # Observability: crash/heal events as the flips actually land,
        # stamped with ``t`` = wall ms since the driver's start.
        self.tracer = tracer
        self.round_duration_ms = float(round_duration_ms)
        self._lock = lock if lock is not None else threading.RLock()
        self._on_error = on_error
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # (at_ms, action, ids), sorted; crash at round r flips the nodes
        # down at the boundary into r.
        events: List[Tuple[float, str, frozenset]] = []
        for start, stop, ids in schedule._crash_windows:
            events.append(((start - 1) * self.round_duration_ms, "crash", ids))
            if stop is not None:
                events.append(
                    ((stop - 1) * self.round_duration_ms, "recover", ids)
                )
        self.events = sorted(events, key=lambda e: (e[0], e[1]))

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("fault driver already started")
        self._stop.clear()
        origin = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, args=(origin,), daemon=True
        )
        self._thread.start()

    def _run(self, origin: float) -> None:
        for at_ms, action, ids in self.events:
            wait_s = origin + at_ms / 1000.0 - time.monotonic()
            if self._stop.wait(max(0.0, wait_s)):
                return
            flipped = []
            for pid in sorted(ids):
                node = self.nodes.get(pid)
                if node is None:
                    continue
                try:
                    with self._lock:
                        if action == "crash" and node.running:
                            node.stop()
                            flipped.append(pid)
                        elif action == "recover" and not node.running:
                            node.start()
                            flipped.append(pid)
                except Exception as exc:  # pragma: no cover - defensive
                    if self._on_error is not None:
                        self._on_error(pid, exc)
            if self.tracer is not None and flipped:
                t = (time.monotonic() - origin) * 1000.0
                if action == "crash":
                    self.tracer.crash(flipped, t=t)
                else:
                    self.tracer.heal(flipped, t=t)

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._thread = None
