"""Deterministic resolution of a :class:`FaultPlan` against a group.

A :class:`FaultSchedule` turns the plan's fractions and round windows
into concrete process-id sets and a per-round packet-blocking predicate.
It is **seedless**: victim selection follows the repo's fixed id-layout
conventions (see :mod:`repro.sim.scenario` — protocols treat members
symmetrically, so the layout is immaterial), which is what lets every
execution stack resolve the same plan to the same behaviour and lets
metrics code recompute reachable sets from the scenario alone, without
replaying any randomness.

Layout conventions:

- Crash and stall victims are taken from the **top** of the alive
  correct id block (just below the scenario's crashed/malicious ids),
  never including the source (id 0).  Multiple crash events take
  consecutive descending blocks, so two crash events hit disjoint sets;
  stall events allocate the same way, independently.
- Partition side A is the **lowest** ``fraction·n`` ids, so the source
  is always in side A.
- Joiners take fresh ids **above** the initial group: ``n, n+1, ...``
  in consecutive ascending blocks, one block per join event in plan
  order, so ``total_n`` and every joiner id are a pure function of the
  plan.  Leave victims descend from the top of the alive correct block
  (an independent cursor, like stalls); expel victims descend from the
  top of the *full* group — the malicious block first.

Round convention (shared with :mod:`repro.faults.plan`): an event with
``at_round=r`` is in effect during the round that produces ``counts[r]``;
a ``start–stop`` window covers rounds ``start .. stop-1``.

The failure-detector aggregate (:meth:`FaultSchedule.suspected_at`)
models Section 10's local responsiveness probe deterministically: a
present member answers probes exactly when it is neither crashed nor
stalled, so every correct process's detector suspects the same set —
members silent for :data:`FD_TIMEOUT_ROUNDS` consecutive rounds — and
rehabilitates them one round after they speak again.  The aggregate is
seedless, which is what lets the exact, fast, and mega engines filter
gossip views through *identical* suspect sets.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.faults.plan import (
    CrashNodes,
    ExpelNodes,
    FaultPlan,
    JoinNodes,
    LeaveNodes,
    Partition,
    SenderStall,
)

#: Rounds of continuous silence before the local failure detector
#: suspects a peer (and stops drawing it into gossip views).  One round
#: of responsiveness rehabilitates the suspect.
FD_TIMEOUT_ROUNDS = 3


class FaultSchedule:
    """A plan resolved against a concrete group.

    ``n`` is the full group size and ``num_alive_correct`` the size of
    the alive correct id block (ids ``0 .. num_alive_correct-1``); both
    come straight from the :class:`~repro.sim.scenario.Scenario`.
    """

    __slots__ = (
        "plan",
        "n",
        "num_alive_correct",
        "total_n",
        "has_churn",
        "_crash_windows",
        "_stall_windows",
        "_partitions",
        "_join_events",
        "_leave_windows",
        "_expel_events",
        "_round_cache",
        "_churn_cache",
    )

    def __init__(self, plan: FaultPlan, *, n: int, num_alive_correct: int):
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"plan must be a FaultPlan, got {plan!r}")
        plan.validate_for(
            n=n, num_alive_correct=num_alive_correct, max_rounds=10**9
        )
        self.plan = plan
        self.n = n
        self.num_alive_correct = num_alive_correct

        # (start, stop_or_None, frozenset_of_ids) per crash event; stop
        # None means the crash is permanent.
        crash_windows: List[Tuple[int, Optional[int], FrozenSet[int]]] = []
        cursor = num_alive_correct  # ids [cursor-count, cursor) per event
        for event in plan.crashes:
            count = int(round(event.fraction * num_alive_correct))
            ids = frozenset(range(cursor - count, cursor))
            cursor -= count
            if 0 in ids:
                raise ValueError(
                    f"{event.describe()}: crash set reaches the source "
                    "(too many crash events for this group size)"
                )
            crash_windows.append((event.at_round, event.recover_round, ids))
        self._crash_windows = tuple(crash_windows)

        stall_windows: List[Tuple[int, int, FrozenSet[int]]] = []
        cursor = num_alive_correct
        for event in plan.stalls:
            count = int(round(event.fraction * num_alive_correct))
            ids = frozenset(range(cursor - count, cursor))
            cursor -= count
            if 0 in ids:
                raise ValueError(
                    f"{event.describe()}: stall set reaches the source"
                )
            stall_windows.append((event.start_round, event.stop_round, ids))
        self._stall_windows = tuple(stall_windows)

        partitions: List[Tuple[int, int, FrozenSet[int]]] = []
        for event in plan.partitions:
            side_a = frozenset(range(max(1, int(round(event.fraction * n)))))
            partitions.append((event.start_round, event.heal_round, side_a))
        self._partitions = tuple(partitions)

        # Joiners: one consecutive ascending id block per join event, in
        # plan order, starting at n.  total_n is the full id universe
        # (initial group plus every joiner that ever exists).
        join_events: List[Tuple[int, Optional[int], FrozenSet[int]]] = []
        next_id = n
        for event in plan.joins:
            count = int(round(event.fraction * n))
            ids = frozenset(range(next_id, next_id + count))
            next_id += count
            join_events.append((event.at_round, event.leave_round, ids))
        self._join_events = tuple(join_events)
        self.total_n = next_id

        # Leave victims: descending blocks from the top of the alive
        # correct ids, an independent cursor (same precedent as stalls —
        # leave sets may overlap crash/stall sets, never the source).
        leave_windows: List[Tuple[int, Optional[int], FrozenSet[int]]] = []
        cursor = num_alive_correct
        for event in plan.leaves:
            count = int(round(event.fraction * num_alive_correct))
            ids = frozenset(range(cursor - count, cursor))
            cursor -= count
            if 0 in ids:
                raise ValueError(
                    f"{event.describe()}: leave set reaches the source "
                    "(too many leave events for this group size)"
                )
            leave_windows.append((event.at_round, event.rejoin_round, ids))
        self._leave_windows = tuple(leave_windows)

        # Expel victims: descending blocks from the top of the *full*
        # group, so the malicious block is expelled first (the paper's
        # motivating use of expulsion).
        expel_events: List[Tuple[int, FrozenSet[int]]] = []
        cursor = n
        for event in plan.expels:
            count = int(round(event.fraction * n))
            ids = frozenset(range(cursor - count, cursor))
            cursor -= count
            if 0 in ids:
                raise ValueError(
                    f"{event.describe()}: expel set reaches the source "
                    "(too many expel events for this group size)"
                )
            expel_events.append((event.at_round, ids))
        self._expel_events = tuple(expel_events)

        self.has_churn = bool(join_events or leave_windows or expel_events)

        # blocks() runs on the per-packet hot path of the exact engine;
        # memoise the per-round state (crashed set, stalled set, side A).
        self._round_cache: dict = {}
        self._churn_cache: dict = {}

    # -- per-round state -----------------------------------------------------

    def _state(
        self, round_no: int
    ) -> Tuple[FrozenSet[int], FrozenSet[int], Optional[FrozenSet[int]]]:
        cached = self._round_cache.get(round_no)
        if cached is not None:
            return cached
        crashed: FrozenSet[int] = frozenset()
        for start, stop, ids in self._crash_windows:
            if start <= round_no and (stop is None or round_no < stop):
                crashed |= ids
        stalled: FrozenSet[int] = frozenset()
        for start, stop, ids in self._stall_windows:
            if start <= round_no < stop:
                stalled |= ids
        side_a: Optional[FrozenSet[int]] = None
        for start, stop, ids in self._partitions:
            if start <= round_no < stop:
                side_a = ids  # at most one partition active at a time
        state = (crashed, stalled, side_a)
        self._round_cache[round_no] = state
        return state

    def crashed_at(self, round_no: int) -> FrozenSet[int]:
        """Ids down during ``round_no``."""
        return self._state(round_no)[0]

    def stalled_at(self, round_no: int) -> FrozenSet[int]:
        """Ids sending nothing during ``round_no``."""
        return self._state(round_no)[1]

    def partition_at(self, round_no: int) -> Optional[FrozenSet[int]]:
        """Side-A ids of the active partition, or None when whole."""
        return self._state(round_no)[2]

    # -- packet blocking -----------------------------------------------------

    def blocks(self, round_no: int, src_node: int, dst_node: int) -> bool:
        """True when a ``src → dst`` packet is dropped during ``round_no``.

        Crash drops everything to or from the crashed machine (including
        attacker flood traffic — the machine is down, the flood is
        wasted).  A partition only cuts traffic between *group members*
        on opposite sides: attacker sources live outside the id space
        (``node >= n``) and their traffic reaches both sides, so a
        partition never shields victims from the DoS load.  A stall
        drops the staller's outbound packets only.
        """
        crashed, stalled, side_a = self._state(round_no)
        if crashed and (src_node in crashed or dst_node in crashed):
            return True
        if stalled and src_node in stalled:
            return True
        if (
            side_a is not None
            and 0 <= src_node < self.n
            and 0 <= dst_node < self.n
            and (src_node in side_a) != (dst_node in side_a)
        ):
            return True
        return False

    def blocks_fn(
        self, round_no: int
    ) -> Optional[Callable[[int, int], bool]]:
        """A ``(src, dst) -> bool`` drop predicate for ``round_no``, or
        None when no event is active (so hot paths pay nothing)."""
        crashed, stalled, side_a = self._state(round_no)
        if not crashed and not stalled and side_a is None:
            return None
        return lambda src, dst: self.blocks(round_no, src, dst)

    # -- derived facts for metrics ------------------------------------------

    def last_heal_round(self) -> int:
        """The latest partition heal round (0 when no partition)."""
        return max((stop for _, stop, _ in self._partitions), default=0)

    def last_event_round(self) -> int:
        return self.plan.last_event_round()

    def doomed_ids(self, horizon: int) -> FrozenSet[int]:
        """Ids whose ``has_message`` can never change again by
        ``horizon``: crashed with no in-horizon recovery, left with no
        in-horizon rejoin, or expelled."""
        doomed = set()
        for start, stop, ids in self._crash_windows:
            if start <= horizon and (stop is None or stop > horizon):
                doomed |= ids
        for start, stop, ids in self._leave_windows:
            if start <= horizon and (stop is None or stop > horizon):
                doomed |= ids
        for at, ids in self._expel_events:
            if at <= horizon:
                doomed |= ids
        return frozenset(doomed)

    def reachable_ids(self, horizon: int) -> FrozenSet[int]:
        """Correct ids that can possibly hold M by ``horizon``.

        Excludes processes crashed without an in-horizon recovery,
        departed members (left without rejoining, or expelled), and
        processes separated from the source's component by a partition
        that never heals within the horizon.  Joiners present at the
        horizon are included — they had at least one gossip round to
        catch up.  This is the residual-reliability denominator: the
        certified-and-alive set of the churn-aware metrics.
        """
        reachable = set(range(self.num_alive_correct))
        for at, stop, ids in self._join_events:
            if at <= horizon and (stop is None or stop > horizon):
                reachable |= ids
        reachable -= self.doomed_ids(horizon)
        for start, stop, side_a in self._partitions:
            if start <= horizon and stop > horizon:
                # Never heals in-horizon: count the source's side (A)
                # only.  (M that crossed the cut before ``start`` can
                # still spread inside side B — residual reliability is
                # deliberately coverage of the source's component.)
                # Joiners (ids >= n) live outside the partitioned id
                # space and stay with the source's side.
                reachable = {
                    i for i in reachable if i >= self.n or i in side_a
                }
        reachable.add(0)  # the source always holds its own message
        return frozenset(reachable)

    # -- membership churn ----------------------------------------------------

    def join_blocks(self) -> Tuple[Tuple[int, Optional[int], int, int], ...]:
        """Per join event: ``(at_round, leave_round, first_id, count)``.

        The contiguous-block form the vectorised engines index with.
        """
        blocks = []
        for at, stop, ids in self._join_events:
            first = min(ids)
            blocks.append((at, stop, first, len(ids)))
        return tuple(blocks)

    def present_at(self, round_no: int) -> FrozenSet[int]:
        """Group members during ``round_no``: the initial group plus
        joined joiners, minus departed (left/expelled) members.

        Crashed and stalled members are still *present* (their
        certificates remain valid); presence is the membership view a
        perfectly synchronised member would hold.
        """
        if not self.has_churn:
            return frozenset(range(self.n))
        key = ("present", round_no)
        cached = self._churn_cache.get(key)
        if cached is not None:
            return cached
        present = set(range(self.n))
        for at, stop, ids in self._join_events:
            if at <= round_no and (stop is None or round_no < stop):
                present |= ids
        for at, stop, ids in self._leave_windows:
            if at <= round_no and (stop is None or round_no < stop):
                present -= ids
        for at, ids in self._expel_events:
            if at <= round_no:
                present -= ids
        result = frozenset(present)
        self._churn_cache[key] = result
        return result

    def churn_events_at(
        self, round_no: int
    ) -> Tuple[Tuple[str, FrozenSet[int]], ...]:
        """Membership events firing at the start of ``round_no``, as
        ``(kind, ids)`` with kind in join/leave/rejoin/expel.  Join-block
        departures surface as ``leave`` too."""
        if not self.has_churn:
            return ()
        key = ("events", round_no)
        cached = self._churn_cache.get(key)
        if cached is not None:
            return cached
        fired: List[Tuple[str, FrozenSet[int]]] = []
        for at, stop, ids in self._join_events:
            if at == round_no:
                fired.append(("join", ids))
            if stop is not None and stop == round_no:
                fired.append(("leave", ids))
        for at, stop, ids in self._leave_windows:
            if at == round_no:
                fired.append(("leave", ids))
            if stop is not None and stop == round_no:
                fired.append(("rejoin", ids))
        for at, ids in self._expel_events:
            if at == round_no:
                fired.append(("expel", ids))
        result = tuple(fired)
        self._churn_cache[key] = result
        return result

    def suspected_at(self, round_no: int) -> FrozenSet[int]:
        """The aggregate failure-detector verdict during ``round_no``.

        A present member is suspected when it answered no probe for the
        :data:`FD_TIMEOUT_ROUNDS` rounds before ``round_no`` — i.e. it
        was crashed or stalled throughout — and is rehabilitated one
        round after it speaks again.  Deterministic and identical for
        every correct observer (the probe model: a live present member
        always answers).  Empty when the plan has no churn tokens, so
        fault-only plans keep their exact legacy behaviour.
        """
        if not self.has_churn:
            return frozenset()
        if round_no - FD_TIMEOUT_ROUNDS < 1:
            return frozenset()
        key = ("suspect", round_no)
        cached = self._churn_cache.get(key)
        if cached is not None:
            return cached
        window = range(round_no - FD_TIMEOUT_ROUNDS, round_no)
        silent: Optional[set] = None
        for w in window:
            unresponsive = set(self.crashed_at(w)) | set(self.stalled_at(w))
            silent = unresponsive if silent is None else (silent & unresponsive)
            if not silent:
                break
        suspects = frozenset((silent or set()) & self.present_at(round_no))
        self._churn_cache[key] = suspects
        return suspects

    def awareness_lag(self, fan_out: int) -> int:
        """Rounds for a membership event, multicast over the gossip
        protocol itself, to reach essentially the whole group: the
        epidemic doubling time ``ceil(log(total_n) / log(fan_out + 1))``
        plus one round of slack.  Used by the vectorised engines'
        deterministic awareness model (the exact engine disseminates
        events for real)."""
        population = max(2, self.total_n)
        growth = max(2, fan_out + 1)
        return int(math.ceil(math.log(population) / math.log(growth))) + 1

    def aware_targets_at(self, round_no: int, lag: int) -> FrozenSet[int]:
        """Ids the group at large draws into gossip views during
        ``round_no``, under an awareness lag of ``lag`` rounds: joiners
        become targets ``lag`` rounds after their join announcement,
        departures keep receiving (stale views) for ``lag`` rounds, and
        failure-detector suspects are filtered out."""
        if not self.has_churn:
            return frozenset(range(self.n))
        key = ("aware", round_no, lag)
        cached = self._churn_cache.get(key)
        if cached is not None:
            return cached
        ids = set(range(self.n))
        for at, stop, block in self._join_events:
            if at + lag <= round_no and (
                stop is None or round_no < stop + lag
            ):
                ids |= block
        for at, stop, block in self._leave_windows:
            if at + lag <= round_no and (
                stop is None or round_no < stop + lag
            ):
                ids -= block
        for at, block in self._expel_events:
            if at + lag <= round_no:
                ids -= block
        ids -= self.suspected_at(round_no)
        result = frozenset(ids)
        self._churn_cache[key] = result
        return result

    def churn_timeline(self) -> Tuple[Dict[str, object], ...]:
        """The resolved membership timeline as jsonable records, one per
        fired event, sorted by round: the cross-stack determinism
        witness (every engine must realise exactly this sequence)."""
        records: List[Dict[str, object]] = []
        for at, stop, ids in self._join_events:
            records.append(
                {"round": at, "kind": "join", "first_id": min(ids), "count": len(ids)}
            )
            if stop is not None:
                records.append(
                    {"round": stop, "kind": "leave", "first_id": min(ids), "count": len(ids)}
                )
        for at, stop, ids in self._leave_windows:
            records.append(
                {"round": at, "kind": "leave", "first_id": min(ids), "count": len(ids)}
            )
            if stop is not None:
                records.append(
                    {"round": stop, "kind": "rejoin", "first_id": min(ids), "count": len(ids)}
                )
        for at, ids in self._expel_events:
            records.append(
                {"round": at, "kind": "expel", "first_id": min(ids), "count": len(ids)}
            )
        records.sort(key=lambda r: (r["round"], str(r["kind"]), r["first_id"]))
        return tuple(records)
