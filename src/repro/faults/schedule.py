"""Deterministic resolution of a :class:`FaultPlan` against a group.

A :class:`FaultSchedule` turns the plan's fractions and round windows
into concrete process-id sets and a per-round packet-blocking predicate.
It is **seedless**: victim selection follows the repo's fixed id-layout
conventions (see :mod:`repro.sim.scenario` — protocols treat members
symmetrically, so the layout is immaterial), which is what lets every
execution stack resolve the same plan to the same behaviour and lets
metrics code recompute reachable sets from the scenario alone, without
replaying any randomness.

Layout conventions:

- Crash and stall victims are taken from the **top** of the alive
  correct id block (just below the scenario's crashed/malicious ids),
  never including the source (id 0).  Multiple crash events take
  consecutive descending blocks, so two crash events hit disjoint sets;
  stall events allocate the same way, independently.
- Partition side A is the **lowest** ``fraction·n`` ids, so the source
  is always in side A.

Round convention (shared with :mod:`repro.faults.plan`): an event with
``at_round=r`` is in effect during the round that produces ``counts[r]``;
a ``start–stop`` window covers rounds ``start .. stop-1``.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.faults.plan import CrashNodes, FaultPlan, Partition, SenderStall


class FaultSchedule:
    """A plan resolved against a concrete group.

    ``n`` is the full group size and ``num_alive_correct`` the size of
    the alive correct id block (ids ``0 .. num_alive_correct-1``); both
    come straight from the :class:`~repro.sim.scenario.Scenario`.
    """

    __slots__ = (
        "plan",
        "n",
        "num_alive_correct",
        "_crash_windows",
        "_stall_windows",
        "_partitions",
        "_round_cache",
    )

    def __init__(self, plan: FaultPlan, *, n: int, num_alive_correct: int):
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"plan must be a FaultPlan, got {plan!r}")
        plan.validate_for(
            n=n, num_alive_correct=num_alive_correct, max_rounds=10**9
        )
        self.plan = plan
        self.n = n
        self.num_alive_correct = num_alive_correct

        # (start, stop_or_None, frozenset_of_ids) per crash event; stop
        # None means the crash is permanent.
        crash_windows: List[Tuple[int, Optional[int], FrozenSet[int]]] = []
        cursor = num_alive_correct  # ids [cursor-count, cursor) per event
        for event in plan.crashes:
            count = int(round(event.fraction * num_alive_correct))
            ids = frozenset(range(cursor - count, cursor))
            cursor -= count
            if 0 in ids:
                raise ValueError(
                    f"{event.describe()}: crash set reaches the source "
                    "(too many crash events for this group size)"
                )
            crash_windows.append((event.at_round, event.recover_round, ids))
        self._crash_windows = tuple(crash_windows)

        stall_windows: List[Tuple[int, int, FrozenSet[int]]] = []
        cursor = num_alive_correct
        for event in plan.stalls:
            count = int(round(event.fraction * num_alive_correct))
            ids = frozenset(range(cursor - count, cursor))
            cursor -= count
            if 0 in ids:
                raise ValueError(
                    f"{event.describe()}: stall set reaches the source"
                )
            stall_windows.append((event.start_round, event.stop_round, ids))
        self._stall_windows = tuple(stall_windows)

        partitions: List[Tuple[int, int, FrozenSet[int]]] = []
        for event in plan.partitions:
            side_a = frozenset(range(max(1, int(round(event.fraction * n)))))
            partitions.append((event.start_round, event.heal_round, side_a))
        self._partitions = tuple(partitions)

        # blocks() runs on the per-packet hot path of the exact engine;
        # memoise the per-round state (crashed set, stalled set, side A).
        self._round_cache: dict = {}

    # -- per-round state -----------------------------------------------------

    def _state(
        self, round_no: int
    ) -> Tuple[FrozenSet[int], FrozenSet[int], Optional[FrozenSet[int]]]:
        cached = self._round_cache.get(round_no)
        if cached is not None:
            return cached
        crashed: FrozenSet[int] = frozenset()
        for start, stop, ids in self._crash_windows:
            if start <= round_no and (stop is None or round_no < stop):
                crashed |= ids
        stalled: FrozenSet[int] = frozenset()
        for start, stop, ids in self._stall_windows:
            if start <= round_no < stop:
                stalled |= ids
        side_a: Optional[FrozenSet[int]] = None
        for start, stop, ids in self._partitions:
            if start <= round_no < stop:
                side_a = ids  # at most one partition active at a time
        state = (crashed, stalled, side_a)
        self._round_cache[round_no] = state
        return state

    def crashed_at(self, round_no: int) -> FrozenSet[int]:
        """Ids down during ``round_no``."""
        return self._state(round_no)[0]

    def stalled_at(self, round_no: int) -> FrozenSet[int]:
        """Ids sending nothing during ``round_no``."""
        return self._state(round_no)[1]

    def partition_at(self, round_no: int) -> Optional[FrozenSet[int]]:
        """Side-A ids of the active partition, or None when whole."""
        return self._state(round_no)[2]

    # -- packet blocking -----------------------------------------------------

    def blocks(self, round_no: int, src_node: int, dst_node: int) -> bool:
        """True when a ``src → dst`` packet is dropped during ``round_no``.

        Crash drops everything to or from the crashed machine (including
        attacker flood traffic — the machine is down, the flood is
        wasted).  A partition only cuts traffic between *group members*
        on opposite sides: attacker sources live outside the id space
        (``node >= n``) and their traffic reaches both sides, so a
        partition never shields victims from the DoS load.  A stall
        drops the staller's outbound packets only.
        """
        crashed, stalled, side_a = self._state(round_no)
        if crashed and (src_node in crashed or dst_node in crashed):
            return True
        if stalled and src_node in stalled:
            return True
        if (
            side_a is not None
            and 0 <= src_node < self.n
            and 0 <= dst_node < self.n
            and (src_node in side_a) != (dst_node in side_a)
        ):
            return True
        return False

    def blocks_fn(
        self, round_no: int
    ) -> Optional[Callable[[int, int], bool]]:
        """A ``(src, dst) -> bool`` drop predicate for ``round_no``, or
        None when no event is active (so hot paths pay nothing)."""
        crashed, stalled, side_a = self._state(round_no)
        if not crashed and not stalled and side_a is None:
            return None
        return lambda src, dst: self.blocks(round_no, src, dst)

    # -- derived facts for metrics ------------------------------------------

    def last_heal_round(self) -> int:
        """The latest partition heal round (0 when no partition)."""
        return max((stop for _, stop, _ in self._partitions), default=0)

    def last_event_round(self) -> int:
        return self.plan.last_event_round()

    def doomed_ids(self, horizon: int) -> FrozenSet[int]:
        """Ids crashed with no recovery within ``horizon``: the only
        processes whose ``has_message`` can never change again once they
        are down."""
        doomed = set()
        for start, stop, ids in self._crash_windows:
            if start <= horizon and (stop is None or stop > horizon):
                doomed |= ids
        return frozenset(doomed)

    def reachable_ids(self, horizon: int) -> FrozenSet[int]:
        """Alive correct ids that can possibly hold M by ``horizon``.

        Excludes processes crashed without an in-horizon recovery and
        processes separated from the source's component by a partition
        that never heals within the horizon.  Everything else is
        reachable — the residual-reliability denominator.
        """
        reachable = set(range(self.num_alive_correct))
        reachable -= self.doomed_ids(horizon)
        for start, stop, side_a in self._partitions:
            if start <= horizon and stop > horizon:
                # Never heals in-horizon: count the source's side (A)
                # only.  (M that crossed the cut before ``start`` can
                # still spread inside side B — residual reliability is
                # deliberately coverage of the source's component.)
                reachable &= set(side_a)
        reachable.add(0)  # the source always holds its own message
        return frozenset(reachable)
