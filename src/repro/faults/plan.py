"""Declarative fault plans.

A :class:`FaultPlan` describes everything that can go wrong in a run
beyond the paper's baseline model (i.i.d. constant link loss and a DoS
flood): degraded links and scheduled whole-group events.  One plan is
consumed uniformly by all three execution stacks — the round-based
engines (:mod:`repro.sim.engine`, :mod:`repro.sim.fast`), the
discrete-event cluster (:mod:`repro.des.cluster`), and the live threaded
runtime (:mod:`repro.runtime.cluster`) — so a chaos scenario written
once runs everywhere.

Two ingredient kinds:

- :class:`LinkFaults` — stationary link conditions: Gilbert–Elliott
  bursty loss (a two-state Markov chain alternating between a good and a
  bad loss regime), plus extra per-packet delay/jitter, probabilistic
  reordering, and duplication.  When the loss parameters are set they
  *replace* the scenario's i.i.d. loss on every link.  Delay, jitter,
  reordering, and duplication only have meaning where packets have
  individual timing, i.e. the event-driven stacks (DES and live); the
  synchronous round engines apply the loss chain only.
- scheduled events — :class:`CrashNodes`, :class:`Partition`, and
  :class:`SenderStall`, all expressed in *round numbers* so the same
  plan is meaningful on every stack (the event-driven stacks convert
  rounds to milliseconds through their configured round duration).

Determinism contract: which processes an event hits follows fixed
id-layout conventions (resolved by
:class:`~repro.faults.schedule.FaultSchedule`), exactly like
:class:`~repro.sim.scenario.Scenario`'s malicious/crashed id blocks —
the protocols treat members symmetrically, so the layout is immaterial
and no randomness is needed to pick victims.  The only randomness a plan
introduces is the loss chain itself, seeded positionally from the run
seed; repeated seeded runs are identical, and runs without a plan
consume exactly the RNG stream they consumed before fault injection
existed (golden traces are unchanged for ``faults=None``).

Round-number convention: round ``r`` is the round that produces
``counts[r]`` in a :class:`~repro.sim.results.RunResult` trajectory
(rounds are 1-based; ``counts[0]`` is the pre-gossip state).  An event
``at_round=r`` is in effect *during* round ``r``; a window ``start–stop``
covers rounds ``start .. stop-1`` with normality restored in ``stop``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.util import check_fraction, check_non_negative, check_probability


@dataclass(frozen=True)
class LinkFaults:
    """Stationary link degradation applied to every link.

    The loss model is Gilbert–Elliott: a Markov chain with a *good*
    state (loss ``loss_good``) and a *bad* state (loss ``loss_bad``),
    switching good→bad with probability ``p_good_to_bad`` and bad→good
    with ``p_bad_to_good`` per transmission.  ``p_good_to_bad = 0``
    degenerates to i.i.d. loss at ``loss_good``.
    """

    loss_good: float = 0.0
    loss_bad: float = 0.0
    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 1.0
    #: Extra per-packet one-way delay and symmetric jitter (event-driven
    #: stacks only; the round engines have no per-packet timing).
    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    #: Probability that a packet is held back long enough to arrive
    #: after packets sent later (realised as a large extra delay draw).
    reorder_prob: float = 0.0
    #: Probability that a packet is delivered twice.
    duplicate_prob: float = 0.0

    def __post_init__(self) -> None:
        check_probability("loss_good", self.loss_good)
        check_probability("loss_bad", self.loss_bad)
        check_probability("p_good_to_bad", self.p_good_to_bad)
        check_probability("p_bad_to_good", self.p_bad_to_good)
        check_non_negative("delay_ms", self.delay_ms)
        check_non_negative("jitter_ms", self.jitter_ms)
        check_probability("reorder_prob", self.reorder_prob)
        check_probability("duplicate_prob", self.duplicate_prob)
        if self.p_good_to_bad > 0 and self.p_bad_to_good == 0:
            raise ValueError(
                "p_bad_to_good must be > 0 when p_good_to_bad is > 0 "
                "(the chain would be absorbed in the bad state; use "
                "loss_good for permanent degradation instead)"
            )

    @property
    def affects_loss(self) -> bool:
        """True when the plan carries its own loss model."""
        return self.loss_good > 0 or (
            self.p_good_to_bad > 0 and self.loss_bad > 0
        )

    @property
    def shapes_timing(self) -> bool:
        """True when delay/jitter/reorder/duplication are configured."""
        return (
            self.delay_ms > 0
            or self.jitter_ms > 0
            or self.reorder_prob > 0
            or self.duplicate_prob > 0
        )

    @property
    def stationary_loss(self) -> float:
        """Long-run mean loss probability of the chain."""
        if self.p_good_to_bad == 0:
            return self.loss_good
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def describe(self) -> str:
        """Spec-grammar clauses (``;``-joined), re-parseable by
        :meth:`FaultPlan.parse`."""
        parts = []
        if self.p_good_to_bad > 0:
            parts.append(
                f"gilbert:{self.loss_good:g},{self.loss_bad:g},"
                f"{self.p_good_to_bad:g},{self.p_bad_to_good:g}"
            )
        elif self.loss_good > 0:
            parts.append(f"loss:{self.loss_good:g}")
        if self.delay_ms > 0 or self.jitter_ms > 0:
            parts.append(f"delay:{self.delay_ms:g}~{self.jitter_ms:g}")
        if self.reorder_prob > 0:
            parts.append(f"reorder:{self.reorder_prob:g}")
        if self.duplicate_prob > 0:
            parts.append(f"dup:{self.duplicate_prob:g}")
        return ";".join(parts) if parts else "none"


def _check_round(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{name} must be an integer >= 1, got {value!r}")


@dataclass(frozen=True)
class CrashNodes:
    """A fraction of the alive correct processes (never the source)
    crash at the start of round ``at_round``.

    They neither send nor accept anything while down; with
    ``recover_round`` set they come back — state intact, as a paused
    process would — at the start of that round, otherwise they stay down
    for the rest of the run.
    """

    at_round: int
    fraction: float
    recover_round: Optional[int] = None

    def __post_init__(self) -> None:
        _check_round("at_round", self.at_round)
        check_fraction("fraction", self.fraction)
        if self.recover_round is not None:
            _check_round("recover_round", self.recover_round)
            if self.recover_round <= self.at_round:
                raise ValueError(
                    f"recover_round ({self.recover_round}) must be after "
                    f"at_round ({self.at_round})"
                )

    def describe(self) -> str:
        window = (
            f"@{self.at_round}"
            if self.recover_round is None
            else f"@{self.at_round}-{self.recover_round}"
        )
        return f"crash{window}:{self.fraction:g}"


@dataclass(frozen=True)
class Partition:
    """The group splits into two components for rounds
    ``start_round .. heal_round - 1``.

    Component A is the lowest ``fraction·n`` ids (it always contains the
    source, id 0); everything crossing the cut is dropped.  From
    ``heal_round`` on the network is whole again.
    """

    start_round: int
    heal_round: int
    fraction: float = 0.5

    def __post_init__(self) -> None:
        _check_round("start_round", self.start_round)
        _check_round("heal_round", self.heal_round)
        if self.heal_round <= self.start_round:
            raise ValueError(
                f"heal_round ({self.heal_round}) must be after "
                f"start_round ({self.start_round})"
            )
        check_fraction("fraction", self.fraction)
        if self.fraction >= 1.0:
            raise ValueError(
                "partition fraction must leave both sides non-empty "
                f"(got {self.fraction})"
            )

    def describe(self) -> str:
        return (
            f"partition@{self.start_round}-{self.heal_round}"
            f":{self.fraction:g}"
        )


@dataclass(frozen=True)
class SenderStall:
    """A fraction of the alive correct processes (never the source) send
    nothing during rounds ``start_round .. stop_round - 1``.

    Their uplink is mute — no gossip, no pull-replies, no push-replies —
    but they keep receiving and their state keeps updating: the
    *outbound* half of Section 2's perturbed-process behaviour,
    modelling a stalled send thread or a saturated uplink.
    """

    start_round: int
    stop_round: int
    fraction: float

    def __post_init__(self) -> None:
        _check_round("start_round", self.start_round)
        _check_round("stop_round", self.stop_round)
        if self.stop_round <= self.start_round:
            raise ValueError(
                f"stop_round ({self.stop_round}) must be after "
                f"start_round ({self.start_round})"
            )
        check_fraction("fraction", self.fraction)

    def describe(self) -> str:
        return (
            f"stall@{self.start_round}-{self.stop_round}:{self.fraction:g}"
        )


@dataclass(frozen=True)
class JoinNodes:
    """A fraction (of ``n``) of *new* processes join at round ``at_round``.

    Joiners take fresh ids above the initial group (``n, n+1, ...``,
    consecutive ascending blocks per event in plan order — seedless, so
    every stack resolves the same joiner ids).  Each joiner obtains a
    CA certificate and the CA's initial membership view; the join event
    is then disseminated over the multicast protocol under test, so join
    propagation itself is subject to any concurrent attack.  With
    ``leave_round`` set the same block logs out again at that round.
    """

    at_round: int
    fraction: float
    leave_round: Optional[int] = None

    def __post_init__(self) -> None:
        _check_round("at_round", self.at_round)
        check_fraction("fraction", self.fraction)
        if self.leave_round is not None:
            _check_round("leave_round", self.leave_round)
            if self.leave_round <= self.at_round:
                raise ValueError(
                    f"leave_round ({self.leave_round}) must be after "
                    f"at_round ({self.at_round})"
                )

    def describe(self) -> str:
        window = (
            f"@{self.at_round}"
            if self.leave_round is None
            else f"@{self.at_round}-{self.leave_round}"
        )
        return f"join{window}:{self.fraction:g}"


@dataclass(frozen=True)
class LeaveNodes:
    """A fraction of the alive correct processes (never the source) log
    out at round ``at_round``: the CA revokes their certificates and a
    leave event spreads over the multicast.

    With ``rejoin_round`` set the same block re-joins (fresh
    certificates) at that round; otherwise they are gone for good.
    Victims come from the top of the alive correct id block, descending,
    with an independent cursor from crash/stall events.
    """

    at_round: int
    fraction: float
    rejoin_round: Optional[int] = None

    def __post_init__(self) -> None:
        _check_round("at_round", self.at_round)
        check_fraction("fraction", self.fraction)
        if self.rejoin_round is not None:
            _check_round("rejoin_round", self.rejoin_round)
            if self.rejoin_round <= self.at_round:
                raise ValueError(
                    f"rejoin_round ({self.rejoin_round}) must be after "
                    f"at_round ({self.at_round})"
                )

    def describe(self) -> str:
        window = (
            f"@{self.at_round}"
            if self.rejoin_round is None
            else f"@{self.at_round}-{self.rejoin_round}"
        )
        return f"leave{window}:{self.fraction:g}"


@dataclass(frozen=True)
class ExpelNodes:
    """The CA expels a fraction (of ``n``) of the group at ``at_round``
    on suspicion of malbehaviour — permanently.

    Victims descend from the top of the *full* id block (the malicious
    block first, mirroring who a CA would actually expel), never the
    source.
    """

    at_round: int
    fraction: float

    def __post_init__(self) -> None:
        _check_round("at_round", self.at_round)
        check_fraction("fraction", self.fraction)

    def describe(self) -> str:
        return f"expel@{self.at_round}:{self.fraction:g}"


FaultEvent = Union[
    CrashNodes, Partition, SenderStall, JoinNodes, LeaveNodes, ExpelNodes
]

_EVENT_TYPES = (
    CrashNodes, Partition, SenderStall, JoinNodes, LeaveNodes, ExpelNodes
)


@dataclass(frozen=True)
class FaultPlan:
    """A composable description of everything that goes wrong in a run."""

    link: Optional[LinkFaults] = None
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.link is not None and not isinstance(self.link, LinkFaults):
            raise TypeError(
                f"link must be a LinkFaults or None, got {self.link!r}"
            )
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, _EVENT_TYPES):
                raise TypeError(f"unknown fault event {event!r}")
        object.__setattr__(self, "events", events)

    # -- introspection ------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.link is None and not self.events

    @property
    def partitions(self) -> Tuple[Partition, ...]:
        return tuple(e for e in self.events if isinstance(e, Partition))

    @property
    def crashes(self) -> Tuple[CrashNodes, ...]:
        return tuple(e for e in self.events if isinstance(e, CrashNodes))

    @property
    def stalls(self) -> Tuple[SenderStall, ...]:
        return tuple(e for e in self.events if isinstance(e, SenderStall))

    @property
    def joins(self) -> Tuple[JoinNodes, ...]:
        return tuple(e for e in self.events if isinstance(e, JoinNodes))

    @property
    def leaves(self) -> Tuple[LeaveNodes, ...]:
        return tuple(e for e in self.events if isinstance(e, LeaveNodes))

    @property
    def expels(self) -> Tuple[ExpelNodes, ...]:
        return tuple(e for e in self.events if isinstance(e, ExpelNodes))

    @property
    def has_churn(self) -> bool:
        """True when the plan changes group membership (join/leave/expel)."""
        return any(
            isinstance(e, (JoinNodes, LeaveNodes, ExpelNodes))
            for e in self.events
        )

    def last_event_round(self) -> int:
        """The last round at which any event changes state (0 if none)."""
        last = 0
        for event in self.events:
            if isinstance(event, CrashNodes):
                last = max(last, event.recover_round or event.at_round)
            elif isinstance(event, Partition):
                last = max(last, event.heal_round)
            elif isinstance(event, JoinNodes):
                last = max(last, event.leave_round or event.at_round)
            elif isinstance(event, LeaveNodes):
                last = max(last, event.rejoin_round or event.at_round)
            elif isinstance(event, ExpelNodes):
                last = max(last, event.at_round)
            else:
                last = max(last, event.stop_round)
        return last

    def with_(self, **changes) -> "FaultPlan":
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact one-line form, also accepted back by :meth:`parse`."""
        parts = [event.describe() for event in self.events]
        if self.link is not None and self.link.describe() != "none":
            parts.append(self.link.describe())
        return ";".join(parts) if parts else "none"

    def to_jsonable(self) -> dict:
        return {
            "link": None
            if self.link is None
            else {
                "loss_good": self.link.loss_good,
                "loss_bad": self.link.loss_bad,
                "p_good_to_bad": self.link.p_good_to_bad,
                "p_bad_to_good": self.link.p_bad_to_good,
                "delay_ms": self.link.delay_ms,
                "jitter_ms": self.link.jitter_ms,
                "reorder_prob": self.link.reorder_prob,
                "duplicate_prob": self.link.duplicate_prob,
            },
            "events": [event.describe() for event in self.events],
        }

    # -- CLI spec parsing ----------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the CLI fault spec mini-language.

        ``spec`` is a ``;``-separated list of clauses::

            crash@R:F           crash fraction F at round R, forever
            crash@R1-R2:F       ... recovering at round R2
            partition@R1-R2:F   split F/(1-F) for rounds R1..R2-1
            stall@R1-R2:F       fraction F stops sending for R1..R2-1
            join@R:F            F*n new processes join at round R
            join@R1-R2:F        ... leaving again at round R2
            leave@R:F           fraction F of members log out at R
            leave@R1-R2:F       ... re-joining at round R2
            expel@R:F           the CA expels F*n members at round R
            loss:P              i.i.d. loss P on every link
            gilbert:LG,LB,PGB,PBG   Gilbert–Elliott bursty loss
            delay:MS or delay:MS~JIT   per-packet delay (+- jitter)
            reorder:P           reordering probability
            dup:P               duplication probability

        Example: ``crash@5:0.1;partition@8-15:0.4;gilbert:0.01,0.3,0.05,0.25``
        """
        spec = spec.strip()
        if not spec or spec == "none":
            return cls()
        link: Optional[LinkFaults] = None
        events = []

        def merge(**kw) -> None:
            nonlocal link
            link = replace(link, **kw) if link is not None else LinkFaults(**kw)

        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            try:
                head, _, arg = clause.partition(":")
                head = head.strip()
                arg = arg.strip()
                if head.startswith("crash@"):
                    window = head[len("crash@"):]
                    if "-" in window:
                        start, stop = window.split("-", 1)
                        events.append(
                            CrashNodes(int(start), float(arg), int(stop))
                        )
                    else:
                        events.append(CrashNodes(int(window), float(arg)))
                elif head.startswith("partition@"):
                    start, stop = head[len("partition@"):].split("-", 1)
                    events.append(
                        Partition(int(start), int(stop), float(arg))
                    )
                elif head.startswith("stall@"):
                    start, stop = head[len("stall@"):].split("-", 1)
                    events.append(
                        SenderStall(int(start), int(stop), float(arg))
                    )
                elif head.startswith("join@"):
                    window = head[len("join@"):]
                    if "-" in window:
                        start, stop = window.split("-", 1)
                        events.append(
                            JoinNodes(int(start), float(arg), int(stop))
                        )
                    else:
                        events.append(JoinNodes(int(window), float(arg)))
                elif head.startswith("leave@"):
                    window = head[len("leave@"):]
                    if "-" in window:
                        start, stop = window.split("-", 1)
                        events.append(
                            LeaveNodes(int(start), float(arg), int(stop))
                        )
                    else:
                        events.append(LeaveNodes(int(window), float(arg)))
                elif head.startswith("expel@"):
                    events.append(
                        ExpelNodes(int(head[len("expel@"):]), float(arg))
                    )
                elif head == "loss":
                    merge(loss_good=float(arg))
                elif head == "gilbert":
                    lg, lb, pgb, pbg = (float(v) for v in arg.split(","))
                    merge(
                        loss_good=lg,
                        loss_bad=lb,
                        p_good_to_bad=pgb,
                        p_bad_to_good=pbg,
                    )
                elif head == "delay":
                    if "~" in arg:
                        delay, jitter = arg.split("~", 1)
                        merge(delay_ms=float(delay), jitter_ms=float(jitter))
                    else:
                        merge(delay_ms=float(arg))
                elif head == "reorder":
                    merge(reorder_prob=float(arg))
                elif head == "dup":
                    merge(duplicate_prob=float(arg))
                else:
                    raise ValueError(f"unknown fault clause {clause!r}")
            except ValueError as exc:
                if "unknown fault clause" in str(exc):
                    raise
                raise ValueError(
                    f"malformed fault clause {clause!r}: {exc}"
                ) from exc
        return cls(link=link, events=tuple(events))

    # -- validation against a concrete group ---------------------------------

    def validate_for(
        self, *, n: int, num_alive_correct: int, max_rounds: int
    ) -> None:
        """Check the plan is satisfiable for a concrete group.

        Raises ``ValueError`` when an event targets more processes than
        exist (the source is never crashed/stalled, so the eligible pool
        is ``num_alive_correct - 1``) or when a partition would leave a
        side empty.
        """
        pool = num_alive_correct - 1
        for event in self.events:
            if isinstance(event, CrashNodes):
                count = int(round(event.fraction * num_alive_correct))
                if count > pool:
                    raise ValueError(
                        f"{event.describe()} would crash {count} processes "
                        f"but only {pool} are eligible (the source never "
                        "crashes)"
                    )
            elif isinstance(event, SenderStall):
                count = int(round(event.fraction * num_alive_correct))
                if count > pool:
                    raise ValueError(
                        f"{event.describe()} would stall {count} processes "
                        f"but only {pool} are eligible"
                    )
            elif isinstance(event, Partition):
                side_a = int(round(event.fraction * n))
                if not 1 <= side_a <= n - 1:
                    raise ValueError(
                        f"{event.describe()} leaves one side of the "
                        f"partition empty in a group of {n}"
                    )
            elif isinstance(event, JoinNodes):
                count = int(round(event.fraction * n))
                if count < 1:
                    raise ValueError(
                        f"{event.describe()} adds no processes in a group "
                        f"of {n} (fraction rounds to zero); churn tokens "
                        "must resolve to at least one process"
                    )
            elif isinstance(event, LeaveNodes):
                count = int(round(event.fraction * num_alive_correct))
                if count < 1:
                    raise ValueError(
                        f"{event.describe()} removes no processes "
                        "(fraction rounds to zero); churn tokens must "
                        "resolve to at least one process"
                    )
                if count > pool:
                    raise ValueError(
                        f"{event.describe()} would log out {count} "
                        f"processes but only {pool} are eligible (the "
                        "source never leaves)"
                    )
            elif isinstance(event, ExpelNodes):
                count = int(round(event.fraction * n))
                if count < 1:
                    raise ValueError(
                        f"{event.describe()} expels no processes in a "
                        f"group of {n} (fraction rounds to zero); churn "
                        "tokens must resolve to at least one process"
                    )
                if count > n - 1:
                    raise ValueError(
                        f"{event.describe()} would expel {count} of {n} "
                        "processes; the source can never be expelled"
                    )
            if self.last_event_round() > max_rounds:
                # A plan reaching past the horizon is usually a typo'd
                # round number; partitions that never heal in-horizon
                # are expressed by a heal_round > max_rounds, which is
                # legitimate — so warn-by-validation only for events
                # that *start* out of range.
                pass
        for event in self.events:
            start = (
                event.at_round
                if isinstance(
                    event, (CrashNodes, JoinNodes, LeaveNodes, ExpelNodes)
                )
                else event.start_round
            )
            if start > max_rounds:
                raise ValueError(
                    f"{event.describe()} starts after max_rounds "
                    f"({max_rounds}) and would never fire"
                )
