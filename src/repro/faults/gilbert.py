"""Gilbert–Elliott bursty-loss model.

A two-state Markov chain alternating between a *good* state (loss
``loss_good``) and a *bad* state (loss ``loss_bad``).  The chain steps
once per transmission, so losses come in bursts whose mean length is
``1 / p_bad_to_good`` — the classic model for congested or fading links,
in contrast to the paper's i.i.d. :class:`~repro.net.link.LossModel`.

``GilbertElliottModel`` is a drop-in for ``LossModel``: same
``delivered()`` / ``surviving_count()`` / ``survival_mask()`` /
``reseed()`` surface and a ``loss_probability`` attribute (the
stationary mean, so code that *reports* the loss rate keeps working).
The exact round engine swaps it in via ``Network.use_loss_model`` and
the DES/live environments via their ``loss_model`` hook; the vectorised
engine keeps its own per-run chain (see ``sim/fast.py``).

Chain stepping mutates state, and the live runtime samples from many
sender threads, so all sampling runs under a small internal lock.  The
lock only exists on fault-injected runs — the golden no-fault hot path
never touches this class.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.util import check_probability
from repro.util.rng import SeedLike, derive_rng


class GilbertElliottModel:
    """Two-state Markov (Gilbert–Elliott) packet loss.

    State transitions happen per transmission *before* the loss draw, so
    a freshly constructed model in the good state can already lose its
    first packet after an (unlikely) immediate good→bad flip.
    """

    __slots__ = (
        "loss_good",
        "loss_bad",
        "p_good_to_bad",
        "p_bad_to_good",
        "loss_probability",
        "_bad",
        "_rng",
        "_lock",
    )

    def __init__(
        self,
        loss_good: float,
        loss_bad: float,
        p_good_to_bad: float,
        p_bad_to_good: float,
        *,
        seed: SeedLike = None,
    ):
        check_probability("loss_good", loss_good)
        check_probability("loss_bad", loss_bad)
        check_probability("p_good_to_bad", p_good_to_bad)
        check_probability("p_bad_to_good", p_bad_to_good)
        if p_good_to_bad > 0 and p_bad_to_good == 0:
            raise ValueError(
                "p_bad_to_good must be > 0 when p_good_to_bad is > 0"
            )
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        # Stationary mean loss, kept under the attribute name LossModel
        # consumers read for reporting.
        if p_good_to_bad == 0:
            pi_bad = 0.0
        else:
            pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good)
        self.loss_probability = (
            (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
        )
        self._bad = False
        self._rng = derive_rng(seed)
        self._lock = threading.Lock()

    @classmethod
    def from_link_faults(cls, link, *, seed: SeedLike = None):
        """Build from a :class:`repro.faults.plan.LinkFaults`."""
        return cls(
            link.loss_good,
            link.loss_bad,
            link.p_good_to_bad,
            link.p_bad_to_good,
            seed=seed,
        )

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator and reset the chain to the good state."""
        with self._lock:
            self._rng = derive_rng(seed)
            self._bad = False

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    def _step(self) -> float:
        """Advance the chain one transmission; return the current loss."""
        flip = self.p_bad_to_good if self._bad else self.p_good_to_bad
        if flip > 0 and self._rng.random() < flip:
            self._bad = not self._bad
        return self.loss_bad if self._bad else self.loss_good

    def delivered(self) -> bool:
        """Sample one transmission: True when the packet survives."""
        with self._lock:
            loss = self._step()
            if loss == 0.0:
                return True
            return self._rng.random() >= loss

    def surviving_count(self, sent: int) -> int:
        """Sample how many of ``sent`` consecutive packets survive.

        The chain steps once per packet, so a burst can swallow a whole
        flood batch — unlike the binomial thinning of i.i.d. loss.
        """
        if sent < 0:
            raise ValueError(f"sent must be >= 0, got {sent}")
        with self._lock:
            survived = 0
            for _ in range(sent):
                loss = self._step()
                if loss == 0.0 or self._rng.random() >= loss:
                    survived += 1
            return survived

    def survival_mask(self, count: int) -> np.ndarray:
        """Boolean mask over ``count`` consecutive transmissions."""
        mask = np.empty(count, dtype=bool)
        with self._lock:
            for i in range(count):
                loss = self._step()
                mask[i] = loss == 0.0 or self._rng.random() >= loss
        return mask
