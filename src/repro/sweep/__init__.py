"""Resumable experiment sweep orchestration.

The paper's evaluation — and every ROADMAP item stacked on top of it —
is a grid of Monte-Carlo cells: protocol × attack strength × group
size, hundreds to millions of points, each an independent seeded
experiment.  This package turns "re-run the whole grid and hope" into
an orchestrated, interruptible workload:

- :class:`~repro.sweep.grid.Cell` — one grid cell: a scenario (or DES
  cluster config), run count, positional seed, engine, and the metric
  to extract.  Grid builders (:func:`~repro.sweep.grid.rate_grid`,
  :func:`~repro.sweep.grid.extent_grid`,
  :func:`~repro.sweep.grid.budget_grid`) produce the paper's three
  sweep shapes; arbitrary cell lists work the same way.
- :class:`~repro.sweep.store.ResultStore` — a persistent
  content-addressed result store: the npz tier is the existing
  :class:`~repro.sim.parallel.ResultCache` (full
  ``MonteCarloResult`` arrays), the envelope tier stores the versioned
  JSON result envelope (``repro.result``) for DES/live-style results.
  Keys are canonical-token digests (:mod:`repro.util.canonical`) —
  stable across processes, never ``repr``-derived.
- :class:`~repro.sweep.orchestrator.SweepRunner` — evaluates a cell
  list cache-aside through the store, records a per-cell manifest, and
  resumes an interrupted sweep by recomputing *only* unfinished cells.
  Figure output is byte-identical for any worker count and for any
  interrupt/resume pattern.

``repro.sim.sweeps`` routes its grids through this package, the
``repro sweep`` CLI subcommand drives it from the shell, and the
benchmark harness (``benchmarks/_common.py``) shares one store across
figures so common points compute once, ever.
"""

from repro.sweep.grid import (
    Cell,
    budget_grid,
    churn_grid,
    extent_grid,
    rate_grid,
    scale_grid,
)
from repro.sweep.orchestrator import CellOutcome, SweepResult, SweepRunner
from repro.sweep.store import ResultStore, as_store

__all__ = [
    "Cell",
    "CellOutcome",
    "ResultStore",
    "SweepResult",
    "SweepRunner",
    "as_store",
    "budget_grid",
    "churn_grid",
    "extent_grid",
    "rate_grid",
    "scale_grid",
]
