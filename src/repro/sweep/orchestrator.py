"""The resumable sweep orchestrator.

:class:`SweepRunner` evaluates a list of :class:`~repro.sweep.grid.Cell`
grid points cache-aside through a :class:`~repro.sweep.store.ResultStore`
and records a **manifest** — per-cell status, key, and value — so an
interrupted sweep resumes by recomputing only unfinished cells:

1. The sweep's *identity* is the canonical-token digest of ``(name,
   cells)``.  A manifest whose identity matches is trusted; one that
   does not (the grid changed) is discarded and rebuilt.
2. Cells already ``done`` in the manifest are served from their
   recorded value without touching an engine or the store.
3. The parent consults the store for every remaining cell (an
   interrupted sweep's completed cells live there even when the
   manifest never saw them finish), recording hit/miss/corrupt per
   consultation.
4. The misses are flattened into **one global work queue** of (cell,
   shard) tasks on the process-wide persistent pool
   (:mod:`repro.sim.executor`): every cell's shard calls are submitted
   up front, cells complete out of order with no inter-cell barrier,
   and each cell is assembled, written to the store, and folded into
   the manifest the moment its last shard lands.  The manifest is
   checkpointed every :data:`CHUNK_FACTOR` × ``workers`` completions,
   bounding how much *finished* work a kill can hide from it.

Every cell's seed is fixed in the parent before anything executes, and
results are assembled positionally from the deterministic shard layout,
so the figure a sweep produces is byte-identical for any worker count,
completion order, and interrupt/resume pattern — resuming changes
*where* values come from (engine, store, or manifest), never what they
are.

Observability: with a ``tracer``, the runner emits ``sweep_start``,
per-cell ``cell_start`` / ``cache_hit|cache_miss|cache_corrupt`` (one
per store consultation) / ``cell_cache_hit`` / ``cell_finish``, and
``sweep_end`` events in cell-index order (a pure function of the cell
list — never of workers or completion order).  Cell *execution* itself
is untraced: engine-level tracing bypasses result caches by design
(see :func:`repro.sim.runner.monte_carlo`), and the orchestrator's job
is precisely to make cache hits the common case.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metrics.report import SeriesReport
from repro.sim.executor import get_pool, try_shared
from repro.sim.parallel import check_workers, default_workers, make_job
from repro.sweep.grid import Cell
from repro.sweep.store import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    ResultStore,
    as_store,
)
from repro.util.canonical import canonical_key

#: Manifest checkpoint cadence, as a multiple of the worker count: the
#: manifest is rewritten after every ``CHUNK_FACTOR * workers`` cell
#: completions (plus once before and once after the queue drains).
#: This bounds how much *finished* work a kill can hide from the
#: manifest (the store still has it; resume would re-load, not re-run).
#: Cadence never affects values — seeds are pre-derived per cell.
CHUNK_FACTOR = 4


def _metric_value(cell: Cell, result) -> float:
    """Extract ``cell.metric`` from a result object."""
    metric = cell.metric
    if metric == "mean_rounds":
        return float(result.mean_rounds())
    if metric == "std_rounds":
        return float(result.std_rounds())
    if metric == "reliability":
        return float(np.mean(result.residual_reliability()))
    if metric in ("join_latency", "view_convergence"):
        values = getattr(result, metric)()
        if values is None:
            return float("nan")  # churn-free cell: metric undefined
        values = np.asarray(values, dtype=np.float64)
        finite = values[~np.isnan(values)]
        return float(finite.mean()) if finite.size else float("nan")
    if metric == "delivery_ratio":
        return float(result.delivery_ratio())
    if metric == "throughput":
        return float(result.throughput().mean_msgs_per_sec)
    if metric == "mean_latency_ms":
        samples = [
            latency
            for values in result.latencies_by_process().values()
            for latency in values
        ]
        return float(np.mean(samples)) if samples else float("nan")
    raise ValueError(f"unknown metric {metric!r}")


def _des_cell_task(task):
    """Pool entry point for a measurement cell: one DES experiment."""
    from repro.des.cluster import run_throughput_experiment

    config, seed = task
    return run_throughput_experiment(config, seed=seed)


def _cell_runs(cell: Cell) -> Optional[int]:
    """The cell's Monte-Carlo run count with the REPRO_RUNS default
    applied (None for measurement cells)."""
    if cell.scenario is None:
        return None
    if cell.runs is not None:
        return cell.runs
    from repro.sim.runner import default_runs

    return default_runs()


class _CellJob:
    """One pending cell's calls, spliceable into the global work queue.

    Monte-Carlo cells expand to their deterministic shard calls
    (zero-copy through a :class:`~repro.sim.executor.SharedArrays`
    segment when the platform provides one, pickled shards otherwise);
    measurement cells are a single DES call.  ``deliver`` collects
    completions positionally, so assembly is independent of the order
    the pool finishes them in.
    """

    def __init__(self, cell: Cell, *, workers: int):
        self.cell = cell
        self.job = None
        self.shared = None
        if cell.scenario is not None:
            self.job = make_job(
                cell.scenario,
                _cell_runs(cell),
                seed=cell.seed,
                engine=cell.engine,
                horizon=cell.horizon,
                workers=workers,
            )
            self.shared = try_shared(self.job.layout())
            if self.shared is not None:
                self.calls = self.job.shm_calls(self.shared.descriptor)
            else:
                self.calls = self.job.pickle_calls(False)
        else:
            self.calls = [(_des_cell_task, (cell.config, cell.seed))]
        self._results: List = [None] * len(self.calls)
        self._missing = len(self.calls)

    def deliver(self, local_index: int, result) -> bool:
        """Record one call's completion; True when the cell is whole."""
        self._results[local_index] = result
        self._missing -= 1
        return self._missing == 0

    def result(self):
        """Assemble the completed cell's result (frees shared memory)."""
        if self.job is None:
            return self._results[0]
        if self.shared is not None:
            try:
                return self.job.assemble_shm(self.shared, self._results)
            finally:
                self.destroy()
        return self.job.assemble_pickled(self._results, None)

    def destroy(self) -> None:
        """Release the cell's shared-memory segment, if any (idempotent)."""
        shared, self.shared = self.shared, None
        if shared is not None:
            shared.destroy()


def sweep_identity(name: str, cells: Sequence[Cell]) -> Optional[str]:
    """The sweep's canonical identity, or None when any cell resists
    canonicalisation (a generator-seeded cell, say) — such sweeps still
    run, they just cannot carry a trustworthy manifest."""
    try:
        return canonical_key(["sweep", name, list(cells)])
    except TypeError:
        return None


@dataclass(frozen=True)
class CellOutcome:
    """One evaluated cell: where its value came from and what it was."""

    index: int
    cell: Cell
    value: float
    #: ``"engine"`` (computed this run), ``"store"`` (content-addressed
    #: hit), or ``"manifest"`` (trusted done entry from a prior run).
    source: str
    key: Optional[str]

    @property
    def cached(self) -> bool:
        return self.source != "engine"


@dataclass(frozen=True)
class SweepResult:
    """Everything a completed sweep produced."""

    name: str
    outcomes: Tuple[CellOutcome, ...]

    @property
    def values(self) -> List[float]:
        return [outcome.value for outcome in self.outcomes]

    @property
    def computed(self) -> int:
        """Cells that ran an engine this invocation."""
        return sum(1 for o in self.outcomes if o.source == "engine")

    @property
    def cache_hits(self) -> int:
        """Cells served from the store or the manifest."""
        return sum(1 for o in self.outcomes if o.cached)

    def series(self) -> Dict[str, List[float]]:
        """Values grouped by series label, in cell order."""
        out: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            out.setdefault(outcome.cell.series, []).append(outcome.value)
        return out

    def fill_report(self, report: SeriesReport) -> SeriesReport:
        """Attach every series to ``report`` (x-axes must align)."""
        for label, values in self.series().items():
            report.add_series(label, values)
        return report


class SweepRunner:
    """Evaluates cell grids through a store, manifest-checkpointed.

    ``store`` may be None (ephemeral sweep: no persistence, no
    manifest), a directory path, or a :class:`ResultStore`.  ``workers``
    follows the ``REPRO_WORKERS`` convention used everywhere else;
    parallel sweeps share the process-wide persistent pool.
    """

    def __init__(
        self,
        store: Union[None, str, Path, ResultStore] = None,
        *,
        workers: Optional[int] = None,
        tracer=None,
    ):
        self.store = as_store(store)
        self.workers = (
            default_workers() if workers is None else check_workers(workers)
        )
        self.tracer = tracer

    def run(
        self, name: str, cells: Sequence[Cell], *, resume: bool = True
    ) -> SweepResult:
        """Evaluate ``cells``, resuming from ``name``'s manifest.

        With ``resume=False`` the manifest is rebuilt from scratch —
        completed cells still short-circuit through the content-
        addressed store, so even a fresh manifest never re-burns
        compute the store already holds.
        """
        cells = [self._check_cell(i, c) for i, c in enumerate(cells)]
        if not cells:
            raise ValueError("a sweep needs at least one cell")
        identity = sweep_identity(name, cells)
        keys = [
            self.store.key_for(cell) if self.store is not None else None
            for cell in cells
        ]

        manifest_values = self._manifest_values(name, cells, identity, resume)
        pending = [i for i in range(len(cells)) if i not in manifest_values]
        self._checkpoint(name, cells, identity, keys, manifest_values, {})

        # Parent-side store consultation, in cell order.  Hits resolve
        # immediately; the statuses feed the cache_* event stream.
        computed: Dict[int, Tuple[float, bool]] = {}
        cache_status: Dict[int, str] = {}
        to_run: List[int] = []
        for i in pending:
            value, status = self._consult_store(cells[i], keys[i])
            if status is not None:
                cache_status[i] = status
            if value is not None:
                computed[i] = (value, True)
            else:
                to_run.append(i)

        if to_run:
            checkpoint_every = max(1, self.workers * CHUNK_FACTOR)
            run_args = (
                name, cells, identity, keys, manifest_values, computed,
                to_run, checkpoint_every,
            )
            if self.workers <= 1:
                self._run_serial(*run_args)
            else:
                self._run_queue(*run_args)
        self._checkpoint(name, cells, identity, keys, manifest_values, computed)

        outcomes = []
        for i, cell in enumerate(cells):
            if i in manifest_values:
                outcomes.append(
                    CellOutcome(i, cell, manifest_values[i], "manifest", keys[i])
                )
            else:
                value, from_store = computed[i]
                source = "store" if from_store else "engine"
                outcomes.append(CellOutcome(i, cell, value, source, keys[i]))
        result = SweepResult(name=name, outcomes=tuple(outcomes))
        self._emit_events(
            result, pending=len(pending), cache_status=cache_status
        )
        return result

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_cell(index: int, cell) -> Cell:
        if not isinstance(cell, Cell):
            raise TypeError(f"cells[{index}] is not a Cell: {cell!r}")
        return cell

    def _consult_store(
        self, cell: Cell, key: Optional[str]
    ) -> Tuple[Optional[float], Optional[str]]:
        """``(value, status)`` from the store; value None on miss/corrupt,
        status None when the cell was never consultable."""
        if self.store is None or key is None:
            return None, None
        if cell.scenario is not None:
            result, status = self.store.cache.load_ex(key, cell.scenario)
        else:
            result, status = self.store.load_envelope_ex(key)
        if result is None:
            return None, status
        return _metric_value(cell, result), status

    def _store_result(self, cell: Cell, key: Optional[str], result) -> None:
        """Cache-aside write of one computed cell (parent-side)."""
        if self.store is None or key is None:
            return
        if cell.scenario is not None:
            self.store.cache.store(key, result)
        else:
            self.store.store_envelope(key, result)

    def _compute_cell(self, cell: Cell, key: Optional[str]) -> float:
        """Serial in-process evaluation of one cell."""
        if cell.scenario is not None:
            from repro.sim.parallel import execute_job

            job = make_job(
                cell.scenario,
                _cell_runs(cell),
                seed=cell.seed,
                engine=cell.engine,
                horizon=cell.horizon,
                workers=1,
            )
            result = execute_job(job, workers=1)
        else:
            result = _des_cell_task((cell.config, cell.seed))
        self._store_result(cell, key, result)
        return _metric_value(cell, result)

    def _run_serial(
        self, name, cells, identity, keys, manifest_values, computed,
        to_run, checkpoint_every,
    ) -> None:
        done_since = 0
        for i in to_run:
            computed[i] = (self._compute_cell(cells[i], keys[i]), False)
            done_since += 1
            if done_since >= checkpoint_every:
                self._checkpoint(
                    name, cells, identity, keys, manifest_values, computed
                )
                done_since = 0

    def _run_queue(
        self, name, cells, identity, keys, manifest_values, computed,
        to_run, checkpoint_every,
    ) -> None:
        """Drain every pending cell through one global (cell, shard)
        work queue on the persistent pool — no inter-cell barrier."""
        pool = get_pool(self.workers)
        jobs: Dict[int, _CellJob] = {}
        calls: List = []
        owners: List[Tuple[int, int]] = []
        for i in to_run:
            job = _CellJob(cells[i], workers=self.workers)
            jobs[i] = job
            for local_index, call in enumerate(job.calls):
                owners.append((i, local_index))
                calls.append(call)
        done_since = 0
        try:
            for call_index, result in pool.imap_calls(calls):
                i, local_index = owners[call_index]
                if not jobs[i].deliver(local_index, result):
                    continue
                job = jobs.pop(i)
                cell_result = job.result()
                self._store_result(cells[i], keys[i], cell_result)
                computed[i] = (_metric_value(cells[i], cell_result), False)
                done_since += 1
                if done_since >= checkpoint_every:
                    self._checkpoint(
                        name, cells, identity, keys, manifest_values, computed
                    )
                    done_since = 0
        finally:
            # On an interrupt mid-queue, free every unfinished cell's
            # shared-memory segment before propagating.
            for job in jobs.values():
                job.destroy()

    def _manifest_values(
        self,
        name: str,
        cells: Sequence[Cell],
        identity: Optional[str],
        resume: bool,
    ) -> Dict[int, float]:
        """Trusted ``{index: value}`` entries from a prior manifest."""
        if not resume or self.store is None or identity is None:
            return {}
        manifest = self.store.load_manifest(name)
        if manifest is None or manifest.get("identity") != identity:
            return {}
        done: Dict[int, float] = {}
        for entry in manifest.get("cells", []):
            index = entry.get("index")
            if (
                entry.get("status") == "done"
                and isinstance(index, int)
                and 0 <= index < len(cells)
                and isinstance(entry.get("value"), (int, float))
            ):
                done[index] = float(entry["value"])
        return done

    def _checkpoint(
        self,
        name: str,
        cells: Sequence[Cell],
        identity: Optional[str],
        keys: Sequence[Optional[str]],
        manifest_values: Dict[int, float],
        computed: Dict[int, Tuple[float, bool]],
    ) -> None:
        """Write the manifest reflecting current per-cell status."""
        if self.store is None or identity is None:
            return
        entries = []
        for i, cell in enumerate(cells):
            if keys[i] is None:
                # No stable content-address (seedless or generator-
                # seeded cell): its value is not reproducible, so it is
                # recomputed every run and never recorded as done.
                status, value = "uncacheable", None
            elif i in manifest_values:
                status, value = "done", manifest_values[i]
            elif i in computed:
                status, value = "done", computed[i][0]
            else:
                status, value = "pending", None
            entries.append(
                {
                    "index": i,
                    "series": cell.series,
                    "x": cell.x,
                    "kind": cell.kind,
                    "metric": cell.metric,
                    "key": keys[i],
                    "status": status,
                    "value": value,
                }
            )
        self.store.store_manifest(
            name,
            {
                "schema": MANIFEST_SCHEMA,
                "version": MANIFEST_VERSION,
                "name": name,
                "identity": identity,
                "cells": entries,
            },
        )

    def _emit_events(
        self,
        result: SweepResult,
        *,
        pending: int,
        cache_status: Dict[int, str],
    ) -> None:
        """Re-emit the sweep lifecycle in deterministic cell order."""
        tracer = self.tracer
        if tracer is None:
            return
        tracer.sweep_start(
            name=result.name, cells=len(result.outcomes), pending=pending
        )
        for outcome in result.outcomes:
            tracer.cell_start(
                index=outcome.index,
                series=outcome.cell.series,
                x=outcome.cell.x,
            )
            status = cache_status.get(outcome.index)
            if status is not None:
                tier = (
                    "npz" if outcome.cell.scenario is not None else "envelope"
                )
                if status == "hit":
                    tracer.cache_hit(key=outcome.key, tier=tier)
                elif status == "corrupt":
                    tracer.cache_corrupt(key=outcome.key, tier=tier)
                else:
                    tracer.cache_miss(key=outcome.key, tier=tier)
            if outcome.cached:
                tracer.cell_cache_hit(
                    index=outcome.index, source=outcome.source
                )
            tracer.cell_finish(
                index=outcome.index,
                value=outcome.value,
                cached=outcome.cached,
            )
        tracer.sweep_end(
            computed=result.computed, cache_hits=result.cache_hits
        )
