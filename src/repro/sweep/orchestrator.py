"""The resumable sweep orchestrator.

:class:`SweepRunner` evaluates a list of :class:`~repro.sweep.grid.Cell`
grid points cache-aside through a :class:`~repro.sweep.store.ResultStore`
and records a **manifest** — per-cell status, key, and value — so an
interrupted sweep resumes by recomputing only unfinished cells:

1. The sweep's *identity* is the canonical-token digest of ``(name,
   cells)``.  A manifest whose identity matches is trusted; one that
   does not (the grid changed) is discarded and rebuilt.
2. Cells already ``done`` in the manifest are served from their
   recorded value without touching an engine or the store.
3. Remaining cells run over the process pool in deterministic chunks;
   each worker first consults the store (an interrupted sweep's
   completed cells live there even when the manifest never saw them
   finish — store writes happen cell-by-cell *in the worker*), and the
   manifest is checkpointed after every chunk.

Every cell's seed is fixed in the parent before anything executes, so
the figure a sweep produces is byte-identical for any worker count and
for any interrupt/resume pattern — resuming changes *where* values come
from (engine, store, or manifest), never what they are.

Observability: with a ``tracer``, the runner emits ``sweep_start``,
per-cell ``cell_start`` / ``cell_cache_hit`` / ``cell_finish``, and
``sweep_end`` events in cell-index order (a pure function of the cell
list — never of workers or completion order).  Cell *execution* itself
is untraced: engine-level tracing bypasses result caches by design
(see :func:`repro.sim.runner.monte_carlo`), and the orchestrator's job
is precisely to make cache hits the common case.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metrics.report import SeriesReport
from repro.sim.parallel import check_workers, default_workers, parallel_map
from repro.sweep.grid import Cell
from repro.sweep.store import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    ResultStore,
    as_store,
)
from repro.util.canonical import canonical_key

#: Cells per scheduling chunk, as a multiple of the worker count.  The
#: manifest checkpoints after every chunk, so this bounds how much
#: *finished* work a kill can hide from the manifest (the store still
#: has it; resume would re-load, not re-run).  Chunking never affects
#: values — seeds are pre-derived per cell.
CHUNK_FACTOR = 4


def _metric_value(cell: Cell, result) -> float:
    """Extract ``cell.metric`` from a result object."""
    metric = cell.metric
    if metric == "mean_rounds":
        return float(result.mean_rounds())
    if metric == "std_rounds":
        return float(result.std_rounds())
    if metric == "reliability":
        return float(np.mean(result.residual_reliability()))
    if metric == "delivery_ratio":
        return float(result.delivery_ratio())
    if metric == "throughput":
        return float(result.throughput().mean_msgs_per_sec)
    if metric == "mean_latency_ms":
        samples = [
            latency
            for values in result.latencies_by_process().values()
            for latency in values
        ]
        return float(np.mean(samples)) if samples else float("nan")
    raise ValueError(f"unknown metric {metric!r}")


def _evaluate_cell(task) -> Tuple[float, bool]:
    """Worker entry point: ``(value, served_from_store)`` for one cell.

    Runs on the pool, so the store consultation and the cache-aside
    write both happen *here* — a killed sweep keeps every completed
    cell's result on disk even though the parent never saw it finish.
    Cells run single-process (``workers=1``) so a parallel sweep never
    nests pools.
    """
    cell, store = task
    key = store.key_for(cell) if store is not None else None
    if cell.scenario is not None:
        if key is not None:
            hit = store.cache.load(key, cell.scenario)
            if hit is not None:
                return _metric_value(cell, hit), True
        from repro.sim.runner import monte_carlo

        result = monte_carlo(
            cell.scenario,
            runs=cell.runs,
            seed=cell.seed,
            engine=cell.engine,
            horizon=cell.horizon,
            workers=1,
            cache=store.cache if store is not None else None,
        )
        return _metric_value(cell, result), False
    if key is not None:
        hit = store.load_envelope(key)
        if hit is not None:
            return _metric_value(cell, hit), True
    from repro.des.cluster import run_throughput_experiment

    result = run_throughput_experiment(cell.config, seed=cell.seed)
    if store is not None and key is not None:
        store.store_envelope(key, result)
    return _metric_value(cell, result), False


def sweep_identity(name: str, cells: Sequence[Cell]) -> Optional[str]:
    """The sweep's canonical identity, or None when any cell resists
    canonicalisation (a generator-seeded cell, say) — such sweeps still
    run, they just cannot carry a trustworthy manifest."""
    try:
        return canonical_key(["sweep", name, list(cells)])
    except TypeError:
        return None


@dataclass(frozen=True)
class CellOutcome:
    """One evaluated cell: where its value came from and what it was."""

    index: int
    cell: Cell
    value: float
    #: ``"engine"`` (computed this run), ``"store"`` (content-addressed
    #: hit), or ``"manifest"`` (trusted done entry from a prior run).
    source: str
    key: Optional[str]

    @property
    def cached(self) -> bool:
        return self.source != "engine"


@dataclass(frozen=True)
class SweepResult:
    """Everything a completed sweep produced."""

    name: str
    outcomes: Tuple[CellOutcome, ...]

    @property
    def values(self) -> List[float]:
        return [outcome.value for outcome in self.outcomes]

    @property
    def computed(self) -> int:
        """Cells that ran an engine this invocation."""
        return sum(1 for o in self.outcomes if o.source == "engine")

    @property
    def cache_hits(self) -> int:
        """Cells served from the store or the manifest."""
        return sum(1 for o in self.outcomes if o.cached)

    def series(self) -> Dict[str, List[float]]:
        """Values grouped by series label, in cell order."""
        out: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            out.setdefault(outcome.cell.series, []).append(outcome.value)
        return out

    def fill_report(self, report: SeriesReport) -> SeriesReport:
        """Attach every series to ``report`` (x-axes must align)."""
        for label, values in self.series().items():
            report.add_series(label, values)
        return report


class SweepRunner:
    """Evaluates cell grids through a store, manifest-checkpointed.

    ``store`` may be None (ephemeral sweep: no persistence, no
    manifest), a directory path, or a :class:`ResultStore`.  ``workers``
    follows the ``REPRO_WORKERS`` convention used everywhere else.
    """

    def __init__(
        self,
        store: Union[None, str, Path, ResultStore] = None,
        *,
        workers: Optional[int] = None,
        tracer=None,
    ):
        self.store = as_store(store)
        self.workers = (
            default_workers() if workers is None else check_workers(workers)
        )
        self.tracer = tracer

    def run(
        self, name: str, cells: Sequence[Cell], *, resume: bool = True
    ) -> SweepResult:
        """Evaluate ``cells``, resuming from ``name``'s manifest.

        With ``resume=False`` the manifest is rebuilt from scratch —
        completed cells still short-circuit through the content-
        addressed store, so even a fresh manifest never re-burns
        compute the store already holds.
        """
        cells = [self._check_cell(i, c) for i, c in enumerate(cells)]
        if not cells:
            raise ValueError("a sweep needs at least one cell")
        identity = sweep_identity(name, cells)
        keys = [
            self.store.key_for(cell) if self.store is not None else None
            for cell in cells
        ]

        manifest_values = self._manifest_values(name, cells, identity, resume)
        pending = [i for i in range(len(cells)) if i not in manifest_values]
        self._checkpoint(name, cells, identity, keys, manifest_values, {})

        computed: Dict[int, Tuple[float, bool]] = {}
        chunk = max(1, self.workers * CHUNK_FACTOR)
        for start in range(0, len(pending), chunk):
            batch = pending[start:start + chunk]
            results = parallel_map(
                _evaluate_cell,
                [(cells[i], self.store) for i in batch],
                workers=self.workers,
            )
            computed.update(dict(zip(batch, results)))
            self._checkpoint(
                name, cells, identity, keys, manifest_values, computed
            )

        outcomes = []
        for i, cell in enumerate(cells):
            if i in manifest_values:
                outcomes.append(
                    CellOutcome(i, cell, manifest_values[i], "manifest", keys[i])
                )
            else:
                value, from_store = computed[i]
                source = "store" if from_store else "engine"
                outcomes.append(CellOutcome(i, cell, value, source, keys[i]))
        result = SweepResult(name=name, outcomes=tuple(outcomes))
        self._emit_events(result, pending=len(pending))
        return result

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_cell(index: int, cell) -> Cell:
        if not isinstance(cell, Cell):
            raise TypeError(f"cells[{index}] is not a Cell: {cell!r}")
        return cell

    def _manifest_values(
        self,
        name: str,
        cells: Sequence[Cell],
        identity: Optional[str],
        resume: bool,
    ) -> Dict[int, float]:
        """Trusted ``{index: value}`` entries from a prior manifest."""
        if not resume or self.store is None or identity is None:
            return {}
        manifest = self.store.load_manifest(name)
        if manifest is None or manifest.get("identity") != identity:
            return {}
        done: Dict[int, float] = {}
        for entry in manifest.get("cells", []):
            index = entry.get("index")
            if (
                entry.get("status") == "done"
                and isinstance(index, int)
                and 0 <= index < len(cells)
                and isinstance(entry.get("value"), (int, float))
            ):
                done[index] = float(entry["value"])
        return done

    def _checkpoint(
        self,
        name: str,
        cells: Sequence[Cell],
        identity: Optional[str],
        keys: Sequence[Optional[str]],
        manifest_values: Dict[int, float],
        computed: Dict[int, Tuple[float, bool]],
    ) -> None:
        """Write the manifest reflecting current per-cell status."""
        if self.store is None or identity is None:
            return
        entries = []
        for i, cell in enumerate(cells):
            if keys[i] is None:
                # No stable content-address (seedless or generator-
                # seeded cell): its value is not reproducible, so it is
                # recomputed every run and never recorded as done.
                status, value = "uncacheable", None
            elif i in manifest_values:
                status, value = "done", manifest_values[i]
            elif i in computed:
                status, value = "done", computed[i][0]
            else:
                status, value = "pending", None
            entries.append(
                {
                    "index": i,
                    "series": cell.series,
                    "x": cell.x,
                    "kind": cell.kind,
                    "metric": cell.metric,
                    "key": keys[i],
                    "status": status,
                    "value": value,
                }
            )
        self.store.store_manifest(
            name,
            {
                "schema": MANIFEST_SCHEMA,
                "version": MANIFEST_VERSION,
                "name": name,
                "identity": identity,
                "cells": entries,
            },
        )

    def _emit_events(self, result: SweepResult, *, pending: int) -> None:
        """Re-emit the sweep lifecycle in deterministic cell order."""
        tracer = self.tracer
        if tracer is None:
            return
        tracer.sweep_start(
            name=result.name, cells=len(result.outcomes), pending=pending
        )
        for outcome in result.outcomes:
            tracer.cell_start(
                index=outcome.index,
                series=outcome.cell.series,
                x=outcome.cell.x,
            )
            if outcome.cached:
                tracer.cell_cache_hit(
                    index=outcome.index, source=outcome.source
                )
            tracer.cell_finish(
                index=outcome.index,
                value=outcome.value,
                cached=outcome.cached,
            )
        tracer.sweep_end(
            computed=result.computed, cache_hits=result.cache_hits
        )
