"""The persistent, content-addressed sweep result store.

Layout (everything lives under one ``root`` directory)::

    <root>/<key>.npz            # npz tier: full MonteCarloResult arrays
    <root>/<key>.json           # envelope tier: repro.result JSON
    <root>/manifests/<name>.json  # per-sweep cell-status manifests

``<key>`` is the sha256 canonical-token digest of the cell's complete
experiment identity (config, runs, seed, engine, horizon, and
:data:`~repro.sim.parallel.CACHE_VERSION`), so a key can never collide
across differing inputs and never drifts between processes.  The npz
tier *is* the existing :class:`~repro.sim.parallel.ResultCache` — the
orchestrator's cache-aside writes and ``monte_carlo(cache=...)`` hits
share entries byte-for-byte.  The envelope tier stores the unified
versioned result envelope (see :mod:`repro.api.results`) for results
that are not Monte-Carlo count matrices: DES measurement results today,
live-cluster results when those grow a ``from_dict``.

Reads are best-effort exactly like :class:`ResultCache`: a missing,
corrupted, or wrong-schema entry behaves as a miss and the cell
recomputes — but the fallback is observable, not silent: the ``_ex``
variants distinguish ``hit`` / ``miss`` / ``corrupt`` and a ``tracer``
turns consultations into ``cache_*`` events.  Writes are atomic
(tempfile + rename) so a killed sweep never leaves a truncated entry
that a resume would trust.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.sim.parallel import CACHE_VERSION, ResultCache
from repro.util.canonical import canonical_key

#: Manifest document identity (see :class:`ResultStore.store_manifest`).
MANIFEST_SCHEMA = "repro.sweep_manifest"
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ResultStore:
    """Content-addressed result store with npz and envelope tiers."""

    root: Path

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))

    @property
    def cache(self) -> ResultCache:
        """The npz tier, as the :class:`ResultCache` it is."""
        return ResultCache(self.root)

    # -- keying --------------------------------------------------------------

    def key_for(self, cell) -> Optional[str]:
        """``cell``'s content-address, or None when it is uncacheable
        (no stable seed, or a config the canonical encoder rejects)."""
        if cell.scenario is not None:
            runs = cell.runs
            if runs is None:
                from repro.sim.runner import default_runs

                runs = default_runs()
            return self.cache.key(
                cell.scenario,
                runs,
                seed=cell.seed,
                engine=cell.engine,
                horizon=cell.horizon,
            )
        import numpy as np

        if cell.seed is None or isinstance(
            cell.seed, (bool, np.random.Generator)
        ):
            return None
        try:
            return canonical_key(
                {
                    "version": CACHE_VERSION,
                    "kind": "measurement",
                    "config": cell.config,
                    "seed": cell.seed,
                }
            )
        except TypeError:
            return None

    # -- envelope tier -------------------------------------------------------

    def envelope_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load_envelope(self, key: str, tracer=None):
        """The stored result object, or None on miss / any read failure.

        ``tracer`` observes the consultation as a ``cache_hit`` /
        ``cache_miss`` / ``cache_corrupt`` event on the ``envelope``
        tier (see :meth:`load_envelope_ex` for the distinction).
        """
        result, status = self.load_envelope_ex(key)
        if tracer is not None:
            if status == "hit":
                tracer.cache_hit(key=key, tier="envelope")
            elif status == "corrupt":
                tracer.cache_corrupt(key=key, tier="envelope")
            else:
                tracer.cache_miss(key=key, tier="envelope")
        return result

    def load_envelope_ex(self, key: str):
        """``(result, status)`` with status ``"hit"`` / ``"miss"`` /
        ``"corrupt"`` — corrupt meaning the entry exists but failed to
        decode (the fallback that used to be indistinguishable from a
        miss); result is None unless status is ``"hit"``."""
        from repro.api.results import decode_envelope

        path = self.envelope_path(key)
        try:
            text = path.read_text()
        except OSError:
            return None, "miss"
        try:
            result = decode_envelope(text)
        except Exception:
            return None, "corrupt"
        if result is None:
            return None, "corrupt"
        return result, "hit"

    def store_envelope(self, key: str, result) -> None:
        """Persist ``result``'s envelope atomically; failures are
        swallowed (the store is an accelerator, never a correctness
        dependency)."""
        from repro.api.results import encode_envelope

        try:
            self._write_atomic(self.envelope_path(key), encode_envelope(result))
        except OSError:
            pass

    # -- manifests -----------------------------------------------------------

    def manifest_path(self, name: str) -> Path:
        return self.root / "manifests" / f"{name}.json"

    def load_manifest(self, name: str) -> Optional[dict]:
        """The stored manifest dict, or None on miss / wrong schema /
        any read failure."""
        try:
            data = json.loads(self.manifest_path(name).read_text())
        except Exception:
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != MANIFEST_SCHEMA
            or data.get("version") != MANIFEST_VERSION
        ):
            return None
        return data

    def store_manifest(self, name: str, manifest: dict) -> None:
        """Persist ``manifest`` atomically; failures are swallowed."""
        try:
            self._write_atomic(
                self.manifest_path(name),
                json.dumps(manifest, sort_keys=True, indent=1),
            )
        except OSError:
            pass

    # -- internals -----------------------------------------------------------

    def _write_atomic(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise


def as_store(
    store: Union[None, str, Path, ResultStore]
) -> Optional[ResultStore]:
    """Coerce a store argument: None, a directory path, or a store."""
    if store is None or isinstance(store, ResultStore):
        return store
    if isinstance(store, (str, Path)):
        return ResultStore(Path(store))
    raise TypeError(
        f"store must be None, a path, or a ResultStore, got {store!r}"
    )
