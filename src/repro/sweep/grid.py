"""Sweep cells and grid builders.

A :class:`Cell` pins down one grid point completely — config, run
count, seed, engine, metric — in the parent process, before anything
executes.  That is what makes a sweep deterministic (values are a pure
function of the cell list, never of scheduling) and resumable (a cell's
content-address is computable without running it).

Two cell kinds share the class:

- **monte_carlo** (``scenario`` set): a
  :func:`~repro.sim.runner.monte_carlo` experiment on the fast or
  exact round engine; results persist in the store's npz tier.
- **measurement** (``config`` set): a DES
  :func:`~repro.des.measurement.run_throughput_experiment` streaming
  experiment; results persist in the store's envelope-JSON tier.

The grid builders produce the paper's three sweep shapes as
protocol-major cell rows plus a matching empty
:class:`~repro.metrics.report.SeriesReport`, deriving one child seed
per protocol exactly like the historical ``repro.sim.sweeps`` helpers
(so seeded sweep values are unchanged by the orchestration refactor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolKind
from repro.metrics.report import SeriesReport
from repro.sim.scenario import Scenario
from repro.util import coerce_int, spawn_seeds
from repro.util.rng import SeedLike

ProtocolName = Union[str, ProtocolKind]

#: Metrics a monte_carlo cell can extract.  ``join_latency`` and
#: ``view_convergence`` are churn-aware (NaN on churn-free cells).
MONTE_CARLO_METRICS = (
    "mean_rounds",
    "std_rounds",
    "reliability",
    "join_latency",
    "view_convergence",
)
#: Metrics a measurement cell can extract.
MEASUREMENT_METRICS = ("delivery_ratio", "throughput", "mean_latency_ms")


@dataclass(frozen=True)
class Cell:
    """One sweep grid point, fully determined before execution.

    ``series`` and ``x`` locate the cell in the output figure;
    exactly one of ``scenario`` (round-engine Monte-Carlo) or
    ``config`` (DES measurement cluster) describes the experiment.
    """

    series: str
    x: float
    scenario: Optional[Scenario] = None
    runs: Optional[int] = None
    seed: SeedLike = None
    engine: str = "fast"
    horizon: Optional[int] = None
    metric: str = "mean_rounds"
    #: A :class:`repro.des.ClusterConfig` for measurement cells (typed
    #: loosely to keep the DES stack out of sweep imports).
    config: Optional[object] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "series", str(self.series))
        object.__setattr__(self, "x", float(self.x))
        if (self.scenario is None) == (self.config is None):
            raise ValueError(
                "a Cell needs exactly one of scenario= (monte_carlo) "
                "or config= (measurement)"
            )
        if self.scenario is not None:
            if not isinstance(self.scenario, Scenario):
                raise TypeError(
                    f"scenario must be a Scenario, got {self.scenario!r}"
                )
            if self.engine not in ("fast", "exact", "mega"):
                raise ValueError(
                    f"unknown engine {self.engine!r}; "
                    "use 'fast', 'exact', or 'mega'"
                )
            if self.metric not in MONTE_CARLO_METRICS:
                raise ValueError(
                    f"unknown monte_carlo metric {self.metric!r}; "
                    f"use one of {', '.join(MONTE_CARLO_METRICS)}"
                )
        else:
            if self.metric not in MEASUREMENT_METRICS:
                raise ValueError(
                    f"unknown measurement metric {self.metric!r}; "
                    f"use one of {', '.join(MEASUREMENT_METRICS)}"
                )

    @property
    def kind(self) -> str:
        """``"monte_carlo"`` or ``"measurement"``."""
        return "monte_carlo" if self.scenario is not None else "measurement"


GridRows = List[List[Cell]]


def _protocol_rows(
    protocols: Sequence[ProtocolName],
    seed: SeedLike,
    cell_for,
) -> GridRows:
    """Protocol-major rows with the historical per-protocol seeds."""
    seeds = spawn_seeds(seed, len(protocols))
    return [
        [cell_for(protocol, proto_seed, x) for x in cell_for.x_values]
        for protocol, proto_seed in zip(protocols, seeds)
    ]


@dataclass
class _CellFactory:
    """Builds one cell per (protocol, x) for a sweep shape."""

    x_values: Tuple[float, ...]
    runs: Optional[int]
    max_rounds: int
    engine: str
    metric: str
    attack_for: object = field(repr=False, default=None)
    malicious_fraction: float = 0.0
    n: int = 120

    def __call__(self, protocol: ProtocolName, seed, x: float) -> Cell:
        attack = self.attack_for(x)
        scenario = Scenario(
            protocol=protocol,
            n=self.n,
            malicious_fraction=self.malicious_fraction if attack else 0.0,
            attack=attack,
            max_rounds=self.max_rounds,
        )
        return Cell(
            series=str(ProtocolKind(protocol).value),
            x=float(x),
            scenario=scenario,
            runs=self.runs,
            seed=seed,
            engine=self.engine,
            metric=self.metric,
        )


def rate_grid(
    protocols: Sequence[ProtocolName],
    rates: Sequence[float],
    *,
    n: int = 120,
    alpha: float = 0.1,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    engine: str = "fast",
    metric: str = "mean_rounds",
) -> Tuple[SeriesReport, GridRows]:
    """Figure 3(a)'s grid: propagation time vs per-victim rate ``x``."""
    n = coerce_int("n", n)
    report = SeriesReport(
        name="rate_sweep",
        x_label="x (fabricated msgs/victim/round)",
        x_values=[float(x) for x in rates],
        metadata={"n": n, "alpha": alpha},
    )
    factory = _CellFactory(
        x_values=tuple(float(x) for x in rates),
        runs=runs,
        max_rounds=max_rounds,
        engine=engine,
        metric=metric,
        attack_for=lambda x: AttackSpec(alpha=alpha, x=x) if x > 0 else None,
        malicious_fraction=malicious_fraction,
        n=n,
    )
    return report, _protocol_rows(protocols, seed, factory)


def extent_grid(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    x: float = 128.0,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    engine: str = "fast",
    metric: str = "mean_rounds",
) -> Tuple[SeriesReport, GridRows]:
    """Figure 3(b)'s grid: propagation time vs attack extent ``α``."""
    n = coerce_int("n", n)
    report = SeriesReport(
        name="extent_sweep",
        x_label="alpha (fraction of processes attacked)",
        x_values=[float(a) for a in alphas],
        metadata={"n": n, "x": x},
    )
    factory = _CellFactory(
        x_values=tuple(float(a) for a in alphas),
        runs=runs,
        max_rounds=max_rounds,
        engine=engine,
        metric=metric,
        attack_for=lambda a: AttackSpec(alpha=a, x=x),
        malicious_fraction=malicious_fraction,
        n=n,
    )
    return report, _protocol_rows(protocols, seed, factory)


def budget_grid(
    protocols: Sequence[ProtocolName],
    alphas: Sequence[float],
    *,
    budget_per_process: float = 7.2,
    n: int = 120,
    malicious_fraction: float = 0.1,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    engine: str = "fast",
    metric: str = "mean_rounds",
) -> Tuple[SeriesReport, GridRows]:
    """Figures 7–8's grid: a fixed budget ``B = budget_per_process · n``
    split over each extent in ``alphas``."""
    n = coerce_int("n", n)
    report = SeriesReport(
        name="budget_sweep",
        x_label="alpha (fraction of processes attacked)",
        x_values=[float(a) for a in alphas],
        metadata={"n": n, "budget_per_process": budget_per_process},
    )
    factory = _CellFactory(
        x_values=tuple(float(a) for a in alphas),
        runs=runs,
        max_rounds=max_rounds,
        engine=engine,
        metric=metric,
        attack_for=lambda a: AttackSpec.fixed_budget(
            budget_per_process * n, a, n
        ),
        malicious_fraction=malicious_fraction,
        n=n,
    )
    return report, _protocol_rows(protocols, seed, factory)


def churn_grid(
    protocols: Sequence[ProtocolName],
    churn_fractions: Sequence[float],
    *,
    n: int = 120,
    x: float = 0.0,
    alpha: float = 0.1,
    malicious_fraction: float = 0.1,
    join_round: int = 5,
    leave_round: int = 12,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 400,
    engine: str = "fast",
    metric: str = "reliability",
) -> Tuple[SeriesReport, GridRows]:
    """The churn-storm grid: residual reliability vs churn fraction.

    Each x-axis point ``c`` runs the scenario under a symmetric churn
    storm — a fraction ``c`` of the group joins at ``join_round`` and a
    fraction ``c`` of the correct members logs out at ``leave_round``
    (the plan ``join@J:c; leave@L:c``, resolved identically on every
    engine).  With ``x > 0`` the storm lands on top of a DoS attack of
    extent ``alpha`` and per-victim rate ``x``, which is the paper's
    hard case: Section 10's membership layer rides the protocol under
    test, so a protocol that melts under the flood also loses its
    membership traffic.  ``metric`` may be any monte_carlo metric,
    including the churn-aware ``join_latency`` / ``view_convergence``.
    """
    n = coerce_int("n", n)
    fractions = [float(c) for c in churn_fractions]
    if any(c < 0 or c >= 1 for c in fractions):
        raise ValueError(
            f"churn fractions must be in [0, 1), got {fractions}"
        )
    report = SeriesReport(
        name="churn_sweep",
        x_label="churn fraction (joins and leaves per storm)",
        x_values=fractions,
        metadata={
            "n": n,
            "alpha": alpha,
            "x": x,
            "join_round": join_round,
            "leave_round": leave_round,
        },
    )
    attack = AttackSpec(alpha=alpha, x=x) if x > 0 else None
    seeds = spawn_seeds(seed, len(protocols))
    rows: GridRows = []
    for protocol, proto_seed in zip(protocols, seeds):
        row = []
        for c in fractions:
            faults = (
                f"join@{join_round}:{c:g}; leave@{leave_round}:{c:g}"
                if c > 0
                else None
            )
            scenario = Scenario(
                protocol=protocol,
                n=n,
                malicious_fraction=malicious_fraction if attack else 0.0,
                attack=attack,
                max_rounds=max_rounds,
                faults=faults,
            )
            row.append(
                Cell(
                    series=str(ProtocolKind(protocol).value),
                    x=c,
                    scenario=scenario,
                    runs=runs,
                    seed=proto_seed,
                    engine=engine,
                    metric=metric,
                )
            )
        rows.append(row)
    return report, rows


def scale_grid(
    protocols: Sequence[ProtocolName],
    ns: Sequence[int],
    *,
    budget_per_node: float = 8.0,
    runs: Optional[int] = None,
    seed: SeedLike = None,
    max_rounds: int = 600,
    engine: str = "mega",
    metric: str = "mean_rounds",
) -> Tuple[SeriesReport, GridRows]:
    """The Section 6 asymptotics grid: propagation time vs group size.

    Unlike the other sweep shapes, the x-axis is ``n`` itself, and the
    attack is a *single-victim targeted* one: the adversary concentrates
    its whole budget ``B = budget_per_node · n`` on the source
    (``α = 1/n``).  That is the regime of the paper's asymptotic
    analysis — Drum keeps pushing M outward and propagates in O(log n)
    rounds however hard the source is hit, while pull must wait for the
    source to win a pull-request slot against the flood, which takes
    Θ(n) expected rounds.  ``ns`` accepts integer-like numpy values
    (``np.logspace`` output included) so log-spaced mega-scale grids
    stay cacheable.
    """
    ns = [coerce_int("n", value) for value in ns]
    report = SeriesReport(
        name="scale_sweep",
        x_label="n (group size)",
        x_values=[float(value) for value in ns],
        metadata={"budget_per_node": budget_per_node},
    )
    seeds = spawn_seeds(seed, len(protocols))
    rows: GridRows = []
    for protocol, proto_seed in zip(protocols, seeds):
        row = []
        for n in ns:
            scenario = Scenario(
                protocol=protocol,
                n=n,
                attack=AttackSpec(alpha=1.0 / n, x=budget_per_node * n),
                max_rounds=max_rounds,
            )
            row.append(
                Cell(
                    series=str(ProtocolKind(protocol).value),
                    x=float(n),
                    scenario=scenario,
                    runs=runs,
                    seed=proto_seed,
                    engine=engine,
                    metric=metric,
                )
            )
        rows.append(row)
    return report, rows
