"""Command-line interface for running Drum experiments.

Installed as ``python -m repro`` (see :mod:`repro.__main__`).  Three
subcommands mirror the library's three evaluation stacks::

    # Round-based Monte-Carlo simulation (the paper's Section 7 setup)
    python -m repro simulate --protocol drum --n 120 --alpha 0.1 -x 128

    # Closed-form / numerical analysis (Appendices A-C)
    python -m repro analyze --protocol push --n 120 --alpha 0.1 -x 128

    # Full-protocol measurement (Section 8): stream throughput/latency
    python -m repro measure --protocol pull --n 50 --alpha 0.1 -x 128

    # Resumable figure sweep through the content-addressed store
    python -m repro sweep --kind rate --protocols drum,push,pull \\
        --values 0,32,64,128 --seed 1 --store results/.cache --resume

    # Replay a JSONL event trace recorded with --trace
    python -m repro trace run.jsonl

    # Live asyncio gossip service with a JSONL-over-TCP control plane
    python -m repro serve --port 7000 --start --protocol drum --n 2000

``--faults``, ``--profile``, and ``--trace`` are uniform across the
execution subcommands (where the stack supports them).  Each subcommand
prints a compact table; ``--json`` emits machine-readable results
instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.adversary import AttackSpec
from repro.analysis import (
    accept_probability_attacked,
    accept_probability_unattacked,
    coverage_curve_attack,
    coverage_curve_no_attack,
    escape_time_std,
    expected_escape_rounds,
)
from repro.core.config import ProtocolKind
from repro.des import ClusterConfig, run_throughput_experiment
from repro.sim import Scenario, monte_carlo
from repro.sim.engine import RoundSimulator
from repro.util import Table
from repro.util.profiling import Profiler, profiling_enabled

PROTOCOL_CHOICES = [kind.value for kind in ProtocolKind]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocol", default="drum", choices=PROTOCOL_CHOICES,
        help="protocol to evaluate (default: drum)",
    )
    parser.add_argument("--n", type=int, default=120, help="group size")
    parser.add_argument(
        "--malicious", type=float, default=0.1,
        help="fraction of group members controlled by the adversary",
    )
    parser.add_argument(
        "--alpha", type=float, default=0.0,
        help="fraction of processes under attack (0 = no attack)",
    )
    parser.add_argument(
        "-x", "--rate", type=float, default=0.0,
        help="fabricated messages per victim per round",
    )
    parser.add_argument("--fan-out", type=int, default=4)
    parser.add_argument("--loss", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject faults, e.g. "
             "'crash@5:0.1;partition@8-15:0.4;gilbert:0.01,0.3,0.05,0.25' "
             "(clauses: crash@R[-R]:F, partition@R-R:F, stall@R-R:F, "
             "join@R[-R]:F, leave@R[-R]:F, expel@R:F, "
             "loss:P, gilbert:LG,LB,PGB,PBG, delay:MS[~JIT], reorder:P, "
             "dup:P)",
    )
    parser.add_argument(
        "--churn", type=float, default=None, metavar="F",
        help="churn-storm shorthand: a fraction F of the group joins at "
             "round 5 and a fraction F of the correct members logs out "
             "at round 12 (appended to --faults as 'join@5:F; "
             "leave@12:F'; the same plan resolves identically on every "
             "engine)",
    )


def _faults_spec(args) -> Optional[str]:
    """Merge ``--faults`` and the ``--churn`` shorthand into one spec."""
    spec = getattr(args, "faults", None)
    churn = getattr(args, "churn", None)
    if churn is not None:
        if not 0 < churn < 1:
            raise SystemExit(f"--churn must be in (0, 1), got {churn}")
        tokens = f"join@5:{churn:g}; leave@12:{churn:g}"
        spec = f"{spec}; {tokens}" if spec else tokens
    return spec


def _add_profile(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help=f"additionally print a per-phase hotspot table for {what} "
             "(REPRO_PROFILE=1 does the same from the environment)",
    )


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSONL event trace of the run to FILE "
             "(replay it with 'repro trace FILE')",
    )


def _open_tracer(args):
    """(tracer, sink) for ``--trace FILE``, else (None, None).

    The caller must close the sink after the run; the lazy import keeps
    untraced invocations from paying for :mod:`repro.obs`.
    """
    if getattr(args, "trace", None) is None:
        return None, None
    from repro.obs import JsonlSink, Tracer

    sink = JsonlSink(args.trace)
    return Tracer(sink), sink


def _attack(args) -> Optional[AttackSpec]:
    if args.alpha > 0 and args.rate > 0:
        return AttackSpec(alpha=args.alpha, x=args.rate)
    if args.alpha > 0 or args.rate > 0:
        raise SystemExit("an attack needs both --alpha and -x/--rate")
    return None


def _emit(args, title: str, payload: dict) -> None:
    if args.json:
        print(json.dumps(payload, indent=2, default=float))
        return
    table = Table(title, list(payload.keys()))
    table.add_row(*payload.values())
    print(table)


def cmd_simulate(args) -> int:
    attack = _attack(args)
    scenario = Scenario(
        protocol=args.protocol,
        n=args.n,
        fan_out=args.fan_out,
        loss=args.loss,
        malicious_fraction=args.malicious if attack else 0.0,
        attack=attack,
        max_rounds=args.max_rounds,
        faults=_faults_spec(args),
    )
    tracer, sink = _open_tracer(args)
    try:
        result = monte_carlo(
            scenario, runs=args.runs, seed=args.seed, workers=args.workers,
            tracer=tracer,
        )
    finally:
        if sink is not None:
            sink.close()
    payload = {
        "mean rounds to 99%": result.mean_rounds(),
        "std": result.std_rounds(),
        "censored runs": result.censored_runs(),
    }
    if scenario.faults is not None:
        payload["mean residual reliability"] = float(
            np.mean(result.residual_reliability())
        )
        heal = result.rounds_to_heal()
        if heal is not None:
            finite = heal[~np.isnan(heal)]
            payload["mean rounds to heal"] = (
                float(finite.mean()) if finite.size else float("nan")
            )
        latency = result.join_latency()
        if latency is not None:
            finite = latency[~np.isnan(latency)]
            payload["mean join latency [rounds]"] = (
                float(finite.mean()) if finite.size else float("nan")
            )
            payload["mean view convergence [rounds]"] = float(
                np.mean(result.view_convergence())
            )
    profiler = None
    if args.profile or profiling_enabled(False):
        # One seeded exact-engine pass with per-phase timers; profiling
        # draws no randomness, so the profiled trace matches what the
        # Monte-Carlo workers simulate.
        sim = RoundSimulator(scenario, seed=args.seed, profile=True)
        sim.run()
        profiler = sim.profiler
        if args.json:
            payload["profile"] = profiler.snapshot()
    if sink is not None and args.json:
        payload["trace"] = {"path": args.trace, "events": sink.written}
    _emit(
        args,
        f"Simulation: {scenario.describe()} ({args.runs} runs)",
        payload,
    )
    if not args.json:
        if profiler is not None:
            print(profiler.hotspot_table())
        if sink is not None:
            print(f"trace: {args.trace} ({sink.written} events)")
    return 0


def cmd_analyze(args) -> int:
    attack = _attack(args)
    b = int(round(args.malicious * args.n)) if attack else 0
    profiler = (
        Profiler()
        if args.profile or profiling_enabled(False)
        else None
    )
    if profiler is not None:
        profiler.phase_start("coverage-curves")
    if attack is None:
        curves = coverage_curve_no_attack(
            args.protocol, args.n, b, fan_out=args.fan_out,
            loss=args.loss, rounds=args.rounds, refined=args.refined,
        )
    else:
        curves = coverage_curve_attack(
            args.protocol, args.n, b, attack, fan_out=args.fan_out,
            loss=args.loss, rounds=args.rounds, refined=args.refined,
        )
    if profiler is not None:
        profiler.phase_stop("coverage-curves")
        profiler.phase_start("acceptance")
    payload = {
        "rounds to 99% (expected coverage)": curves.rounds_to_fraction(0.99),
        "p_u": accept_probability_unattacked(args.n, args.fan_out),
    }
    if attack is not None:
        payload["p_a"] = accept_probability_attacked(
            args.n, args.fan_out, attack.x
        )
        if ProtocolKind(args.protocol) is ProtocolKind.PULL:
            payload["expected source escape rounds"] = expected_escape_rounds(
                args.n, args.fan_out, attack.x
            )
            payload["escape std"] = escape_time_std(
                args.n, args.fan_out, attack.x
            )
    if profiler is not None:
        profiler.phase_stop("acceptance")
        if args.json:
            payload["profile"] = profiler.snapshot()
    _emit(args, f"Analysis: {args.protocol}, n={args.n}", payload)
    if profiler is not None and not args.json:
        print(profiler.hotspot_table("Analysis hotspots"))
    return 0


def cmd_measure(args) -> int:
    attack = _attack(args)
    config = ClusterConfig(
        protocol=args.protocol,
        n=args.n,
        malicious_fraction=args.malicious if attack else 0.0,
        attack=attack,
        fan_out=args.fan_out,
        loss=args.loss,
        messages=args.messages,
        send_rate=args.send_rate,
        round_duration_ms=args.round_ms,
        faults=_faults_spec(args),
    )
    profiler = (
        Profiler()
        if args.profile or profiling_enabled(False)
        else None
    )
    tracer, sink = _open_tracer(args)
    try:
        if profiler is not None:
            profiler.phase_start("experiment")
        if config.faults is not None and config.faults.has_churn:
            from repro.des.churn import run_churn_experiment

            result = run_churn_experiment(config, seed=args.seed, tracer=tracer)
        else:
            result = run_throughput_experiment(
                config, seed=args.seed, tracer=tracer
            )
        if profiler is not None:
            profiler.phase_stop("experiment")
    finally:
        if sink is not None:
            sink.close()
    if profiler is not None:
        profiler.phase_start("summarize")
    throughput = result.throughput()
    latencies = [
        latency
        for samples in result.latencies_by_process().values()
        for latency in samples
    ]
    payload = {
        "received throughput [msg/s]": throughput.mean_msgs_per_sec,
        "delivery ratio": result.delivery_ratio(),
        "mean latency [ms]": float(np.mean(latencies)) if latencies else float("nan"),
        "p99 latency [ms]": float(np.percentile(latencies, 99)) if latencies else float("nan"),
    }
    if result.faults is not None:
        payload["residual reliability"] = result.residual_reliability()
    if result.churn is not None:
        payload["joined/left/expelled"] = (
            f"{result.churn['joined']}/{result.churn['left']}/"
            f"{result.churn['expelled']}"
        )
        if result.churn["join_latency"] is not None:
            payload["mean join latency [rounds]"] = result.churn["join_latency"]
        if result.churn["view_convergence"] is not None:
            payload["mean view convergence [rounds]"] = result.churn[
                "view_convergence"
            ]
    if profiler is not None:
        profiler.phase_stop("summarize")
        if args.json:
            payload["profile"] = profiler.snapshot()
    if sink is not None and args.json:
        payload["trace"] = {"path": args.trace, "events": sink.written}
    _emit(
        args,
        f"Measurement: {args.protocol}, n={args.n}, "
        f"{args.messages} msgs @ {args.send_rate:g}/s",
        payload,
    )
    if not args.json:
        if profiler is not None:
            print(profiler.hotspot_table("Measurement hotspots"))
        if sink is not None:
            print(f"trace: {args.trace} ({sink.written} events)")
    return 0


def cmd_sweep(args) -> int:
    from repro.sim.sweeps import (
        budget_sweep,
        churn_sweep,
        extent_sweep,
        rate_sweep,
    )

    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    if not protocols:
        raise SystemExit("--protocols needs at least one protocol name")
    try:
        values = [float(v) for v in args.values.split(",") if v.strip()]
    except ValueError as exc:
        raise SystemExit(f"bad --values entry: {exc}")
    if not values:
        raise SystemExit("--values needs at least one grid point")

    tracer, sink = _open_tracer(args)
    if tracer is None:
        # Always trace into counters: the sweep lifecycle events are
        # where the computed / cache-hit accounting comes from.
        from repro.obs import Tracer

        tracer = Tracer()
    common = dict(
        n=args.n,
        malicious_fraction=args.malicious,
        runs=args.runs,
        seed=args.seed,
        max_rounds=args.max_rounds,
        workers=args.workers,
        store=args.store,
        tracer=tracer,
        resume=args.resume,
    )
    try:
        if args.kind == "rate":
            report = rate_sweep(
                protocols, values, alpha=args.alpha or 0.1, **common
            )
        elif args.kind == "extent":
            report = extent_sweep(
                protocols, values, x=args.rate or 128.0, **common
            )
        elif args.kind == "churn":
            report = churn_sweep(
                protocols, values,
                alpha=args.alpha or 0.1, x=args.rate or 0.0,
                metric=args.metric, **common
            )
        else:
            report = budget_sweep(
                protocols, values,
                budget_per_process=args.budget_per_process, **common
            )
    finally:
        if sink is not None:
            sink.close()

    counters = tracer.counters
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.json:
        payload = json.loads(report.to_json())
        payload["sweep"] = {
            "computed": counters.sweep_cells_computed,
            "cache_hits": counters.sweep_cache_hits,
            "store": args.store,
        }
        print(json.dumps(payload, indent=2, default=float))
        return 0
    labels = list(report.series)
    table = Table(
        f"Sweep: {report.name} ({report.x_label})",
        [report.x_label] + labels,
    )
    for i, x in enumerate(report.x_values):
        table.add_row(
            x, *[f"{report.series[label][i]:.2f}" for label in labels]
        )
    print(table)
    print(
        f"cells: {counters.sweep_cells_computed} computed, "
        f"{counters.sweep_cache_hits} served from "
        f"{'the store' if args.store else 'memory'}"
    )
    if args.out is not None:
        print(f"report: {args.out}")
    if sink is not None:
        print(f"trace: {args.trace} ({sink.written} events)")
    return 0


def cmd_trace(args) -> int:
    from repro.obs import read_trace, summarize

    summary = summarize(read_trace(args.file))
    if args.json:
        print(json.dumps(summary.to_jsonable(), indent=2, default=float))
        return 0
    engines = ", ".join(summary.engines) if summary.engines else "unknown"
    dropped_total = sum(summary.dropped_by_reason.values())
    overview = Table(
        f"Trace: {args.file} ({summary.events} events, engine: {engines})",
        ["delivered", "run_end delivered", "dropped", "max round"],
    )
    overview.add_row(
        summary.delivered_total,
        summary.final_delivered,
        dropped_total,
        summary.max_round(),
    )
    print(overview)
    if summary.rounds:
        table = Table(
            "Per-round activity",
            ["round", "delivered", "cumulative", "sent", "flooded",
             "accepted", "fabricated", "dropped"],
        )
        for r in summary.rounds:
            table.add_row(
                r.round, r.delivered, r.cumulative, r.sent, r.flooded,
                r.accepted_valid, r.accepted_fabricated, r.dropped_total,
            )
        print(table)
    if summary.dropped_by_reason:
        drops = Table("Drops by reason", ["reason", "count"])
        for reason in sorted(summary.dropped_by_reason):
            drops.add_row(reason, summary.dropped_by_reason[reason])
        print(drops)
    return 0


def cmd_serve(args) -> int:
    import socket

    from repro.aio.service import GossipService

    service = GossipService(host=args.host, port=args.port)
    service.start()
    print(f"gossip service listening on {service.host}:{service.port}")
    if args.start:
        # Boot the cluster through the control socket a client would
        # use, so the flag exercises the public path end to end.
        request = {
            "op": "start",
            "protocol": args.protocol,
            "n": args.n,
            "loss": args.loss,
            "round_duration_ms": args.round_ms,
        }
        if args.seed is not None:
            request["seed"] = args.seed
        with socket.create_connection((service.host, service.port)) as sock:
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            reply = json.loads(sock.makefile(encoding="utf-8").readline())
        if not reply.get("ok"):
            print(
                f"cluster start failed: {reply.get('error')}", file=sys.stderr
            )
            service.stop()
            return 1
        print(f"cluster running: protocol={args.protocol} n={args.n}")
    print(
        "control plane: one JSON request per line, e.g.\n"
        f"  echo '{{\"op\": \"status\"}}' | nc {service.host} {service.port}\n"
        "ops: ping start status multicast inject metrics stream stop "
        "shutdown (Ctrl-C also exits)"
    )
    try:
        while not service.wait(timeout_s=0.5):
            pass
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Drum (DSN 2004) reproduction: simulate, analyze, measure.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="round-based Monte-Carlo simulation")
    _add_common(p_sim)
    _add_faults(p_sim)
    p_sim.add_argument("--runs", type=int, default=100)
    p_sim.add_argument("--max-rounds", type=int, default=400)
    p_sim.add_argument(
        "--workers", type=int, default=None,
        help="workers on the persistent process pool for the run "
             "fan-out (default: REPRO_WORKERS or 1; results are "
             "identical for any count; REPRO_START_METHOD picks "
             "fork/spawn/forkserver)",
    )
    _add_profile(p_sim, "one seeded exact-engine pass")
    _add_trace(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_ana = sub.add_parser("analyze", help="closed-form / numerical analysis")
    _add_common(p_ana)
    p_ana.add_argument("--rounds", type=int, default=60)
    p_ana.add_argument(
        "--refined", action="store_true",
        help="use the exact (beyond-paper) acceptance computation",
    )
    _add_profile(p_ana, "the numerical analysis")
    p_ana.set_defaults(func=cmd_analyze)

    p_meas = sub.add_parser("measure", help="full-protocol stream measurement")
    _add_common(p_meas)
    _add_faults(p_meas)
    p_meas.add_argument("--messages", type=int, default=400)
    p_meas.add_argument("--send-rate", type=float, default=40.0)
    p_meas.add_argument("--round-ms", type=float, default=1000.0)
    _add_profile(p_meas, "the streamed experiment")
    _add_trace(p_meas)
    p_meas.set_defaults(func=cmd_measure)

    p_sweep = sub.add_parser(
        "sweep",
        help="resumable multi-protocol figure sweep through the result store",
    )
    p_sweep.add_argument(
        "--kind", default="rate",
        choices=["rate", "extent", "budget", "churn"],
        help="sweep shape: x-axis is the attack rate x, the extent "
             "alpha, the extent under a fixed total budget, or the "
             "churn-storm fraction (joins+leaves per storm; pair with "
             "--alpha/-x for churn under DoS)",
    )
    p_sweep.add_argument(
        "--protocols", default="drum,push,pull",
        help="comma-separated protocol series (default: drum,push,pull)",
    )
    p_sweep.add_argument(
        "--values", default=None, required=True,
        help="comma-separated x-axis grid points "
             "(rates for --kind rate, alphas otherwise)",
    )
    p_sweep.add_argument("--n", type=int, default=120, help="group size")
    p_sweep.add_argument(
        "--malicious", type=float, default=0.1,
        help="fraction of group members controlled by the adversary",
    )
    p_sweep.add_argument(
        "--alpha", type=float, default=None,
        help="attack extent for --kind rate (default: 0.1)",
    )
    p_sweep.add_argument(
        "-x", "--rate", type=float, default=None,
        help="per-victim attack rate for --kind extent (default: 128)",
    )
    p_sweep.add_argument(
        "--budget-per-process", type=float, default=7.2,
        help="for --kind budget: total budget B = this times n",
    )
    p_sweep.add_argument(
        "--metric", default="reliability",
        choices=[
            "mean_rounds", "std_rounds", "reliability",
            "join_latency", "view_convergence",
        ],
        help="for --kind churn: the per-cell metric to chart "
             "(default: residual reliability over the "
             "certified-and-alive set)",
    )
    p_sweep.add_argument("--runs", type=int, default=None)
    p_sweep.add_argument("--seed", type=int, default=None)
    p_sweep.add_argument("--max-rounds", type=int, default=400)
    p_sweep.add_argument(
        "--workers", type=int, default=None,
        help="workers on the persistent process pool draining the "
             "global (cell, shard) work queue (default: REPRO_WORKERS "
             "or 1; results are identical for any count; "
             "REPRO_START_METHOD picks fork/spawn/forkserver)",
    )
    p_sweep.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent result store directory; required for the sweep "
             "to be resumable and for cells to be cached across runs",
    )
    p_sweep.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="reuse the sweep manifest in --store, recomputing only "
             "unfinished cells (--no-resume rebuilds the manifest; "
             "completed cells still hit the content-addressed store)",
    )
    p_sweep.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the figure report JSON to FILE",
    )
    p_sweep.add_argument(
        "--json", action="store_true",
        help="emit the report plus cell accounting as JSON",
    )
    _add_trace(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_trace = sub.add_parser(
        "trace", help="summarise a recorded JSONL event trace"
    )
    p_trace.add_argument(
        "file", metavar="FILE",
        help="JSONL trace written by --trace (or a JsonlSink)",
    )
    p_trace.add_argument(
        "--json", action="store_true",
        help="emit the full summary as JSON instead of tables",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve",
        help="run the live asyncio gossip service "
             "(JSONL-over-TCP control plane)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind the control socket on",
    )
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="control-plane TCP port (default: 0 = pick a free port)",
    )
    p_serve.add_argument(
        "--start", action="store_true",
        help="also start a cluster immediately from --protocol/--n/"
             "--loss/--round-ms/--seed (otherwise send a "
             "{\"op\": \"start\"} request later)",
    )
    p_serve.add_argument(
        "--protocol", default="drum", choices=PROTOCOL_CHOICES,
        help="protocol for --start (default: drum)",
    )
    p_serve.add_argument(
        "--n", type=int, default=120, help="group size for --start"
    )
    p_serve.add_argument(
        "--loss", type=float, default=0.01,
        help="packet-loss probability for --start",
    )
    p_serve.add_argument(
        "--round-ms", type=float, default=200.0,
        help="gossip round duration for --start (milliseconds)",
    )
    p_serve.add_argument(
        "--seed", type=int, default=None, help="seed for --start"
    )
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
