"""Trace replay: JSONL files back into per-round summaries.

:func:`read_trace` loads a JSONL trace (one event per line, the
:class:`~repro.obs.sinks.JsonlSink` format) and :func:`summarize` folds
any event stream into a :class:`TraceSummary`: per-round delivery /
send / drop tallies, the cumulative infection curve, and the
drop-reason breakdown.  This is the engine behind the ``repro trace``
CLI subcommand, and the summary's :meth:`TraceSummary.infection_counts`
must reproduce a traced run's ``RunResult.counts`` exactly — the
acceptance cross-check for the whole observability layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.counters import ObsCounters


def read_trace(path: Union[str, Path]) -> List[dict]:
    """Load a JSONL trace file into a list of event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line number, since a truncated trace should fail loudly
    rather than silently summarise half a run.
    """
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line: {exc}"
                ) from exc
            if not isinstance(event, dict) or "ev" not in event:
                raise ValueError(
                    f"{path}:{lineno}: not a trace event: {line[:80]!r}"
                )
            events.append(event)
    return events


@dataclass
class RoundSummary:
    """Aggregate activity within one round."""

    round: int
    delivered: int = 0
    cumulative: int = 0
    sent: int = 0
    flooded: int = 0
    accepted_valid: int = 0
    accepted_fabricated: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())


@dataclass
class TraceSummary:
    """Everything ``repro trace`` reports about a recorded trace."""

    events: int
    engines: List[str]
    rounds: List[RoundSummary]
    delivered_total: int
    dropped_by_reason: Dict[str, int]
    counters: ObsCounters
    #: run_end echoes, where the producer emitted them.
    final_delivered: Optional[int] = None

    def infection_counts(self) -> List[int]:
        """Cumulative deliveries per round (``RunResult.counts`` shape)."""
        return [r.cumulative for r in self.rounds]

    def max_round(self) -> int:
        return self.rounds[-1].round if self.rounds else 0

    def to_jsonable(self) -> dict:
        return {
            "events": self.events,
            "engines": self.engines,
            "delivered_total": self.delivered_total,
            "final_delivered": self.final_delivered,
            "dropped_by_reason": dict(sorted(self.dropped_by_reason.items())),
            "infection_counts": self.infection_counts(),
            "rounds": [
                {
                    "round": r.round,
                    "delivered": r.delivered,
                    "cumulative": r.cumulative,
                    "sent": r.sent,
                    "flooded": r.flooded,
                    "accepted_valid": r.accepted_valid,
                    "accepted_fabricated": r.accepted_fabricated,
                    "dropped": dict(sorted(r.dropped.items())),
                }
                for r in self.rounds
            ],
        }


def summarize(events: Iterable[dict]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`.

    Works on per-packet traces (exact engine, one event per message)
    and aggregate traces (fast engine, per-round ``count`` totals)
    alike: every tally honours the event's ``count`` field, defaulting
    to 1.  Events without a round (continuous-time stacks) contribute
    to the totals and drop breakdown but not to the per-round rows.
    """
    counters = ObsCounters()
    per_round: Dict[int, RoundSummary] = {}
    engines: List[str] = []
    total_events = 0
    final_delivered: Optional[int] = None

    def row(round_no: int) -> RoundSummary:
        summary = per_round.get(round_no)
        if summary is None:
            summary = per_round[round_no] = RoundSummary(round=round_no)
        return summary

    for event in events:
        total_events += 1
        counters.ingest(event)
        ev = event["ev"]
        rnd = event.get("round")
        if ev == "run_start":
            engine = event.get("engine")
            if engine and engine not in engines:
                engines.append(engine)
        elif ev == "run_end":
            delivered = event.get("delivered")
            if delivered is not None:
                final_delivered = (final_delivered or 0) + int(delivered)
        if rnd is None:
            continue
        if ev == "round_start":
            row(rnd)
        elif ev == "delivered":
            row(rnd).delivered += event.get("count", 1)
        elif ev == "gossip_sent":
            row(rnd).sent += event.get("count", 1)
        elif ev == "flood_sent":
            row(rnd).flooded += event.get("count", 1)
        elif ev == "accepted":
            summary = row(rnd)
            summary.accepted_valid += event.get("valid", 0)
            summary.accepted_fabricated += event.get("fabricated", 0)
        elif ev == "dropped":
            summary = row(rnd)
            reason = event.get("reason", "unknown")
            summary.dropped[reason] = (
                summary.dropped.get(reason, 0) + event.get("count", 1)
            )

    rounds = [per_round[r] for r in sorted(per_round)]
    cumulative = 0
    for summary in rounds:
        cumulative += summary.delivered
        summary.cumulative = cumulative
    return TraceSummary(
        events=total_events,
        engines=engines,
        rounds=rounds,
        delivered_total=counters.delivered_total,
        dropped_by_reason=dict(counters.dropped_by_reason),
        counters=counters,
        final_delivered=final_delivered,
    )
