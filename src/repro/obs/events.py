"""The trace event taxonomy.

Events are plain JSON-serialisable dicts.  Every event carries ``"ev"``
(one of :data:`EVENT_TYPES`) plus a context key — ``"round"`` on the
round-based engines (set by the enclosing ``round_start``; round 0 is
the instant M is created at the source) or ``"t"`` (milliseconds) on the
continuous-time stacks.  Remaining keys by type:

``run_start``
    ``engine`` (``exact`` / ``fast`` / ``des`` / ``live``) plus config
    echoes (``protocol``, ``n``, ``runs``...).
``round_start``
    Marks the beginning of round ``round``; aggregate engines add
    ``active_runs``.
``gossip_sent``
    One protocol send attempt entering the fabric: ``src``, ``dst``,
    ``port`` (``src = -1`` when the sender is outside the group).
    Aggregate engines emit one event per round with ``count``.
``flood_sent``
    Fabricated attack traffic injected at ``dst``/``port``, ``count``
    messages (pre-loss).
``accepted``
    A channel drain at ``node``/``port``: ``valid`` and ``fabricated``
    messages that won acceptance slots this round.
``dropped``
    Messages that died in transit or in a channel: ``reason`` (see
    :data:`DROP_REASONS`), ``count``, and where known ``node``/``port``
    and the ``valid``/``fabricated`` split.
``delivered``
    ``node`` delivered the tracked message, ``via`` ``"source"`` /
    ``"push"`` / ``"pull"`` where known; aggregate engines use
    ``count`` per round instead of per-node events.
``crash`` / ``heal``
    Scheduled fault transitions: ``nodes`` went down / came back.
``partition`` / ``partition_heal``
    A partition cut activated (``nodes`` = side A) / healed.
``run_end``
    Terminal summary: ``delivered`` (final holder count), ``rounds``.
``sweep_start`` / ``sweep_end``
    Sweep-orchestrator lifecycle (:mod:`repro.sweep`): ``name``,
    ``cells``, ``pending`` on start; ``computed``, ``cache_hits`` on
    end.
``cell_start`` / ``cell_finish``
    One grid cell's evaluation: ``index``, ``series``, ``x`` on start;
    ``index``, ``value``, ``cached`` on finish.
``cell_cache_hit``
    The cell was served without an engine run: ``index`` plus
    ``source`` (``"store"`` — content-addressed hit — or
    ``"manifest"`` — trusted done entry from a prior sweep).
``cache_hit`` / ``cache_miss`` / ``cache_corrupt``
    One result-cache consultation (:class:`repro.sim.parallel
    .ResultCache` npz tier or the :class:`repro.sweep.store.ResultStore`
    envelope tier): ``key`` (the content-address) and ``tier`` (``"npz"``
    / ``"envelope"``).  ``cache_corrupt`` is the case that used to be
    silent — an entry exists but failed to decode or validate, and the
    caller fell back to recomputation.

Sharded Monte-Carlo execution annotates re-emitted events with
``shard`` (fast engine) or ``run`` (exact engine) indices; the
annotation order is a pure function of the seed and run count, never of
the worker count.
"""

from __future__ import annotations

EV_RUN_START = "run_start"
EV_ROUND_START = "round_start"
EV_GOSSIP_SENT = "gossip_sent"
EV_FLOOD_SENT = "flood_sent"
EV_ACCEPTED = "accepted"
EV_DROPPED = "dropped"
EV_DELIVERED = "delivered"
EV_CRASH = "crash"
EV_HEAL = "heal"
EV_PARTITION = "partition"
EV_PARTITION_HEAL = "partition_heal"
EV_RUN_END = "run_end"
EV_SWEEP_START = "sweep_start"
EV_SWEEP_END = "sweep_end"
EV_CELL_START = "cell_start"
EV_CELL_CACHE_HIT = "cell_cache_hit"
EV_CELL_FINISH = "cell_finish"
EV_CACHE_HIT = "cache_hit"
EV_CACHE_MISS = "cache_miss"
EV_CACHE_CORRUPT = "cache_corrupt"

#: Every event type a conforming tracer consumer must accept.
EVENT_TYPES = frozenset(
    {
        EV_RUN_START,
        EV_ROUND_START,
        EV_GOSSIP_SENT,
        EV_FLOOD_SENT,
        EV_ACCEPTED,
        EV_DROPPED,
        EV_DELIVERED,
        EV_CRASH,
        EV_HEAL,
        EV_PARTITION,
        EV_PARTITION_HEAL,
        EV_RUN_END,
        EV_SWEEP_START,
        EV_SWEEP_END,
        EV_CELL_START,
        EV_CELL_CACHE_HIT,
        EV_CELL_FINISH,
        EV_CACHE_HIT,
        EV_CACHE_MISS,
        EV_CACHE_CORRUPT,
    }
)

#: Why a message died.
#:
#: ``bound``      channel overflow discard with no attack traffic present
#: ``attack``     channel overflow discard on a flooded channel (valid
#:                messages crowded out by fabricated arrivals)
#: ``loss``       link loss
#: ``partition``  a fault-plan block: partition cut, crashed machine, or
#:                stalled sender uplink
#: ``closed``     dead-lettered at a closed port (e.g. an attacker
#:                guessing at a random port, or a crashed DES node)
#: ``round_end``  unread channel backlog discarded at the round boundary
#:                (Drum's defensive discard)
DROP_REASONS = frozenset(
    {"bound", "attack", "loss", "partition", "closed", "round_end"}
)
