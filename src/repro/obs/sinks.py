"""Pluggable trace sinks.

A sink is anything with ``write(event: dict)`` and ``close()``.  Three
implementations cover the common shapes:

- :class:`MemorySink` — an in-memory ring buffer (bounded ``maxlen`` or
  unbounded) for tests and programmatic consumers;
- :class:`JsonlSink` — one sorted-key JSON object per line, the format
  the ``repro trace`` CLI subcommand replays;
- :class:`PrometheusSink` — aggregates events into
  :class:`~repro.obs.counters.ObsCounters` and renders the text
  exposition format on demand (optionally written to a file on close).

Sinks never draw randomness and never mutate events, so attaching any
combination of them cannot perturb a seeded run.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

import numpy as np

from repro.obs.counters import ObsCounters


def _jsonable(value):
    """JSON fallback for numpy scalars and set-like values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"not JSON-serialisable in a trace event: {value!r}")


def encode_event(event: dict) -> str:
    """Canonical one-line JSON encoding of one event."""
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), default=_jsonable
    )


class MemorySink:
    """Ring buffer of events; ``maxlen=None`` keeps everything."""

    def __init__(self, maxlen: Optional[int] = None):
        self._events: deque = deque(maxlen=maxlen)

    def write(self, event: dict) -> None:
        self._events.append(event)

    def close(self) -> None:
        pass

    @property
    def events(self) -> List[dict]:
        """The buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._events)


class JsonlSink:
    """Writes one JSON object per line to a path or open file."""

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.written = 0

    def write(self, event: dict) -> None:
        self._file.write(encode_event(event))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._owns:
            self._file.close()
        else:
            self._file.flush()


class PrometheusSink:
    """Aggregates events into counters for text exposition.

    ``render()`` returns the exposition at any point;  when constructed
    with a ``path``, ``close()`` writes the final exposition there.
    """

    def __init__(self, path: Union[None, str, Path] = None):
        self.counters = ObsCounters()
        self._path = None if path is None else Path(path)

    def write(self, event: dict) -> None:
        self.counters.ingest(event)

    def render(self) -> str:
        return self.counters.exposition()

    def close(self) -> None:
        if self._path is not None:
            self._path.write_text(self.render(), encoding="utf-8")
