"""Aggregated per-node / per-port counters over a trace stream.

:class:`ObsCounters` ingests every event a :class:`~repro.obs.tracer.Tracer`
emits and maintains the counters an operator would scrape: sends by
source node and destination port, acceptance wins by node, drops by
reason and port, deliveries by node and by round.  Because the counters
are derived from the *same* event stream the engines emit, they can be
reconciled against the engine-computed result objects
(:meth:`ObsCounters.reconcile_run`,
:meth:`ObsCounters.reconcile_measurement`) — a structural cross-check
that the instrumentation and the metrics agree.

:meth:`ObsCounters.exposition` renders the counters in the Prometheus
text exposition format (``repro_*`` metric families), deterministically
ordered so expositions themselves can be golden-tested.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Tuple


class ObsCounters:
    """Counter aggregation over typed trace events."""

    def __init__(self) -> None:
        self.events = 0
        self.by_type: Counter = Counter()
        #: gossip_sent messages by source node (-1 = outside the group).
        self.sent_by_node: Counter = Counter()
        #: gossip_sent messages by destination port.
        self.sent_by_port: Counter = Counter()
        #: fabricated flood messages by destination port (pre-loss).
        self.flood_by_port: Counter = Counter()
        #: accepted (valid, fabricated) messages by receiving node.
        self.accepted_valid_by_node: Counter = Counter()
        self.accepted_fabricated_by_node: Counter = Counter()
        #: dropped messages by reason / by (reason, port).
        self.dropped_by_reason: Counter = Counter()
        self.dropped_by_port: Counter = Counter()
        #: deliveries: total, per round, and first delivery round by node.
        self.delivered_total = 0
        self.delivered_by_round: Counter = Counter()
        self.delivery_round_by_node: Dict[int, int] = {}
        self.delivered_by_via: Counter = Counter()
        #: deliveries to mid-run joiners (``via="joiner"``) by round —
        #: kept apart because ``RunResult.counts`` tracks the initial
        #: group only.
        self.joiner_delivered_by_round: Counter = Counter()
        #: fault transitions seen.
        self.crashes = 0
        self.heals = 0
        self.partitions = 0
        #: membership lifecycle transitions seen.
        self.joins = 0
        self.leaves = 0
        self.expels = 0
        self.suspects = 0
        self.rehabilitations = 0
        #: sweep-orchestrator cells: engine runs vs cache-served cells.
        self.sweep_cells_computed = 0
        self.sweep_cache_hits = 0
        #: result-cache consultations (npz + envelope tiers), by outcome.
        #: ``cache_corrupt`` counts entries that existed but failed to
        #: decode/validate — the silent-fallback case made observable.
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_corrupt = 0

    def ingest(self, event: dict) -> None:
        """Fold one event into the counters."""
        ev = event["ev"]
        self.events += 1
        self.by_type[ev] += 1
        if ev == "gossip_sent":
            count = event.get("count", 1)
            self.sent_by_node[event.get("src", -1)] += count
            port = event.get("port")
            if port is not None:
                self.sent_by_port[port] += count
        elif ev == "flood_sent":
            port = event.get("port")
            if port is not None:
                self.flood_by_port[port] += event.get("count", 1)
        elif ev == "accepted":
            node = event.get("node")
            if node is not None:
                self.accepted_valid_by_node[node] += event.get("valid", 0)
                self.accepted_fabricated_by_node[node] += event.get(
                    "fabricated", 0
                )
        elif ev == "dropped":
            count = event.get("count", 1)
            self.dropped_by_reason[event.get("reason", "unknown")] += count
            port = event.get("port")
            if port is not None:
                self.dropped_by_port[port] += count
        elif ev == "delivered":
            count = event.get("count", 1)
            self.delivered_total += count
            rnd = event.get("round")
            if rnd is not None:
                self.delivered_by_round[rnd] += count
            node = event.get("node")
            if node is not None and count == 1:
                self.delivery_round_by_node.setdefault(
                    node, rnd if rnd is not None else -1
                )
            via = event.get("via")
            if via is not None:
                self.delivered_by_via[via] += count
                if via == "joiner" and rnd is not None:
                    self.joiner_delivered_by_round[rnd] += count
        elif ev == "crash":
            self.crashes += len(event.get("nodes", ()))
        elif ev == "heal":
            self.heals += len(event.get("nodes", ()))
        elif ev == "partition":
            self.partitions += 1
        elif ev == "member_join":
            self.joins += len(event.get("nodes", ()))
        elif ev == "member_leave":
            self.leaves += len(event.get("nodes", ()))
        elif ev == "member_expel":
            self.expels += len(event.get("nodes", ()))
        elif ev == "suspect":
            self.suspects += len(event.get("nodes", ()))
        elif ev == "rehabilitate":
            self.rehabilitations += len(event.get("nodes", ()))
        elif ev == "cell_cache_hit":
            self.sweep_cache_hits += 1
        elif ev == "cache_hit":
            self.cache_hits += 1
        elif ev == "cache_miss":
            self.cache_misses += 1
        elif ev == "cache_corrupt":
            self.cache_corrupt += 1
        elif ev == "cell_finish":
            if not event.get("cached", False):
                self.sweep_cells_computed += 1

    # -- cross-checks against engine-computed results -----------------------

    def infection_counts(self, rounds: int) -> List[int]:
        """Cumulative holder count per round implied by delivery events.

        ``counts[r]`` is the number of deliveries with round <= r, which
        must equal the engine's ``RunResult.counts[r]`` (holders at the
        start of round r, the source's round-0 delivery included).
        """
        out = []
        total = 0
        for r in range(rounds + 1):
            total += self.delivered_by_round.get(r, 0)
            out.append(total)
        return out

    def _joiner_infection_counts(self, rounds: int) -> List[int]:
        out = []
        total = 0
        for r in range(rounds + 1):
            total += self.joiner_delivered_by_round.get(r, 0)
            out.append(total)
        return out

    def reconcile_run(self, result) -> List[str]:
        """Cross-check the counters against a :class:`RunResult`.

        Returns a list of human-readable mismatch descriptions (empty
        when the trace and the engine agree).  Checks: total deliveries
        vs the final holder count, the per-round cumulative delivery
        curve vs ``counts``, and each node's delivery-event round vs
        ``delivery_rounds``.
        """
        problems: List[str] = []
        counts = [int(v) for v in result.counts]
        final = counts[-1]
        # Mid-run joiners sit outside the initial group counts track, so
        # their deliveries (tagged via="joiner") are reconciled apart.
        joiner_total = self.delivered_by_via.get("joiner", 0)
        if self.delivered_total - joiner_total != final:
            problems.append(
                f"delivered events total {self.delivered_total - joiner_total}"
                f" (joiner deliveries excluded) != final holder count {final}"
            )
        implied = [
            base - joiners
            for base, joiners in zip(
                self.infection_counts(len(counts) - 1),
                self._joiner_infection_counts(len(counts) - 1),
            )
        ]
        if implied != counts:
            problems.append(
                f"per-round infection counts diverge: trace {implied} vs "
                f"engine {counts}"
            )
        if result.delivery_rounds is not None:
            for node, value in enumerate(result.delivery_rounds):
                traced = self.delivery_round_by_node.get(node)
                if math.isnan(value):
                    if traced is not None:
                        problems.append(
                            f"node {node}: delivered event at round "
                            f"{traced} but the engine recorded no delivery"
                        )
                elif traced != int(value):
                    problems.append(
                        f"node {node}: delivered event round {traced} != "
                        f"engine delivery round {int(value)}"
                    )
        return problems

    def reconcile_measurement(self, result) -> List[str]:
        """Cross-check against a :class:`MeasurementResult`.

        The continuous-time stacks emit one ``delivered`` event per
        tracked delivery record, so the totals must match exactly.
        """
        problems: List[str] = []
        recorded = len(result.deliveries)
        if self.delivered_total != recorded:
            problems.append(
                f"delivered events total {self.delivered_total} != "
                f"{recorded} recorded delivery records"
            )
        return problems

    # -- text exposition ----------------------------------------------------

    def exposition(self) -> str:
        """Prometheus-style text exposition of the counters.

        Deterministic: metric families and label values are emitted in
        sorted order, so two identical traces render identical text.
        """
        lines: List[str] = []

        def family(
            name: str,
            help_text: str,
            samples: List[Tuple[str, float]],
        ) -> None:
            if not samples:
                return
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            for labels, value in samples:
                lines.append(f"{name}{labels} {value:g}")

        family(
            "repro_trace_events_total",
            "Trace events ingested.",
            [("", float(self.events))],
        )
        family(
            "repro_events_total",
            "Trace events by type.",
            [
                (f'{{type="{t}"}}', float(v))
                for t, v in sorted(self.by_type.items())
            ],
        )
        family(
            "repro_sent_total",
            "Gossip messages sent by source node.",
            [
                (f'{{node="{n}"}}', float(v))
                for n, v in sorted(self.sent_by_node.items())
            ],
        )
        family(
            "repro_sent_port_total",
            "Gossip messages sent by destination port.",
            [
                (f'{{port="{p}"}}', float(v))
                for p, v in sorted(self.sent_by_port.items())
            ],
        )
        family(
            "repro_flood_port_total",
            "Fabricated attack messages by destination port.",
            [
                (f'{{port="{p}"}}', float(v))
                for p, v in sorted(self.flood_by_port.items())
            ],
        )
        family(
            "repro_accepted_total",
            "Messages winning bounded acceptance, by node and kind.",
            [
                (f'{{kind="valid",node="{n}"}}', float(v))
                for n, v in sorted(self.accepted_valid_by_node.items())
            ]
            + [
                (f'{{kind="fabricated",node="{n}"}}', float(v))
                for n, v in sorted(self.accepted_fabricated_by_node.items())
            ],
        )
        family(
            "repro_dropped_total",
            "Messages dropped, by reason.",
            [
                (f'{{reason="{r}"}}', float(v))
                for r, v in sorted(self.dropped_by_reason.items())
            ],
        )
        family(
            "repro_delivered_total",
            "Tracked-message deliveries.",
            [("", float(self.delivered_total))],
        )
        family(
            "repro_fault_transitions_total",
            "Scheduled fault transitions observed.",
            [
                ('{kind="crash"}', float(self.crashes)),
                ('{kind="heal"}', float(self.heals)),
                ('{kind="partition"}', float(self.partitions)),
            ]
            if (self.crashes or self.heals or self.partitions)
            else [],
        )
        membership_total = (
            self.joins
            + self.leaves
            + self.expels
            + self.suspects
            + self.rehabilitations
        )
        family(
            "repro_membership_events_total",
            "Membership lifecycle transitions observed.",
            [
                ('{kind="join"}', float(self.joins)),
                ('{kind="leave"}', float(self.leaves)),
                ('{kind="expel"}', float(self.expels)),
                ('{kind="suspect"}', float(self.suspects)),
                ('{kind="rehabilitate"}', float(self.rehabilitations)),
            ]
            if membership_total
            else [],
        )
        family(
            "repro_sweep_cells_total",
            "Sweep cells evaluated, by how they were served.",
            [
                ('{source="engine"}', float(self.sweep_cells_computed)),
                ('{source="cache"}', float(self.sweep_cache_hits)),
            ]
            if (self.sweep_cells_computed or self.sweep_cache_hits)
            else [],
        )
        family(
            "repro_result_cache_total",
            "Result-cache consultations, by outcome.",
            [
                ('{status="hit"}', float(self.cache_hits)),
                ('{status="miss"}', float(self.cache_misses)),
                ('{status="corrupt"}', float(self.cache_corrupt)),
            ]
            if (self.cache_hits or self.cache_misses or self.cache_corrupt)
            else [],
        )
        return "\n".join(lines) + ("\n" if lines else "")
