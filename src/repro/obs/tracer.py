"""The tracer: typed event emission with pluggable sinks.

A :class:`Tracer` is handed to an engine (``RoundSimulator(...,
tracer=t)``, ``run_fast(..., tracer=t)``, ``_Cluster(..., tracer=t)``,
``LiveCluster(..., tracer=t)``); the engine calls the typed helpers
below at its instrumentation points.  Every helper builds one plain
dict event, folds it into the tracer's always-on
:class:`~repro.obs.counters.ObsCounters`, and forwards it to each sink.

Disabled tracing is the *absence* of a tracer: instrumentation sites
test ``if tracer is not None`` and otherwise execute the exact code
they always did.  A tracer never draws randomness, so traced and
untraced seeded runs are byte-identical.

Round context: the round-based engines call :meth:`Tracer.round_start`,
which stamps subsequent events with that round number.  The
continuous-time stacks never start a round, so their events omit
``"round"`` and carry an explicit ``"t"`` (milliseconds) instead.

``thread_safe=True`` serialises emission under a lock — required when
the live threaded runtime (or any multi-threaded producer) shares one
tracer across threads.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence


class Tracer:
    """Emits typed trace events to counters plus any number of sinks."""

    def __init__(self, *sinks, thread_safe: bool = False):
        from repro.obs.counters import ObsCounters

        self.sinks = list(sinks)
        self.counters = ObsCounters()
        self._round: Optional[int] = None
        self._lock = threading.Lock() if thread_safe else None

    # -- plumbing -----------------------------------------------------------

    def emit(self, event: dict) -> None:
        """Dispatch one already-built event dict."""
        lock = self._lock
        if lock is None:
            self.counters.ingest(event)
            for sink in self.sinks:
                sink.write(event)
            return
        with lock:
            self.counters.ingest(event)
            for sink in self.sinks:
                sink.write(event)

    def close(self) -> None:
        """Close every sink (flushes file-backed sinks)."""
        for sink in self.sinks:
            sink.close()

    def _ctx(self, event: dict, extra: dict) -> dict:
        if self._round is not None and "round" not in extra:
            event["round"] = self._round
        if extra:
            event.update(extra)
        return event

    # -- run / round markers ------------------------------------------------

    def run_start(
        self, engine: str, *, continuous: bool = False, **extra
    ) -> None:
        """Mark the start of a run; resets the round context to 0.

        Continuous-time producers (DES, live runtime) pass
        ``continuous=True`` so no round context is established — their
        events carry an explicit ``t`` timestamp instead.
        """
        self._round = None if continuous else 0
        self.emit(self._ctx({"ev": "run_start", "engine": engine}, extra))

    def round_start(self, round_no: int, **extra) -> None:
        self._round = round_no
        event = {"ev": "round_start", "round": round_no}
        if extra:
            event.update(extra)
        self.emit(event)

    def run_end(self, **extra) -> None:
        self.emit(self._ctx({"ev": "run_end"}, extra))

    # -- message lifecycle --------------------------------------------------

    def gossip_sent(
        self, src: int, dst: int, port: Optional[int] = None, **extra
    ) -> None:
        event = {"ev": "gossip_sent", "src": src, "dst": dst}
        if port is not None:
            event["port"] = port
        self.emit(self._ctx(event, extra))

    def flood_sent(self, dst: int, port: int, count: int, **extra) -> None:
        self.emit(
            self._ctx(
                {"ev": "flood_sent", "dst": dst, "port": port, "count": count},
                extra,
            )
        )

    def accepted(
        self, node: int, port: int, *, valid: int, fabricated: int = 0, **extra
    ) -> None:
        self.emit(
            self._ctx(
                {
                    "ev": "accepted",
                    "node": node,
                    "port": port,
                    "valid": valid,
                    "fabricated": fabricated,
                },
                extra,
            )
        )

    def dropped(
        self,
        reason: str,
        *,
        node: Optional[int] = None,
        port: Optional[int] = None,
        count: int = 1,
        **extra,
    ) -> None:
        event = {"ev": "dropped", "reason": reason, "count": count}
        if node is not None:
            event["node"] = node
        if port is not None:
            event["port"] = port
        self.emit(self._ctx(event, extra))

    def delivered(
        self,
        node: Optional[int] = None,
        *,
        via: Optional[str] = None,
        count: int = 1,
        **extra,
    ) -> None:
        event = {"ev": "delivered", "count": count}
        if node is not None:
            event["node"] = node
        if via is not None:
            event["via"] = via
        self.emit(self._ctx(event, extra))

    # -- fault transitions ---------------------------------------------------

    def crash(self, nodes: Iterable[int], **extra) -> None:
        self.emit(
            self._ctx({"ev": "crash", "nodes": sorted(nodes)}, extra)
        )

    def heal(self, nodes: Iterable[int], **extra) -> None:
        self.emit(self._ctx({"ev": "heal", "nodes": sorted(nodes)}, extra))

    def partition(self, side_a: Iterable[int], **extra) -> None:
        self.emit(
            self._ctx({"ev": "partition", "nodes": sorted(side_a)}, extra)
        )

    def partition_heal(self, **extra) -> None:
        self.emit(self._ctx({"ev": "partition_heal"}, extra))

    # -- membership lifecycle -------------------------------------------------

    def member_join(self, nodes: Iterable[int], **extra) -> None:
        self.emit(
            self._ctx({"ev": "member_join", "nodes": sorted(nodes)}, extra)
        )

    def member_leave(self, nodes: Iterable[int], **extra) -> None:
        self.emit(
            self._ctx({"ev": "member_leave", "nodes": sorted(nodes)}, extra)
        )

    def member_expel(self, nodes: Iterable[int], **extra) -> None:
        self.emit(
            self._ctx({"ev": "member_expel", "nodes": sorted(nodes)}, extra)
        )

    def suspect(self, nodes: Iterable[int], **extra) -> None:
        """Failure-detector verdicts: ``nodes`` newly suspected."""
        self.emit(self._ctx({"ev": "suspect", "nodes": sorted(nodes)}, extra))

    def rehabilitate(self, nodes: Iterable[int], **extra) -> None:
        """Failure-detector verdicts: ``nodes`` responsive again."""
        self.emit(
            self._ctx({"ev": "rehabilitate", "nodes": sorted(nodes)}, extra)
        )

    # -- sweep orchestration -------------------------------------------------
    #
    # Emitted by :class:`repro.sweep.SweepRunner` in cell-index order —
    # a pure function of the cell list, never of the worker count or
    # completion order — so sweep event streams are as deterministic as
    # the figures they describe.  Sweeps carry no round context.

    def sweep_start(self, *, name: str, cells: int, pending: int, **extra) -> None:
        self._round = None
        self.emit(
            self._ctx(
                {
                    "ev": "sweep_start",
                    "name": name,
                    "cells": cells,
                    "pending": pending,
                },
                extra,
            )
        )

    def sweep_end(self, *, computed: int, cache_hits: int, **extra) -> None:
        self.emit(
            self._ctx(
                {
                    "ev": "sweep_end",
                    "computed": computed,
                    "cache_hits": cache_hits,
                },
                extra,
            )
        )

    def cell_start(self, *, index: int, series: str, x: float, **extra) -> None:
        self.emit(
            self._ctx(
                {"ev": "cell_start", "index": index, "series": series, "x": x},
                extra,
            )
        )

    def cell_cache_hit(self, *, index: int, source: str, **extra) -> None:
        self.emit(
            self._ctx(
                {"ev": "cell_cache_hit", "index": index, "source": source},
                extra,
            )
        )

    def cell_finish(
        self, *, index: int, value: float, cached: bool, **extra
    ) -> None:
        self.emit(
            self._ctx(
                {
                    "ev": "cell_finish",
                    "index": index,
                    "value": value,
                    "cached": cached,
                },
                extra,
            )
        )

    def cache_hit(self, *, key: str, tier: str, **extra) -> None:
        self.emit(
            self._ctx({"ev": "cache_hit", "key": key, "tier": tier}, extra)
        )

    def cache_miss(self, *, key: str, tier: str, **extra) -> None:
        self.emit(
            self._ctx({"ev": "cache_miss", "key": key, "tier": tier}, extra)
        )

    def cache_corrupt(self, *, key: str, tier: str, **extra) -> None:
        self.emit(
            self._ctx(
                {"ev": "cache_corrupt", "key": key, "tier": tier}, extra
            )
        )
