"""Structured tracing and metrics (the observability spine).

Every execution stack — the exact object-level engine, the vectorised
fast engine, the discrete-event measurement platform, and the live
threaded runtime — accepts an optional :class:`Tracer` and emits the
same typed event stream through it: round/run markers, per-message
``gossip_sent`` / ``accepted`` / ``dropped`` / ``delivered`` events, and
fault transitions (``crash`` / ``heal`` / ``partition``).  Tracing is
zero-overhead when disabled (every instrumentation site is a single
``if tracer is not None`` check and no tracer draws any randomness), so
seeded runs are byte-identical with tracing on, off, or absent.

Sinks are pluggable: :class:`MemorySink` (in-memory ring buffer),
:class:`JsonlSink` (one JSON object per line), and
:class:`PrometheusSink` (text exposition of the aggregated counters).
:class:`ObsCounters` aggregates per-node / per-port / per-reason
counters from the stream and can *reconcile* them against the
engine-computed :class:`~repro.sim.results.RunResult` and
:class:`~repro.des.measurement.MeasurementResult` metrics as a
cross-check; :mod:`repro.obs.replay` turns a recorded JSONL trace back
into per-round summaries (the ``repro trace`` CLI subcommand).
"""

from repro.obs.counters import ObsCounters
from repro.obs.events import (
    DROP_REASONS,
    EV_ACCEPTED,
    EV_CELL_CACHE_HIT,
    EV_CELL_FINISH,
    EV_CELL_START,
    EV_CRASH,
    EV_DELIVERED,
    EV_DROPPED,
    EV_FLOOD_SENT,
    EV_GOSSIP_SENT,
    EV_HEAL,
    EV_PARTITION,
    EV_PARTITION_HEAL,
    EV_ROUND_START,
    EV_RUN_END,
    EV_RUN_START,
    EV_SWEEP_END,
    EV_SWEEP_START,
    EVENT_TYPES,
)
from repro.obs.replay import TraceSummary, read_trace, summarize
from repro.obs.sinks import JsonlSink, MemorySink, PrometheusSink
from repro.obs.tracer import Tracer

__all__ = [
    "DROP_REASONS",
    "EVENT_TYPES",
    "EV_ACCEPTED",
    "EV_CELL_CACHE_HIT",
    "EV_CELL_FINISH",
    "EV_CELL_START",
    "EV_CRASH",
    "EV_DELIVERED",
    "EV_DROPPED",
    "EV_FLOOD_SENT",
    "EV_GOSSIP_SENT",
    "EV_HEAL",
    "EV_PARTITION",
    "EV_PARTITION_HEAL",
    "EV_ROUND_START",
    "EV_RUN_END",
    "EV_RUN_START",
    "EV_SWEEP_END",
    "EV_SWEEP_START",
    "JsonlSink",
    "MemorySink",
    "ObsCounters",
    "PrometheusSink",
    "TraceSummary",
    "Tracer",
    "read_trace",
    "summarize",
]
