"""Cluster experiment drivers (the Section 8 experiment classes).

Two experiment shapes:

- **Throughput streams** (Figures 10–11): a single source multicasts a
  stream of messages at a fixed rate; every correct process measures its
  received throughput (with 5 % warm-up/cool-down trimming) and its
  delivery latencies.  Messages purge after ``purge_rounds`` rounds, so
  an attacked, slowed protocol visibly *loses* messages.
- **Single-message propagation** (Figure 9): every process continuously
  multicasts background traffic; the source then multicasts one tagged
  message whose hop counter each receiver logs, giving propagation time
  in rounds that is directly comparable to the round-based simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import MessageIdFactory
from repro.des.attacker import AttackerProcess
from repro.des.environment import SimEnvironment
from repro.des.measurement import DeliveryRecord, MeasurementResult
from repro.des.node import GossipNode
from repro.crypto.signatures import SignatureRegistry
from repro.faults.des import DesFaultController
from repro.faults.plan import FaultPlan
from repro.util import SeedSequenceFactory, check_fraction, check_probability
from repro.util.rng import SeedLike


@dataclass(frozen=True)
class ClusterConfig:
    """One measured-cluster configuration (defaults mirror Section 8).

    .. note:: Direct construction is the legacy entry point for
       *running* experiments; prefer :class:`repro.api.Experiment` with
       ``.run(engine="des")``.  ``ClusterConfig`` remains fully
       supported as the DES stack's native config object.
    """

    protocol: Union[ProtocolKind, str] = ProtocolKind.DRUM
    n: int = 50
    malicious_fraction: float = 0.1
    attack: Optional[AttackSpec] = None
    fan_out: int = 4
    loss: float = 0.01
    round_duration_ms: float = 1000.0
    round_jitter: float = 0.1
    purge_rounds: int = 10
    max_sends_per_partner: int = 80
    #: Source send rate in messages per second (the paper uses 40).
    send_rate: float = 40.0
    #: Stream length; the paper sends 10,000 — the default here keeps a
    #: full benchmark sweep to minutes, and scales linearly.
    messages: int = 400
    latency_range_ms: Tuple[float, float] = (0.5, 2.0)
    warmup_rounds: int = 3
    #: Background multicasts per node per round in single-message mode
    #: ("all the processes have messages to send").  A modest default
    #: keeps every buffer and digest non-trivially populated without
    #: drowning the discrete-event run in background data exchange.
    background_rate: float = 0.25
    #: Injected faults (see :mod:`repro.faults`): the same plans the
    #: round engines run, with round windows anchored to the global
    #: fault clock (round r = [(r-1)·round_duration_ms, r·round_ms)).
    #: Accepts a :class:`FaultPlan` or a CLI spec string.
    faults: Optional[Union[FaultPlan, str]] = None

    def __post_init__(self) -> None:
        if isinstance(self.protocol, str):
            object.__setattr__(self, "protocol", ProtocolKind(self.protocol))
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        check_fraction("malicious_fraction", self.malicious_fraction, allow_zero=True)
        check_probability("loss", self.loss)
        if self.send_rate <= 0:
            raise ValueError(f"send_rate must be > 0, got {self.send_rate}")
        if self.messages < 1:
            raise ValueError(f"messages must be >= 1, got {self.messages}")
        if self.attack is not None:
            victims = self.attack.victim_count(self.n)
            if not 1 <= victims <= self.num_correct:
                raise ValueError(
                    f"attack targets {victims} processes; only "
                    f"{self.num_correct} are correct"
                )
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultPlan.parse(self.faults))
        if self.faults is not None:
            if not isinstance(self.faults, FaultPlan):
                raise TypeError(
                    f"faults must be a FaultPlan or spec string, got "
                    f"{self.faults!r}"
                )
            if self.faults.is_empty:
                object.__setattr__(self, "faults", None)
            else:
                # Cluster experiments have no fixed round horizon; event
                # start rounds are validated against group size only.
                self.faults.validate_for(
                    n=self.n,
                    num_alive_correct=self.num_correct,
                    max_rounds=10**9,
                )

    # -- group layout (mirrors repro.sim.scenario.Scenario) -------------------

    @property
    def num_malicious(self) -> int:
        return int(round(self.malicious_fraction * self.n))

    @property
    def num_correct(self) -> int:
        return self.n - self.num_malicious

    @property
    def source(self) -> int:
        return 0

    def correct_ids(self) -> List[int]:
        return list(range(self.num_correct))

    def attacked_ids(self) -> List[int]:
        if self.attack is None:
            return []
        return list(range(self.attack.victim_count(self.n)))

    def receiver_ids(self) -> List[int]:
        """Correct processes excluding the source — where the paper
        measures throughput and latency."""
        return [pid for pid in self.correct_ids() if pid != self.source]

    def protocol_config(self) -> ProtocolConfig:
        return ProtocolConfig(
            kind=self.protocol,
            fan_out=self.fan_out,
            purge_rounds=self.purge_rounds,
            max_sends_per_partner=self.max_sends_per_partner,
            round_duration_ms=self.round_duration_ms,
            round_jitter=self.round_jitter,
        )

    def with_(self, **changes) -> "ClusterConfig":
        return replace(self, **changes)


class _Cluster:
    """A built cluster: environment, nodes, attacker, delivery log."""

    def __init__(
        self, config: ClusterConfig, seed: SeedLike = None, *, tracer=None
    ):
        self.config = config
        # Observability: a repro.obs Tracer or None.  DES events are
        # continuous-time, stamped with ``t`` (sim ms); the tracer draws
        # no randomness, so traced and untraced runs are identical.
        self.tracer = tracer
        seeds = SeedSequenceFactory(seed)
        self.env = SimEnvironment(
            loss=config.loss,
            latency_range_ms=config.latency_range_ms,
            seed=seeds.next_seed(),
            tracer=tracer,
        )
        self.created_at: Dict[Tuple[int, int], float] = {}
        self.deliveries: List[DeliveryRecord] = []
        #: Per-message buffer-lifetime overrides, honoured by every node
        #: (a tracked message can outlive normal purging everywhere).
        self.ttl_overrides: Dict[Tuple[int, int], int] = {}

        proto_cfg = config.protocol_config()
        members = list(range(config.n))
        #: One signature trust domain per cluster: the bindings die with
        #: the run instead of accumulating in the module-level registry.
        self.registry = SignatureRegistry()
        #: Serial counter scoped to this cluster: repeated seeded runs
        #: mint identical message ids, so envelopes compare byte-equal.
        self.msg_ids = MessageIdFactory()
        self.nodes: Dict[int, GossipNode] = {}
        for pid in config.correct_ids():
            self.nodes[pid] = GossipNode(
                self.env,
                pid,
                proto_cfg,
                members,
                seed=seeds.next_seed(),
                on_deliver=self._record_delivery,
                ttl_policy=lambda m: self.ttl_overrides.get(m.msg_id),
                registry=self.registry,
                id_factory=self.msg_ids,
            )
        keys = {pid: node.keys.public for pid, node in self.nodes.items()}
        for node in self.nodes.values():
            node.learn_keys(keys)

        self.attacker: Optional[AttackerProcess] = None
        if config.attack is not None:
            self.attacker = AttackerProcess(
                self.env,
                config.attack,
                config.protocol,
                config.attacked_ids(),
                round_duration_ms=config.round_duration_ms,
                seed=seeds.next_seed(),
            )

        # Fault wiring comes last, and its seed draw only happens when a
        # plan is present — faultless seeded clusters replay their
        # historical streams exactly.
        self.fault_controller: Optional[DesFaultController] = None
        if config.faults is not None:
            self.fault_controller = DesFaultController(
                config.faults,
                env=self.env,
                nodes=self.nodes,
                n=config.n,
                num_alive_correct=config.num_correct,
                round_duration_ms=config.round_duration_ms,
                seed=seeds.next_seed(),
                tracer=tracer,
            )
            self.fault_controller.install()

        # run_start last: every seed position above is already consumed.
        if tracer is not None:
            tracer.run_start(
                "des", continuous=True,
                protocol=config.protocol.value, n=config.n,
            )

    def _record_delivery(self, pid: int, message, now: float) -> None:
        created = self.created_at.get(message.msg_id)
        if created is None:
            return  # background traffic outside the measured stream
        self.deliveries.append(
            DeliveryRecord(
                receiver=pid,
                msg_id=message.msg_id,
                delivered_at_ms=now,
                latency_ms=now - created,
                round_counter=message.round_counter,
            )
        )
        if self.tracer is not None:
            self.tracer.delivered(
                node=pid, t=now, round_counter=message.round_counter
            )

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()
        if self.attacker is not None:
            self.attacker.start()

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()
        if self.attacker is not None:
            self.attacker.stop()

    def multicast_tracked(
        self, pid: int, payload: object, *, ttl: Optional[int] = None
    ) -> Tuple[int, int]:
        """Multicast from ``pid`` and track its deliveries.

        The source's own delivery (latency 0, hop counter 0) is recorded
        here because the message id only becomes trackable once minted.
        ``ttl`` lets this one message outlive normal purging at every
        node — but the source's own copy is added by ``multicast``
        before the id is known, so the TTL is registered first through a
        placeholder and the source's buffer entry patched after.
        """
        created = self.env.now()
        node = self.nodes[pid]
        if ttl is not None:
            # Pre-register under a sentinel the policy closure reads at
            # delivery time; multicast() mints the real id synchronously.
            original_policy = node.ttl_policy
            node.ttl_policy = lambda m: ttl
            try:
                msg = node.multicast(payload)
            finally:
                node.ttl_policy = original_policy
            self.ttl_overrides[msg.msg_id] = ttl
        else:
            msg = node.multicast(payload)
        self.created_at[msg.msg_id] = created
        self.deliveries.append(
            DeliveryRecord(
                receiver=pid,
                msg_id=msg.msg_id,
                delivered_at_ms=created,
                latency_ms=0.0,
                round_counter=0,
            )
        )
        if self.tracer is not None:
            self.tracer.delivered(node=pid, via="source", t=created)
        return msg.msg_id


def run_throughput_experiment(
    config: ClusterConfig, *, seed: SeedLike = None, tracer=None
) -> MeasurementResult:
    """Stream ``config.messages`` from the source and measure reception."""
    cluster = _Cluster(config, seed, tracer=tracer)
    cluster.start()

    t0 = config.warmup_rounds * config.round_duration_ms
    interval = 1000.0 / config.send_rate
    for i in range(config.messages):
        when = t0 + i * interval

        def _send(index: int = i) -> None:
            cluster.multicast_tracked(config.source, f"msg-{index}".encode())

        cluster.env.loop.schedule(when, _send)

    t_send_end = t0 + config.messages * interval
    drain = (config.purge_rounds + 3) * config.round_duration_ms
    horizon_ms = t_send_end + drain
    cluster.env.loop.run_until(horizon_ms)
    cluster.stop()

    reachable: Optional[List[int]] = None
    faults_desc: Optional[str] = None
    if cluster.fault_controller is not None:
        faults_desc = config.faults.describe()
        reachable_ids = cluster.fault_controller.reachable_ids(horizon_ms)
        reachable = [
            pid for pid in config.receiver_ids() if pid in reachable_ids
        ]

    result = MeasurementResult(
        protocol=config.protocol.value,
        n=config.n,
        correct_receivers=config.receiver_ids(),
        send_rate=config.send_rate,
        messages_sent=config.messages,
        experiment_start_ms=t0,
        experiment_end_ms=t_send_end,
        deliveries=cluster.deliveries,
        reachable_receivers=reachable,
        faults=faults_desc,
    )
    if tracer is not None:
        tracer.run_end(
            t=horizon_ms,
            delivered=len(cluster.deliveries),
            messages=config.messages,
        )
    return result


def run_single_message_experiment(
    config: ClusterConfig,
    runs: int,
    *,
    seed: SeedLike = None,
    fraction: float = 0.99,
    horizon_rounds: int = 40,
) -> np.ndarray:
    """Per-run propagation time (in rounds) of one tagged message.

    Matches the Figure 9 methodology: background traffic keeps every
    buffer busy, the source multicasts one tagged message, every correct
    receiver logs its hop counter, and the run's result is the counter
    by which ``fraction`` of the correct processes had logged it.  The
    tagged message gets a per-message TTL covering the whole horizon
    (the simulation assumption that M is never purged) while background
    traffic purges normally.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    results = []
    seeds = SeedSequenceFactory(seed)
    long_lived = config
    for _ in range(runs):
        cluster = _Cluster(long_lived, seeds.next_seed())
        cluster.start()

        # Background multicasts: every node keeps its buffer non-empty.
        if long_lived.background_rate > 0:
            bg_interval = long_lived.round_duration_ms / long_lived.background_rate
            horizon_ms = (
                long_lived.warmup_rounds + horizon_rounds
            ) * long_lived.round_duration_ms
            for pid, node in cluster.nodes.items():
                offset = float(cluster.env.rng.uniform(0, bg_interval))
                when = offset
                k = 0
                while when < horizon_ms:
                    def _bg(node=node, k=k) -> None:
                        if node.running:
                            node.multicast(f"bg-{node.pid}-{k}".encode())

                    cluster.env.loop.schedule(when, _bg)
                    when += bg_interval
                    k += 1

        t_inject = long_lived.warmup_rounds * long_lived.round_duration_ms
        tracked: Dict[str, Tuple[int, int]] = {}

        def _inject() -> None:
            tracked["id"] = cluster.multicast_tracked(
                long_lived.source, b"tracked-message",
                ttl=horizon_rounds + 5,
            )

        cluster.env.loop.schedule(t_inject, _inject)
        cluster.env.loop.run_until(
            t_inject + horizon_rounds * long_lived.round_duration_ms
        )
        cluster.stop()

        result = MeasurementResult(
            protocol=long_lived.protocol.value,
            n=long_lived.n,
            correct_receivers=long_lived.receiver_ids(),
            send_rate=0.0,
            messages_sent=1,
            experiment_start_ms=t_inject,
            experiment_end_ms=cluster.env.now(),
            deliveries=cluster.deliveries,
        )
        results.append(result.propagation_rounds(tracked["id"], fraction))
    return np.asarray(results)
