"""Discrete-event measurement platform (the paper's Section 8 testbed).

The paper's measurements ran a multithreaded Java implementation on a
50-machine Emulab LAN.  This package reproduces that experiment class on
a deterministic discrete-event engine with virtual milliseconds: the
*full* protocol executes — push-offer/push-reply/data handshake,
digests, unsynchronised jittered rounds, sealed random ports, per-round
resource quotas, buffer purging, per-partner send limits — with
multi-message streams, real attackers, and throughput/latency
measurement.  The same node logic also runs under real threads over
in-memory or UDP transports (:mod:`repro.runtime`).

Key entry points:

- :class:`~repro.des.cluster.ClusterConfig` /
  :func:`~repro.des.cluster.run_throughput_experiment` — Figure 10/11
  style stream experiments;
- :func:`~repro.des.cluster.run_single_message_experiment` — Figure 9
  style hop-count propagation measurements;
- :class:`~repro.des.node.GossipNode` — the protocol node itself.
"""

from repro.des.engine import EventLoop
from repro.des.environment import Environment, SimEnvironment
from repro.des.node import GossipNode
from repro.des.attacker import AttackerProcess
from repro.des.measurement import DeliveryRecord, MeasurementResult
from repro.des.cluster import (
    ClusterConfig,
    run_single_message_experiment,
    run_throughput_experiment,
)

__all__ = [
    "AttackerProcess",
    "ClusterConfig",
    "DeliveryRecord",
    "Environment",
    "EventLoop",
    "GossipNode",
    "MeasurementResult",
    "SimEnvironment",
    "run_single_message_experiment",
    "run_throughput_experiment",
]
