"""DoS attacker processes for the measurement platform.

An attacker floods each victim's well-known ports with fabricated
payloads at the specified per-round rate.  The junk is spread over
several bursts per round at a phase unrelated to any victim's round
timer (rounds are locally jittered, so the attacker could not aim at
round starts even if it tried — the paper's argument for why bogus and
authentic messages are discarded with equal probability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.adversary.attacks import AttackSpec, PortLoad
from repro.core.config import ProtocolKind
from repro.des.environment import Environment
from repro.net.address import (
    PORT_PULL_REPLY,
    PORT_PULL_REQUEST,
    PORT_PUSH_OFFER,
    Address,
)
from repro.util import derive_rng
from repro.util.rng import SeedLike


@dataclass(frozen=True, slots=True)
class FabricatedPayload:
    """Junk that consumes a quota slot and then fails every sanity check."""

    nonce: int


class AttackerProcess:
    """Floods a set of victims once started."""

    def __init__(
        self,
        env: Environment,
        spec: AttackSpec,
        kind: ProtocolKind,
        victims: Sequence[int],
        *,
        attacker_id: int = -666,
        round_duration_ms: float = 1000.0,
        bursts_per_round: int = 4,
        seed: SeedLike = None,
    ):
        if bursts_per_round < 1:
            raise ValueError(
                f"bursts_per_round must be >= 1, got {bursts_per_round}"
            )
        self.env = env
        self.spec = spec
        self.kind = kind
        self.victims = list(victims)
        self.attacker_id = attacker_id
        self.round_duration_ms = float(round_duration_ms)
        self.bursts_per_round = bursts_per_round
        self.rng = derive_rng(seed)
        self.running = False
        self.injected_total = 0
        self._nonce = 0
        self._handle: Optional[object] = None

    def _port_rates(self) -> List:
        """(port, per-round rate) pairs for each victim.

        In the measured implementation every push-capable protocol
        receives push traffic on the well-known *offer* port.
        """
        load: PortLoad = self.spec.port_load(self.kind)
        pairs = []
        if load.push > 0:
            pairs.append((PORT_PUSH_OFFER, load.push))
        if load.pull_request > 0:
            pairs.append((PORT_PULL_REQUEST, load.pull_request))
        if load.pull_reply > 0:
            pairs.append((PORT_PULL_REPLY, load.pull_reply))
        return pairs

    def start(self) -> None:
        """Begin flooding at a random phase."""
        if self.running:
            raise RuntimeError("attacker already running")
        self.running = True
        offset = float(
            self.rng.uniform(0, self.round_duration_ms / self.bursts_per_round)
        )
        self._handle = self.env.schedule(offset, self._burst)

    def stop(self) -> None:
        self.running = False
        if self._handle is not None:
            self.env.cancel(self._handle)
            self._handle = None

    def _burst(self) -> None:
        if not self.running:
            return
        # The spoofed source claims a node id *outside* the group (the
        # same convention as the live runtime's attacker): the flood
        # must stay distinguishable from member traffic for fault
        # injection, where a partition cuts member links but never
        # shields victims from an external DoS stream.
        src = (
            Address(10**6, 0)
            if self.attacker_id < 0
            else Address(self.attacker_id, 0)
        )
        interval = self.round_duration_ms / self.bursts_per_round
        rates = self._port_rates()
        for victim in self.victims:
            for port, rate in rates:
                per_burst = rate / self.bursts_per_round
                count = int(per_burst)
                frac = per_burst - count
                if frac > 0 and self.rng.random() < frac:
                    count += 1
                if not count:
                    continue
                dst = Address(victim, port)
                # Spread the packets at independent uniform offsets:
                # victims' rounds are jittered, so from a victim's
                # perspective the flood is a uniform stream — which is
                # what makes a fabricated message exactly as likely to
                # win an acceptance slot as a valid one (Section 4).
                # One vectorised draw yields the same stream values as
                # ``count`` scalar ``uniform`` calls.
                offsets = self.rng.uniform(0.0, interval, size=count)
                for i in range(count):
                    self._nonce += 1
                    payload = FabricatedPayload(nonce=self._nonce)
                    self.env.schedule(
                        float(offsets[i]),
                        lambda d=dst, p=payload: self.env.send(src, d, p),
                    )
                self.injected_total += count
        self._handle = self.env.schedule(interval, self._burst)
