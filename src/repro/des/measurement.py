"""Measurement records and results for cluster experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.cdf import empirical_cdf
from repro.metrics.latency import (
    mean_latency_per_process,
    propagation_round_percentile,
)
from repro.metrics.throughput import ThroughputSummary, received_throughput

MessageId = Tuple[int, int]


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery of one message at one process."""

    receiver: int
    msg_id: MessageId
    delivered_at_ms: float
    latency_ms: float
    round_counter: int


@dataclass
class MeasurementResult:
    """Everything a cluster experiment produced."""

    protocol: str
    n: int
    correct_receivers: List[int]
    send_rate: float
    messages_sent: int
    experiment_start_ms: float
    experiment_end_ms: float
    deliveries: List[DeliveryRecord] = field(default_factory=list)
    #: Receivers that could possibly get the stream given the injected
    #: faults (not crashed for good, not stranded by an unhealed
    #: partition); None on faultless experiments, where every correct
    #: receiver is reachable.
    reachable_receivers: Optional[List[int]] = None
    #: The fault plan's spec string (``FaultPlan.describe()``), for
    #: reports; None on faultless experiments.
    faults: Optional[str] = None
    #: Churn-aware metrics from :func:`repro.des.churn.run_churn_experiment`:
    #: the resolved membership ``timeline`` (the cross-stack determinism
    #: witness), realised ``join_latency`` and ``view_convergence`` in
    #: rounds, and joined/left/expelled counts.  None on churn-free
    #: experiments, keeping their envelopes byte-unchanged.
    churn: Optional[Dict[str, object]] = None

    # -- throughput (Figure 10) -----------------------------------------------

    def throughput(self) -> ThroughputSummary:
        """Average received throughput at each correct receiver.

        Computed as distinct messages delivered divided by the stream
        duration.  In steady state this equals the paper's
        trimmed-window rate (the paper streams 10,000 messages over
        250 s, so its pipeline fill/drain is negligible); for the
        shorter default streams here it avoids the fill/drain bias while
        measuring the same thing — how much of the offered load each
        receiver actually gets.  Lost (purged-before-delivery) messages
        lower it below the send rate exactly as in Figure 10.
        """
        window_sec = (self.experiment_end_ms - self.experiment_start_ms) / 1000.0
        if window_sec <= 0:
            raise ValueError("empty experiment window")
        distinct: Dict[int, set] = {pid: set() for pid in self.correct_receivers}
        for record in self.deliveries:
            if record.receiver in distinct:
                distinct[record.receiver].add(record.msg_id)
        per_process = {
            pid: len(ids) / window_sec for pid, ids in distinct.items()
        }
        rates = np.array(list(per_process.values()))
        if rates.size == 0:
            raise ValueError("no receivers to compute throughput over")
        return ThroughputSummary(
            mean_msgs_per_sec=float(rates.mean()),
            min_msgs_per_sec=float(rates.min()),
            max_msgs_per_sec=float(rates.max()),
            per_process=per_process,
        )

    def windowed_throughput(self, *, trim_fraction: float = 0.05) -> ThroughputSummary:
        """The paper's literal trimmed-window rate (best for long streams)."""
        times: Dict[int, List[float]] = {pid: [] for pid in self.correct_receivers}
        for record in self.deliveries:
            if record.receiver in times:
                times[record.receiver].append(record.delivered_at_ms)
        return received_throughput(
            times,
            self.experiment_start_ms,
            self.experiment_end_ms,
            trim_fraction=trim_fraction,
        )

    # -- latency (Figure 11) ------------------------------------------------------

    def latencies_by_process(self) -> Dict[int, List[float]]:
        """Raw delivery latencies grouped by receiver."""
        out: Dict[int, List[float]] = {pid: [] for pid in self.correct_receivers}
        for record in self.deliveries:
            if record.receiver in out:
                out[record.receiver].append(record.latency_ms)
        return out

    def mean_latency_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """CDF over per-process average latencies (Figure 11's axes)."""
        means = mean_latency_per_process(self.latencies_by_process())
        return empirical_cdf(list(means.values()))

    # -- propagation in rounds (Figure 9) --------------------------------------------

    def logged_rounds_for(self, msg_id: MessageId) -> np.ndarray:
        """Each correct receiver's logged hop counter for one message.

        Processes that never received it contribute NaN (censored).
        """
        by_receiver: Dict[int, float] = {
            pid: float("nan") for pid in self.correct_receivers
        }
        for record in self.deliveries:
            if record.msg_id == msg_id and record.receiver in by_receiver:
                by_receiver[record.receiver] = record.round_counter
        return np.array([by_receiver[pid] for pid in self.correct_receivers])

    def propagation_rounds(self, msg_id: MessageId, fraction: float = 0.99) -> float:
        """Rounds for the message to reach ``fraction`` of correct receivers."""
        return propagation_round_percentile(
            self.logged_rounds_for(msg_id), fraction
        )

    def delivery_ratio(self) -> float:
        """Fraction of (message, receiver) pairs actually delivered."""
        possible = self.messages_sent * len(self.correct_receivers)
        if possible == 0:
            return 0.0
        delivered = sum(
            1 for r in self.deliveries if r.receiver in set(self.correct_receivers)
        )
        return delivered / possible

    # -- graceful degradation under faults ----------------------------------

    def residual_reliability(self) -> float:
        """Delivery ratio counted only over *reachable* receivers.

        Under a fault plan, receivers that crash for good or end up on
        the wrong side of a never-healing partition cannot possibly get
        the stream; counting them would conflate protocol degradation
        with plain unreachability.  Faultless experiments have
        ``reachable_receivers is None`` and this equals
        :meth:`delivery_ratio`.
        """
        receivers = (
            self.correct_receivers
            if self.reachable_receivers is None
            else self.reachable_receivers
        )
        possible = self.messages_sent * len(receivers)
        if possible == 0:
            return 0.0
        eligible = set(receivers)
        distinct = set()
        for record in self.deliveries:
            if record.receiver in eligible:
                distinct.add((record.receiver, record.msg_id))
        return len(distinct) / possible

    # -- serialisation -------------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-ready summary (per-delivery records are elided)."""
        out: Dict[str, object] = {
            "protocol": self.protocol,
            "n": self.n,
            "correct_receivers": list(self.correct_receivers),
            "send_rate": self.send_rate,
            "messages_sent": self.messages_sent,
            "experiment_start_ms": self.experiment_start_ms,
            "experiment_end_ms": self.experiment_end_ms,
            "deliveries": len(self.deliveries),
            "delivery_ratio": self.delivery_ratio(),
        }
        if self.faults is not None:
            out["faults"] = self.faults
            out["residual_reliability"] = self.residual_reliability()
            if self.reachable_receivers is not None:
                out["reachable_receivers"] = list(self.reachable_receivers)
        if self.churn is not None:
            out["churn"] = dict(self.churn)
        return out

    def to_dict(self) -> Dict[str, object]:
        """The unified versioned result envelope (see ``repro.api``).

        Same ``{schema, version, kind, config, metrics, data}`` layout
        as the round-based results, with the shared metric names:
        ``reliability`` (residual reliability), ``rounds_to_threshold``
        / ``rounds_to_heal`` (None — continuous-time experiments measure
        latency instead), and ``latency_ms`` ``{mean, p99}`` over the
        delivery log.  ``data`` keeps the full per-delivery records, so
        :meth:`from_dict` rebuilds a result supporting every metric.
        """
        latencies = [
            r.latency_ms for r in self.deliveries if r.latency_ms > 0.0
        ]
        latency = None
        if latencies:
            arr = np.asarray(latencies)
            latency = {
                "mean": float(arr.mean()),
                "p99": float(np.percentile(arr, 99)),
            }
        metrics = {
            "reliability": self.residual_reliability(),
            "rounds_to_threshold": None,
            "rounds_to_heal": None,
            "latency_ms": latency,
            "throughput_msgs_per_sec": self.throughput().mean_msgs_per_sec
            if self.correct_receivers
            and self.experiment_end_ms > self.experiment_start_ms
            else None,
        }
        data = {
            "deliveries": [
                [
                    r.receiver,
                    [r.msg_id[0], r.msg_id[1]],
                    r.delivered_at_ms,
                    r.latency_ms,
                    r.round_counter,
                ]
                for r in self.deliveries
            ],
            "reachable_receivers": None
            if self.reachable_receivers is None
            else list(self.reachable_receivers),
            "faults": self.faults,
        }
        if self.churn is not None:
            data["churn"] = dict(self.churn)
        config = {
            "protocol": self.protocol,
            "n": self.n,
            "correct_receivers": list(self.correct_receivers),
            "send_rate": self.send_rate,
            "messages_sent": self.messages_sent,
            "experiment_start_ms": self.experiment_start_ms,
            "experiment_end_ms": self.experiment_end_ms,
        }
        return {
            "schema": "repro.result",
            "version": 1,
            "kind": "measurement",
            "config": config,
            "metrics": metrics,
            "data": data,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MeasurementResult":
        """Rebuild a :class:`MeasurementResult` from :meth:`to_dict`."""
        from repro.sim.results import check_envelope

        check_envelope(data, "measurement")
        config = data["config"]
        body = data["data"]
        return cls(
            protocol=config["protocol"],
            n=config["n"],
            correct_receivers=list(config["correct_receivers"]),
            send_rate=config["send_rate"],
            messages_sent=config["messages_sent"],
            experiment_start_ms=config["experiment_start_ms"],
            experiment_end_ms=config["experiment_end_ms"],
            deliveries=[
                DeliveryRecord(
                    receiver=rec[0],
                    msg_id=(rec[1][0], rec[1][1]),
                    delivered_at_ms=rec[2],
                    latency_ms=rec[3],
                    round_counter=rec[4],
                )
                for rec in body["deliveries"]
            ],
            reachable_receivers=body.get("reachable_receivers"),
            faults=body.get("faults"),
            churn=body.get("churn"),
        )
