"""The node's runtime environment abstraction.

:class:`~repro.des.node.GossipNode` is written against this small
interface — a clock, a timer facility, and a datagram service — so the
identical node logic runs on the deterministic discrete-event engine
(:class:`SimEnvironment`) and under real threads and sockets
(:class:`repro.runtime.env.RealTimeEnvironment`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.des.engine import EventLoop
from repro.net.address import Address
from repro.util import check_probability, derive_rng
from repro.util.rng import SeedLike

Handler = Callable[[Address, object], None]


class Environment(ABC):
    """Clock + timers + datagrams, as seen by one or more nodes."""

    @abstractmethod
    def now(self) -> float:
        """Current time in milliseconds."""

    @abstractmethod
    def schedule(self, delay_ms: float, fn: Callable[[], None]) -> object:
        """Run ``fn`` after ``delay_ms``; returns a cancellable handle."""

    @abstractmethod
    def cancel(self, handle: object) -> None:
        """Cancel a scheduled callback."""

    @abstractmethod
    def bind(self, addr: Address, handler: Handler) -> None:
        """Receive datagrams addressed to ``addr``."""

    @abstractmethod
    def unbind(self, addr: Address) -> None:
        """Stop receiving on ``addr``."""

    @abstractmethod
    def send(self, src: Address, dst: Address, payload: object) -> None:
        """Send one datagram (may be lost; closed ports swallow silently)."""

    @property
    @abstractmethod
    def rng(self) -> np.random.Generator:
        """Source of randomness for protocol decisions."""


class SimEnvironment(Environment):
    """Deterministic environment over an :class:`EventLoop`.

    Datagrams experience i.i.d. Bernoulli loss and a uniform delivery
    latency — the paper's LAN model (latency well under half a round).
    """

    def __init__(
        self,
        loop: Optional[EventLoop] = None,
        *,
        loss: float = 0.0,
        latency_range_ms: Tuple[float, float] = (0.5, 2.0),
        seed: SeedLike = None,
        tracer=None,
    ):
        check_probability("loss", loss)
        lo, hi = latency_range_ms
        if not 0 <= lo <= hi:
            raise ValueError(
                f"latency_range_ms must satisfy 0 <= lo <= hi, got {latency_range_ms}"
            )
        self.loop = loop if loop is not None else EventLoop()
        self.loss = float(loss)
        self.latency_range_ms = (float(lo), float(hi))
        self._rng = derive_rng(seed)
        self._handlers: Dict[Address, Handler] = {}
        self.sent = 0
        self.lost = 0
        self.dead_lettered = 0
        self.blocked = 0
        self.duplicated = 0
        # Fault-injection hooks, assigned *after* construction (so the
        # constructor's seed position never moves) by the cluster's
        # fault wiring; each draws extra randomness only when set, which
        # keeps faultless seeded runs on their historical streams.
        #: Replacement loss sampler (``delivered() -> bool``), e.g. a
        #: :class:`~repro.faults.gilbert.GilbertElliottModel`; overrides
        #: the scalar ``loss``.
        self.loss_model = None
        #: A :class:`~repro.faults.plan.LinkFaults` for timing shaping:
        #: extra delay/jitter, reordering, duplication.
        self.link_faults = None
        #: Drop predicate ``(src_node, dst_node) -> bool`` for crash /
        #: partition / stall windows.
        self.block_fn = None
        # Observability: a repro.obs Tracer or None.  The DES is
        # continuous-time, so events carry ``t`` (sim milliseconds)
        # instead of a round number.  The tracer draws no randomness.
        self._tracer = tracer

    def now(self) -> float:
        return self.loop.now

    def schedule(self, delay_ms: float, fn: Callable[[], None]) -> object:
        return self.loop.schedule(delay_ms, fn)

    def cancel(self, handle: object) -> None:
        handle.cancel()

    def bind(self, addr: Address, handler: Handler) -> None:
        self._handlers[addr] = handler

    def unbind(self, addr: Address) -> None:
        self._handlers.pop(addr, None)

    def is_bound(self, addr: Address) -> bool:
        """True while some node listens on ``addr``."""
        return addr in self._handlers

    def send(self, src: Address, dst: Address, payload: object) -> None:
        self.sent += 1
        tr = self._tracer
        if tr is not None:
            tr.gossip_sent(src.node, dst.node, dst.port, t=self.loop.now)
        if self.block_fn is not None and self.block_fn(src.node, dst.node):
            # A crashed machine or partition cut, not a lossy link:
            # counted separately, no randomness consumed.
            self.blocked += 1
            if tr is not None:
                tr.dropped(
                    "partition", node=dst.node, port=dst.port, t=self.loop.now
                )
            return
        if self.loss_model is not None:
            if not self.loss_model.delivered():
                self.lost += 1
                if tr is not None:
                    tr.dropped(
                        "loss", node=dst.node, port=dst.port, t=self.loop.now
                    )
                return
        elif self.loss and self._rng.random() < self.loss:
            self.lost += 1
            if tr is not None:
                tr.dropped(
                    "loss", node=dst.node, port=dst.port, t=self.loop.now
                )
            return
        lo, hi = self.latency_range_ms
        latency = lo if hi == lo else float(self._rng.uniform(lo, hi))

        def _deliver() -> None:
            handler = self._handlers.get(dst)
            if handler is None:
                self.dead_lettered += 1
                if tr is not None:
                    tr.dropped(
                        "closed", node=dst.node, port=dst.port,
                        t=self.loop.now,
                    )
                return
            handler(src, payload)

        lf = self.link_faults
        if lf is not None and lf.shapes_timing:
            latency += lf.delay_ms
            if lf.jitter_ms > 0:
                latency = max(
                    0.0,
                    latency
                    + float(self._rng.uniform(-lf.jitter_ms, lf.jitter_ms)),
                )
            if lf.reorder_prob > 0 and self._rng.random() < lf.reorder_prob:
                # Hold the packet back past anything sent in the next
                # latency-plus-delay span, so it overtakes nothing and
                # later packets overtake it.
                span = hi + lf.delay_ms + lf.jitter_ms
                latency += span * float(self._rng.uniform(1.0, 2.0))
            if (
                lf.duplicate_prob > 0
                and self._rng.random() < lf.duplicate_prob
            ):
                self.duplicated += 1
                dup = lo if hi == lo else float(self._rng.uniform(lo, hi))
                self.loop.schedule(dup + lf.delay_ms, _deliver)

        self.loop.schedule(latency, _deliver)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng
