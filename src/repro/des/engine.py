"""The discrete-event loop.

A plain priority-queue scheduler over virtual milliseconds.  Events
scheduled for the same instant fire in scheduling order, which keeps
runs fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Tuple


@dataclass
class EventHandle:
    """Returned by :meth:`EventLoop.schedule`; allows cancellation."""

    when: float
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """A virtual-time event scheduler."""

    def __init__(self):
        self._now = 0.0
        self._seq = itertools.count()
        self._queue: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self.events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay_ms: float, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` after ``delay_ms`` of virtual time."""
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
        handle = EventHandle(when=self._now + delay_ms)
        heapq.heappush(
            self._queue, (handle.when, next(self._seq), handle, fn)
        )
        return handle

    def run_until(self, t_end: float) -> int:
        """Execute events up to and including virtual time ``t_end``.

        Returns the number of events executed.  The clock lands exactly
        on ``t_end`` afterwards even if the queue drained early.
        """
        executed = 0
        while self._queue and self._queue[0][0] <= t_end:
            when, _, handle, fn = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            fn()
            executed += 1
            self.events_run += 1
        self._now = max(self._now, t_end)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise RuntimeError(
                    f"event loop did not go idle within {max_events} events"
                )
            when, _, handle, fn = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            fn()
            executed += 1
            self.events_run += 1
        return executed

    def pending(self) -> int:
        """Events still queued (including cancelled tombstones)."""
        return len(self._queue)
