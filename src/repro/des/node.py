"""The full gossip node (Drum / Push / Pull and the Section 9 variants).

This is the protocol as Section 4 describes it and Section 8 measures
it — not the simplified round-simulation model:

- rounds are locally timed with random jitter and *not* synchronised
  across nodes;
- push uses the three-step offer / reply / data handshake, so data is
  only transmitted when the target's digest says it is missing;
- pull-requests carry digests and sealed random reply ports;
- every channel has a per-round acceptance quota
  (:class:`~repro.core.bounds.ResourceBounds`) consumed *before* any
  validation, so fabricated traffic burns quota exactly as it does in a
  real implementation — and with the shared-bounds variant, burns the
  quota that valid push-replies needed;
- data messages are purged from the buffer after ``purge_rounds`` local
  rounds, at most ``max_sends_per_partner`` new messages go to one
  partner per round, and every buffered message's hop counter advances
  once per local round (the Section 8.1 latency-in-rounds device).

The node is written against :class:`~repro.des.environment.Environment`,
so the same class runs deterministically on the discrete-event engine
and under real threads in :mod:`repro.runtime`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bounds import ResourceBounds
from repro.core.buffer import MessageBuffer
from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import (
    DataMessage,
    MessageIdFactory,
    PullReply,
    PullRequest,
    PushData,
    PushOffer,
    PushReply,
    _default_ids,
)
from repro.core.ports import RandomPortAllocator
from repro.core.views import select_disjoint_views
from repro.crypto.encryption import SealedEnvelope, open_envelope, seal
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signatures import SignatureRegistry, sign, verify
from repro.des.environment import Environment
from repro.net.address import (
    PORT_PULL_REPLY,
    PORT_PULL_REQUEST,
    PORT_PUSH_OFFER,
    Address,
)
from repro.util import derive_rng
from repro.util.rng import SeedLike

DeliverCallback = Callable[[int, DataMessage, float], None]

#: Default per-round quota for *data* messages arriving on random ports,
#: split evenly between push data and pull replies.  Generous — data
#: ports are unattackable under random ports, and the paper leaves the
#: data capability well above the control bounds.
DEFAULT_DATA_BOUND = 512


class GossipNode:
    """One live protocol participant."""

    def __init__(
        self,
        env: Environment,
        pid: int,
        config: ProtocolConfig,
        members: Sequence[int],
        *,
        seed: SeedLike = None,
        on_deliver: Optional[DeliverCallback] = None,
        data_bound: int = DEFAULT_DATA_BOUND,
        ttl_policy=None,
        registry: Optional[SignatureRegistry] = None,
        id_factory: Optional[MessageIdFactory] = None,
    ):
        """``ttl_policy(message) -> Optional[int]`` may override the
        buffer lifetime of individual messages (e.g. a tracked message
        in a propagation experiment outliving normal purging).

        ``registry`` scopes signature bindings to this cluster/run; all
        nodes of one group must share it for cross-node verification to
        succeed.  ``None`` falls back to the bounded module default.

        ``id_factory`` scopes message serials to this cluster/run so
        seeded runs mint identical ids; ``None`` falls back to the
        process-global default factory.
        """
        self.env = env
        self.pid = pid
        self.config = config
        self.members = list(members)
        self.id_factory = id_factory if id_factory is not None else _default_ids
        self.rng = derive_rng(seed)
        self.keys = KeyPair(owner=pid)
        self.peer_keys: Dict[int, PublicKey] = {}
        self.on_deliver = on_deliver
        self.ttl_policy = ttl_policy
        self.registry = registry

        self.buffer = MessageBuffer(config.purge_rounds, seed=self.rng)
        self.ports = RandomPortAllocator(
            config.random_port_lifetime, seed=self.rng
        )
        self.bounds = self._build_bounds(data_bound)

        self.round_no = 0
        self.running = False
        self._round_handle: Optional[object] = None
        #: Ids of every message ever delivered to the application.  The
        #: buffer forgets purged messages, but the application must not
        #: see a message twice when a slower peer re-gossips an old one.
        self._seen = set()

        # Instrumentation.
        self.stats = {
            "offers_sent": 0,
            "offers_answered": 0,
            "pull_requests_sent": 0,
            "pull_requests_answered": 0,
            "data_messages_sent": 0,
            "data_messages_delivered": 0,
            "invalid_dropped": 0,
            "bytes_sent": 0,
        }

    def _send(self, src: Address, dst: Address, payload) -> None:
        """Send one datagram, accounting its wire size."""
        size = getattr(payload, "wire_size", None)
        self.stats["bytes_sent"] += int(size()) if callable(size) else 64
        self.env.send(src, dst, payload)

    # -- configuration ---------------------------------------------------------

    def _build_bounds(self, data_bound: int) -> ResourceBounds:
        cfg = self.config
        bounds = {
            "push_offer": cfg.view_push_size,
            "pull_request": cfg.view_pull_size,
            "push_reply": cfg.view_push_size,
            "push_data": data_bound // 2,
            "pull_data": data_bound // 2,
        }
        if cfg.kind is ProtocolKind.DRUM_SHARED_BOUNDS:
            return ResourceBounds(
                bounds,
                shared_channels=("push_offer", "pull_request", "push_reply"),
                shared_bound=cfg.shared_in_bound,
            )
        return ResourceBounds(bounds)

    def learn_keys(
        self, keys: Dict[int, PublicKey], *, copy: bool = True
    ) -> None:
        """Install the other members' public keys.

        ``copy=False`` adopts ``keys`` as a shared reference instead of
        copying — the asyncio runtime hands one key directory to
        thousands of nodes, where per-node copies would be O(n²) dict
        entries.  Callers using it must not mutate per-node.
        """
        self.peer_keys = dict(keys) if copy else keys

    @property
    def uses_push(self) -> bool:
        return self.config.kind.uses_push

    @property
    def uses_pull(self) -> bool:
        return self.config.kind.uses_pull

    # -- lifecycle ---------------------------------------------------------------

    def start(self, initial_delay_ms: Optional[float] = None) -> None:
        """Bind well-known ports and begin the round loop.

        Rounds start at a uniformly random phase so nodes are
        unsynchronised, as in the measured implementation.
        """
        if self.running:
            raise RuntimeError(f"node {self.pid} is already running")
        self.running = True
        if self.uses_push:
            self.env.bind(
                Address(self.pid, PORT_PUSH_OFFER), self._on_push_offer
            )
        if self.uses_pull:
            self.env.bind(
                Address(self.pid, PORT_PULL_REQUEST), self._on_pull_request
            )
            if not self.config.uses_random_ports:
                self.env.bind(
                    Address(self.pid, PORT_PULL_REPLY), self._on_pull_data
                )
        if initial_delay_ms is None:
            initial_delay_ms = float(
                self.rng.uniform(0, self.config.round_duration_ms)
            )
        self._round_handle = self.env.schedule(initial_delay_ms, self._round)

    def stop(self) -> None:
        """Halt the round loop and release every port."""
        self.running = False
        if self._round_handle is not None:
            self.env.cancel(self._round_handle)
            self._round_handle = None
        if self.uses_push:
            self.env.unbind(Address(self.pid, PORT_PUSH_OFFER))
        if self.uses_pull:
            self.env.unbind(Address(self.pid, PORT_PULL_REQUEST))
            if not self.config.uses_random_ports:
                self.env.unbind(Address(self.pid, PORT_PULL_REPLY))
        for port in list(self.ports.open_ports):
            self.ports.release(port)
            self.env.unbind(Address(self.pid, port))

    # -- application API ------------------------------------------------------------

    def multicast(self, payload: object) -> DataMessage:
        """Create, sign, buffer, and locally deliver a new message.

        The hop counter starts at 1 in the buffer (the source logs 0 and
        "immediately increases the round counter to 1", Section 8.1).
        """
        message = DataMessage(
            msg_id=self.id_factory.fresh(self.pid),
            source=self.pid,
            payload=payload,
            round_counter=1,
        )
        signature = sign(
            self.keys.private,
            message.signed_body(),
            digest=message.body_digest(),
            registry=self.registry,
        )
        message = DataMessage(
            msg_id=message.msg_id,
            source=message.source,
            payload=message.payload,
            round_counter=1,
            signature=signature,
            _body_digest=message.body_digest(),
        )
        self._seen.add(message.msg_id)
        self.buffer.add(message, ttl=self._ttl_for(message))
        self.stats["data_messages_delivered"] += 1
        if self.on_deliver is not None:
            logged = DataMessage(
                msg_id=message.msg_id,
                source=message.source,
                payload=message.payload,
                round_counter=0,
                signature=signature,
            )
            self.on_deliver(self.pid, logged, self.env.now())
        return message

    # -- the round loop ----------------------------------------------------------------

    def _round(self) -> None:
        if not self.running:
            return
        self.round_no += 1
        self.buffer.tick_round()
        for port in self.ports.tick_round():
            self.env.unbind(Address(self.pid, port))
        self.bounds.reset()

        # The operations within a round are not synchronised (Section 8):
        # a real node's send path runs on its own thread, so its gossip
        # goes out at an arbitrary point of the round, not the instant
        # the quota window opens.  This matters for fidelity: were the
        # offers sent exactly at quota reset, their replies would race
        # ahead of any flood and mask the shared-bounds vulnerability.
        offset = float(
            self.rng.uniform(0, 0.5 * self.config.round_duration_ms)
        )
        self.env.schedule(offset, self._gossip)

        jitter = self.config.round_jitter
        factor = 1.0 + float(self.rng.uniform(-jitter, jitter))
        self._round_handle = self.env.schedule(
            self.config.round_duration_ms * factor, self._round
        )

    def _gossip(self) -> None:
        """Send this round's push offers and pull requests."""
        if not self.running:
            return
        view_push, view_pull = select_disjoint_views(
            self.members,
            self.pid,
            [self.config.view_push_size, self.config.view_pull_size],
            self.rng,
        )
        for target in view_push:
            self._send_push_offer(target)
        for target in view_pull:
            self._send_pull_request(target)

    # -- push: offer -> reply -> data ------------------------------------------------------

    def _send_push_offer(self, target: int) -> None:
        reply_port = self.ports.allocate()
        self.env.bind(Address(self.pid, reply_port), self._on_push_reply)
        self._send(
            Address(self.pid, PORT_PUSH_OFFER),
            Address(target, PORT_PUSH_OFFER),
            PushOffer(sender=self.pid, reply_port=self._seal_for(target, reply_port)),
        )
        self.stats["offers_sent"] += 1

    def _on_push_offer(self, src: Address, payload: object) -> None:
        # Quota burns before validation: flooding this port costs us
        # exactly the acceptance slots the paper's model says it does.
        if not self.bounds.try_consume("push_offer"):
            return
        if not isinstance(payload, PushOffer):
            self.stats["invalid_dropped"] += 1
            return
        reply_port = self._unseal(payload.reply_port)
        if reply_port is None:
            self.stats["invalid_dropped"] += 1
            return
        data_port = self.ports.allocate()
        self.env.bind(Address(self.pid, data_port), self._on_push_data)
        self._send(
            Address(self.pid, PORT_PUSH_OFFER),
            Address(payload.sender, reply_port),
            PushReply(
                sender=self.pid,
                digest=self.buffer.digest(),
                data_port=self._seal_for(payload.sender, data_port),
            ),
        )
        self.stats["offers_answered"] += 1

    def _on_push_reply(self, src: Address, payload: object) -> None:
        if not self.bounds.try_consume("push_reply"):
            return
        if not isinstance(payload, PushReply):
            self.stats["invalid_dropped"] += 1
            return
        data_port = self._unseal(payload.data_port)
        if data_port is None:
            self.stats["invalid_dropped"] += 1
            return
        missing = self.buffer.messages_missing_from(
            payload.digest, limit=self.config.max_sends_per_partner
        )
        if not missing:
            return
        self._send(
            Address(self.pid, PORT_PUSH_OFFER),
            Address(payload.sender, data_port),
            PushData(sender=self.pid, messages=tuple(missing)),
        )
        self.stats["data_messages_sent"] += len(missing)

    def _on_push_data(self, src: Address, payload: object) -> None:
        if not self.bounds.try_consume("push_data"):
            return
        if not isinstance(payload, PushData):
            self.stats["invalid_dropped"] += 1
            return
        for message in payload.messages[: self.config.max_sends_per_partner]:
            self._deliver(message)

    # -- pull: request -> reply ---------------------------------------------------------------

    def _send_pull_request(self, target: int) -> None:
        if self.config.uses_random_ports:
            reply_port = self.ports.allocate()
            self.env.bind(Address(self.pid, reply_port), self._on_pull_data)
            advertised: object = self._seal_for(target, reply_port)
        else:
            advertised = PORT_PULL_REPLY
        self._send(
            Address(self.pid, PORT_PULL_REQUEST),
            Address(target, PORT_PULL_REQUEST),
            PullRequest(
                sender=self.pid,
                digest=self.buffer.digest(),
                reply_port=advertised,
            ),
        )
        self.stats["pull_requests_sent"] += 1

    def _on_pull_request(self, src: Address, payload: object) -> None:
        if not self.bounds.try_consume("pull_request"):
            return
        if not isinstance(payload, PullRequest):
            self.stats["invalid_dropped"] += 1
            return
        reply_port = self._unseal(payload.reply_port)
        if reply_port is None:
            self.stats["invalid_dropped"] += 1
            return
        missing = self.buffer.messages_missing_from(
            payload.digest, limit=self.config.max_sends_per_partner
        )
        if not missing:
            return
        self._send(
            Address(self.pid, PORT_PULL_REQUEST),
            Address(payload.sender, reply_port),
            PullReply(sender=self.pid, messages=tuple(missing)),
        )
        self.stats["pull_requests_answered"] += 1
        self.stats["data_messages_sent"] += len(missing)

    def _on_pull_data(self, src: Address, payload: object) -> None:
        if not self.bounds.try_consume("pull_data"):
            return
        if not isinstance(payload, PullReply):
            self.stats["invalid_dropped"] += 1
            return
        for message in payload.messages[: self.config.max_sends_per_partner]:
            self._deliver(message)

    # -- delivery -----------------------------------------------------------------------------

    def _deliver(self, message: DataMessage) -> None:
        """Sanity-check and deliver one data message to the application."""
        if not isinstance(message, DataMessage):
            self.stats["invalid_dropped"] += 1
            return
        if message.msg_id in self._seen:
            return
        source_key = self.peer_keys.get(message.source)
        if message.signature is not None and source_key is not None:
            # ``body_digest`` is memoised on the message object, so the
            # pickle+sha256 runs once per body rather than at every hop.
            if not verify(
                source_key,
                message.signed_body(),
                message.signature,
                digest=message.body_digest(),
                registry=self.registry,
            ):
                self.stats["invalid_dropped"] += 1
                return
        elif source_key is not None:
            # We know the source's key, so an unsigned message from it
            # fails the sanity checks.
            self.stats["invalid_dropped"] += 1
            return
        self._seen.add(message.msg_id)
        self.buffer.add(message, ttl=self._ttl_for(message))
        self.stats["data_messages_delivered"] += 1
        if self.on_deliver is not None:
            self.on_deliver(self.pid, message, self.env.now())

    # -- helpers ------------------------------------------------------------------------------

    def _ttl_for(self, message: DataMessage) -> Optional[int]:
        if self.ttl_policy is None:
            return None
        return self.ttl_policy(message)

    def _seal_for(self, target: int, port: int) -> object:
        key = self.peer_keys.get(target)
        return seal(key, port) if key is not None else port

    def _unseal(self, advertised: object) -> Optional[int]:
        if isinstance(advertised, SealedEnvelope):
            try:
                advertised = open_envelope(self.keys.private, advertised)
            except Exception:
                return None
        return advertised if isinstance(advertised, int) else None
