"""Dynamic membership over Drum, end to end (Section 10).

Integrates :class:`~repro.membership.dynamic.DynamicMembership` with the
full-protocol node: membership events (join / leave / expel) are
disseminated *as multicast payloads over the gossip protocol itself*,
exactly as the paper prescribes — "the dynamic membership protocol
operates using Drum's multicast protocol as its transport layer", so it
inherits Drum's DoS-resistance.

:class:`MemberNode` wraps a :class:`~repro.des.node.GossipNode` with a
membership service: delivered membership events update the local
database (after certificate validation), and each round's gossip views
are drawn from the *currently certified, responsive* members.

:class:`ChurnExperiment` drives a cluster through joins and leaves while
multicasting data, measuring how reliably messages reach the membership
that should have them.

:func:`run_churn_experiment` is the scheduled counterpart: it resolves a
:class:`~repro.faults.plan.FaultPlan`'s churn tokens against the group
(the same seedless :class:`~repro.faults.schedule.FaultSchedule` every
other stack uses), fires each join/leave/expel at its fault-clock round
boundary while the source streams data, and returns a
:class:`~repro.des.measurement.MeasurementResult` carrying the
churn-aware metrics — so ``join@5:0.2; leave@12:0.1`` means the *same
membership timeline* here as on the exact, fast, and mega engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import MessageIdFactory
from repro.crypto.ca import CertificationAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import SignatureRegistry
from repro.des.environment import SimEnvironment
from repro.des.node import GossipNode
from repro.membership.dynamic import DynamicMembership
from repro.membership.events import (
    ExpelEvent,
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
)
from repro.util import SeedSequenceFactory
from repro.util.rng import SeedLike


class MemberNode:
    """A gossip node whose membership view is CA-certified and dynamic."""

    def __init__(
        self,
        env: SimEnvironment,
        pid: int,
        config: ProtocolConfig,
        ca: CertificationAuthority,
        *,
        seed: SeedLike = None,
        on_deliver=None,
        on_membership=None,
        registry: Optional[SignatureRegistry] = None,
        failure_timeout_rounds: float = 10.0,
        id_factory=None,
    ):
        self.env = env
        self.pid = pid
        self.ca = ca
        self._app_deliver = on_deliver
        #: Called as ``(pid, event, now_ms)`` after a membership event is
        #: validated and applied locally (view-convergence measurement).
        self._on_membership = on_membership
        self.node = GossipNode(
            env, pid, config, members=[],
            seed=seed, on_deliver=self._deliver,
            registry=registry,
            id_factory=id_factory,
        )
        self.membership = DynamicMembership(
            pid,
            ca.public_key,
            failure_timeout=(
                config.round_duration_ms * failure_timeout_rounds / 1000.0
            ),
        )
        self.certificate = None
        self.events_applied = 0

    @property
    def running(self) -> bool:
        """Whether the underlying gossip node is running (fault wiring
        — :class:`~repro.faults.des.DesFaultController` — reads this)."""
        return self.node.running

    # -- lifecycle -----------------------------------------------------------

    def join_group(self) -> JoinEvent:
        """Obtain a certificate and the initial view; returns the join
        event the admitting member should multicast."""
        self.ca.advance_clock(max(self.ca.now, self.env.now() / 1000.0))
        self.certificate = self.membership.join(
            self.ca, self.node.keys.public, now=self.env.now() / 1000.0
        )
        self._refresh_views()
        return JoinEvent(self.pid, self.certificate)

    def leave_group(self) -> Optional[LeaveEvent]:
        """Log out: revoke at the CA and stop gossiping."""
        cert = self.ca.revoke(self.pid)
        self.node.stop()
        if cert is None:
            return None
        return LeaveEvent(self.pid, cert)

    def start(self) -> None:
        self.node.start()

    def stop(self) -> None:
        self.node.stop()

    # -- membership plumbing ----------------------------------------------------

    def _deliver(self, pid: int, message, now: float) -> None:
        payload = message.payload
        if isinstance(payload, MembershipEvent):
            if self.membership.handle_event(payload, now / 1000.0):
                self.events_applied += 1
                self._refresh_views()
                if self._on_membership is not None:
                    self._on_membership(pid, payload, now)
            return
        if self._app_deliver is not None:
            self._app_deliver(pid, message, now)

    def _refresh_views(self) -> None:
        """Point the gossip node at the current certified membership."""
        members = self.membership.gossip_candidates(self.env.now() / 1000.0)
        self.node.members = sorted(set(members) | {self.pid})

    def learn_peer_key(self, pid: int, key) -> None:
        self.node.peer_keys[pid] = key

    def multicast(self, payload: object):
        """Multicast arbitrary payload (data or a membership event)."""
        self._refresh_views()
        return self.node.multicast(payload)

    def known_members(self) -> List[int]:
        return self.membership.current_members(self.env.now() / 1000.0)


@dataclass
class ChurnResult:
    """Outcome of a churn experiment."""

    joined: List[int]
    left: List[int]
    #: pid -> message ids delivered to the application.
    delivered: Dict[int, Set[Tuple[int, int]]]
    #: Membership events applied per node.
    events_applied: Dict[int, int]
    final_membership: Dict[int, List[int]]

    def coverage(self, msg_id: Tuple[int, int], members: List[int]) -> float:
        """Fraction of ``members`` that delivered ``msg_id``."""
        if not members:
            return 1.0
        got = sum(1 for pid in members if msg_id in self.delivered.get(pid, set()))
        return got / len(members)


class ChurnExperiment:
    """A gossip group under churn: joins and leaves during a data stream."""

    def __init__(
        self,
        *,
        protocol: ProtocolKind = ProtocolKind.DRUM,
        initial_size: int = 10,
        round_duration_ms: float = 100.0,
        loss: float = 0.0,
        seed: SeedLike = None,
    ):
        if initial_size < 2:
            raise ValueError(f"initial_size must be >= 2, got {initial_size}")
        self._seeds = SeedSequenceFactory(seed)
        self.env = SimEnvironment(
            loss=loss, latency_range_ms=(0.5, 1.5), seed=self._seeds.next_seed()
        )
        self.config = ProtocolConfig(
            kind=protocol, round_duration_ms=round_duration_ms
        )
        self.ca = CertificationAuthority(validity_period=3600.0)
        self.msg_ids = MessageIdFactory()
        self.nodes: Dict[int, MemberNode] = {}
        self.delivered: Dict[int, Set[Tuple[int, int]]] = {}
        self.joined: List[int] = []
        self.left: List[int] = []
        self._next_pid = 0
        for _ in range(initial_size):
            self.add_member(announce=False)
        # Bootstrap: everyone knows the initial membership and keys.
        for node in self.nodes.values():
            cert_map = {
                pid: self.ca.current_certificate(pid)
                for pid in self.nodes
                if pid != node.pid
            }
            for pid, cert in cert_map.items():
                if cert is not None:
                    node.membership.install_certificate(cert, now=0.0)
            node._refresh_views()
        self._share_keys()

    # -- membership operations ----------------------------------------------------

    def add_member(self, announce: bool = True) -> int:
        """A new process joins through the CA."""
        pid = self._next_pid
        self._next_pid += 1
        member = MemberNode(
            self.env,
            pid,
            self.config,
            self.ca,
            seed=self._seeds.next_seed(),
            on_deliver=self._on_data,
            id_factory=self.msg_ids,
        )
        event = member.join_group()
        self.nodes[pid] = member
        self.delivered[pid] = set()
        self.joined.append(pid)
        member.start()
        self._share_keys()
        if announce and len(self.nodes) > 1:
            # An existing member multicasts the CA's log-in message.
            sponsor = next(p for p in self.nodes if p != pid)
            self.nodes[sponsor].multicast(event)
        return pid

    def remove_member(self, pid: int) -> None:
        """``pid`` logs out; a remaining member spreads the leave event."""
        member = self.nodes.pop(pid)
        event = member.leave_group()
        self.left.append(pid)
        if event is not None and self.nodes:
            sponsor = next(iter(self.nodes))
            self.nodes[sponsor].multicast(event)

    # -- experiment drive --------------------------------------------------------------

    def multicast(self, source: int, payload: object) -> Tuple[int, int]:
        message = self.nodes[source].multicast(payload)
        self.delivered[source].add(message.msg_id)
        return message.msg_id

    def run_for(self, rounds: float) -> None:
        """Advance virtual time by ``rounds`` gossip rounds."""
        self.env.loop.run_until(
            self.env.now() + rounds * self.config.round_duration_ms
        )

    def result(self) -> ChurnResult:
        return ChurnResult(
            joined=list(self.joined),
            left=list(self.left),
            delivered={pid: set(ids) for pid, ids in self.delivered.items()},
            events_applied={
                pid: node.events_applied for pid, node in self.nodes.items()
            },
            final_membership={
                pid: node.known_members() for pid, node in self.nodes.items()
            },
        )

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()

    # -- internals ----------------------------------------------------------------------

    def _on_data(self, pid: int, message, now: float) -> None:
        self.delivered.setdefault(pid, set()).add(message.msg_id)

    def _share_keys(self) -> None:
        """Distribute public keys (stand-in for key material in certs)."""
        keys = {pid: node.node.keys.public for pid, node in self.nodes.items()}
        for node in self.nodes.values():
            node.node.learn_keys(keys)


# ---------------------------------------------------------------------------
# Schedule-driven churn: the FaultPlan-facing DES entry point
# ---------------------------------------------------------------------------


class _ScheduledChurnCluster:
    """A membership-aware DES cluster driven by a resolved fault plan.

    The churn timeline — *which* ids join/leave/expel at *which*
    fault-clock round — comes entirely from the seedless
    :class:`~repro.faults.schedule.FaultSchedule`, so it is identical to
    what the exact, fast, and mega engines realise for the same plan.
    What stays genuinely discrete-event is the dissemination: every
    membership event rides the protocol under test as a multicast
    payload (Section 10), and each node's gossip views are drawn from
    its own certified, failure-detector-filtered membership database.
    """

    def __init__(self, config, schedule, *, seed: SeedLike = None, tracer=None):
        from repro.des.attacker import AttackerProcess
        from repro.des.measurement import DeliveryRecord
        from repro.faults.des import DesFaultController
        from repro.faults.schedule import FD_TIMEOUT_ROUNDS

        self.config = config
        self.schedule = schedule
        self.tracer = tracer
        self.round_ms = float(config.round_duration_ms)
        self._DeliveryRecord = DeliveryRecord
        seeds = SeedSequenceFactory(seed)
        self.env = SimEnvironment(
            loss=config.loss,
            latency_range_ms=config.latency_range_ms,
            seed=seeds.next_seed(),
            tracer=tracer,
        )
        #: Certificates must outlive the run: scheduled churn is the only
        #: membership change under test (expiry is exercised separately).
        self.ca = CertificationAuthority(validity_period=1e9)
        self.registry = SignatureRegistry()
        #: Serials scoped to the run (see MessageIdFactory): repeated
        #: seeded churn runs mint byte-identical message ids.
        self.msg_ids = MessageIdFactory()
        self.proto_cfg = config.protocol_config()
        self._fd_rounds = float(FD_TIMEOUT_ROUNDS)

        self.created_at: Dict[Tuple[int, int], float] = {}
        self.deliveries: List = []
        self.nodes: Dict[int, MemberNode] = {}
        self._departed: Dict[int, MemberNode] = {}
        self.joined: List[int] = []
        self.left: List[int] = []
        self.expelled: List[int] = []
        #: (kind, subject) -> {"t_fire", "expected", "applied"} for the
        #: most recent announcement of that event (view convergence).
        self._announce_latest: Dict[Tuple[str, int], Dict[str, object]] = {}
        self.announcements: List[Dict[str, object]] = []

        # Seeds are pre-drawn in id order for the full id universe, so a
        # node's RNG stream depends only on its id — not on when the
        # event loop happens to construct it.
        self._node_seeds = {
            pid: seeds.next_seed() for pid in config.correct_ids()
        }
        for _, _, first, count in schedule.join_blocks():
            for pid in range(first, first + count):
                self._node_seeds[pid] = seeds.next_seed()

        for pid in config.correct_ids():
            member = self._build_member(pid)
            member.join_group()
            self.nodes[pid] = member

        # Malicious ids hold certificates too (the CA cannot tell — that
        # is the paper's threat model); they never answer, so the local
        # failure detectors age them out of gossip views.
        for pid in range(config.num_correct, config.n):
            self.ca.authorize_join(pid, KeyPair(owner=pid).public)

        for member in self.nodes.values():
            for pid in range(config.n):
                if pid == member.pid:
                    continue
                cert = self.ca.current_certificate(pid)
                if cert is not None:
                    member.membership.install_certificate(cert, now=0.0)
            member._refresh_views()
        self._share_keys()

        self.attacker = None
        if config.attack is not None:
            self.attacker = AttackerProcess(
                self.env,
                config.attack,
                config.protocol,
                config.attacked_ids(),
                round_duration_ms=config.round_duration_ms,
                seed=seeds.next_seed(),
            )

        # Crash/stall/partition/link faults ride the standard controller;
        # its internally resolved schedule is identical (seedless).
        self.fault_controller = None
        if config.faults.events or config.faults.link is not None:
            self.fault_controller = DesFaultController(
                config.faults,
                env=self.env,
                nodes=self.nodes,
                n=config.n,
                num_alive_correct=config.num_correct,
                round_duration_ms=config.round_duration_ms,
                seed=seeds.next_seed(),
                tracer=tracer,
            )
            self.fault_controller.install()

        self._schedule_churn_ops()
        self.env.schedule(self.round_ms, self._probe)

        if tracer is not None:
            tracer.run_start(
                "des", continuous=True, churn=True,
                protocol=config.protocol.value, n=config.n,
                total_n=schedule.total_n,
            )

    # -- construction helpers ------------------------------------------------

    def _build_member(self, pid: int) -> MemberNode:
        return MemberNode(
            self.env,
            pid,
            self.proto_cfg,
            self.ca,
            seed=self._node_seeds[pid],
            on_deliver=self._on_data,
            on_membership=self._on_membership,
            registry=self.registry,
            failure_timeout_rounds=self._fd_rounds,
            id_factory=self.msg_ids,
        )

    def _share_keys(self) -> None:
        keys = {pid: m.node.keys.public for pid, m in self.nodes.items()}
        for member in self.nodes.values():
            member.node.learn_keys(keys)

    def _round_start_ms(self, round_no: int) -> float:
        return (round_no - 1) * self.round_ms

    def _current_round(self) -> int:
        return int(self.env.now() // self.round_ms) + 1

    def _schedule_churn_ops(self) -> None:
        """Fire every resolved membership event at its round boundary."""
        for at, stop, first, count in self.schedule.join_blocks():
            ids = list(range(first, first + count))
            self.env.schedule(self._round_start_ms(at), self._join_fn(ids))
            if stop is not None:
                self.env.schedule(
                    self._round_start_ms(stop), self._leave_fn(ids)
                )
        for at, stop, ids in self.schedule._leave_windows:
            victims = sorted(ids)
            self.env.schedule(self._round_start_ms(at), self._leave_fn(victims))
            if stop is not None:
                self.env.schedule(
                    self._round_start_ms(stop), self._rejoin_fn(victims)
                )
        for at, ids in self.schedule._expel_events:
            self.env.schedule(
                self._round_start_ms(at), self._expel_fn(sorted(ids))
            )

    # -- membership operations -----------------------------------------------

    def _sponsor(self, exclude: Optional[int] = None) -> Optional[int]:
        for pid in sorted(self.nodes):
            if pid != exclude and self.nodes[pid].running:
                return pid
        return None

    def _announce(self, kind: str, event, subject: int) -> None:
        """Multicast a membership event and open its convergence record."""
        sponsor = self._sponsor(exclude=subject)
        if sponsor is None:
            return
        now = self.env.now()
        expected = frozenset(
            pid
            for pid, member in self.nodes.items()
            if member.running and pid != subject
        )
        record = {
            "kind": kind,
            "subject": subject,
            "t_fire": now,
            "expected": expected,
            "applied": {},
        }
        self._announce_latest[(kind, subject)] = record
        self.announcements.append(record)
        self.nodes[sponsor].multicast(event)

    def _join_fn(self, ids: List[int]):
        def _join() -> None:
            for pid in ids:
                member = self._departed.pop(pid, None) or self._build_member(pid)
                event = member.join_group()
                self.nodes[pid] = member
                self.joined.append(pid)
                member.start()
                self._share_keys()
                self._announce("join", event, pid)
            if self.tracer is not None:
                self.tracer.member_join(ids, t=self.env.now())

        return _join

    def _leave_fn(self, ids: List[int]):
        def _leave() -> None:
            departed = []
            for pid in ids:
                member = self.nodes.pop(pid, None)
                if member is None:
                    continue
                event = member.leave_group()
                self._departed[pid] = member
                self.left.append(pid)
                departed.append(pid)
                if event is not None:
                    self._announce("leave", event, pid)
            if self.tracer is not None and departed:
                self.tracer.member_leave(departed, t=self.env.now())

        return _leave

    def _rejoin_fn(self, ids: List[int]):
        # A rejoin is a fresh log-in: new certificate, new join event.
        return self._join_fn(ids)

    def _expel_fn(self, ids: List[int]):
        def _expel() -> None:
            expelled = []
            for pid in ids:
                cert = self.ca.revoke(pid)
                member = self.nodes.pop(pid, None)
                if member is not None:
                    member.stop()
                    self._departed[pid] = member
                self.expelled.append(pid)
                expelled.append(pid)
                if cert is not None:
                    self._announce("expel", ExpelEvent(pid, cert), pid)
            if self.tracer is not None and expelled:
                self.tracer.member_expel(expelled, t=self.env.now())

        return _expel

    # -- failure detection (the Section 10 responsiveness probe) -------------

    def _probe(self) -> None:
        """Once per round, every member probes its certified peers.

        A present, running peer answers unless the fault schedule blocks
        the pair (crash, stall, partition); silence beyond the detector
        timeout turns into suspicion, removing the peer from gossip
        views without touching its membership status — and one answered
        probe rehabilitates it.
        """
        now_s = self.env.now() / 1000.0
        round_no = self._current_round()
        for pid, member in self.nodes.items():
            if not member.running:
                continue
            detector = member.membership.failure_detector
            before = detector.suspected
            for peer in member.membership.current_members(now_s):
                target = self.nodes.get(peer)
                if target is None or not target.running:
                    continue
                if self.schedule.blocks(round_no, pid, peer) or (
                    self.schedule.blocks(round_no, peer, pid)
                ):
                    continue
                detector.heard_from(peer, now_s)
            newly = detector.check(now_s)
            if self.tracer is not None:
                if newly:
                    self.tracer.suspect(newly, t=self.env.now(), by=pid)
                healed = sorted(before - detector.suspected)
                if healed:
                    self.tracer.rehabilitate(healed, t=self.env.now(), by=pid)
            member._refresh_views()
        self.env.schedule(self.env.now() + self.round_ms, self._probe)

    # -- data stream ----------------------------------------------------------

    def multicast_tracked(self, pid: int, payload: object) -> None:
        member = self.nodes.get(pid)
        if member is None or not member.running:
            return  # the source is down this instant; the send is lost
        created = self.env.now()
        msg = member.multicast(payload)
        self.created_at[msg.msg_id] = created
        self.deliveries.append(
            self._DeliveryRecord(
                receiver=pid,
                msg_id=msg.msg_id,
                delivered_at_ms=created,
                latency_ms=0.0,
                round_counter=0,
            )
        )

    def _on_data(self, pid: int, message, now: float) -> None:
        created = self.created_at.get(message.msg_id)
        if created is None:
            return
        self.deliveries.append(
            self._DeliveryRecord(
                receiver=pid,
                msg_id=message.msg_id,
                delivered_at_ms=now,
                latency_ms=now - created,
                round_counter=message.round_counter,
            )
        )
        if self.tracer is not None:
            self.tracer.delivered(
                node=pid, t=now, round_counter=message.round_counter
            )

    def _on_membership(self, pid: int, event, now: float) -> None:
        kind = {
            "JoinEvent": "join",
            "LeaveEvent": "leave",
            "ExpelEvent": "expel",
        }.get(type(event).__name__)
        if kind is None:
            return
        record = self._announce_latest.get((kind, event.subject))
        if record is not None and pid not in record["applied"]:
            record["applied"][pid] = now

    # -- lifecycle ------------------------------------------------------------

    def stop(self) -> None:
        for member in list(self.nodes.values()) + list(self._departed.values()):
            if member.running:
                member.stop()
        if self.attacker is not None:
            self.attacker.stop()

    def start(self) -> None:
        for member in self.nodes.values():
            member.start()
        if self.attacker is not None:
            self.attacker.start()

    def events_applied_total(self) -> int:
        return sum(
            m.events_applied
            for m in list(self.nodes.values()) + list(self._departed.values())
        )


def run_churn_experiment(config, *, seed: SeedLike = None, tracer=None):
    """Stream data from the source while the plan's churn tokens fire.

    The schedule-driven sibling of
    :func:`~repro.des.cluster.run_throughput_experiment`: requires a
    :class:`~repro.des.cluster.ClusterConfig` whose ``faults`` plan has
    churn tokens (``join``/``leave``/``expel``), realises exactly the
    membership timeline the round engines realise for that plan, and
    returns a :class:`~repro.des.measurement.MeasurementResult` whose
    ``churn`` payload carries the timeline plus the realised
    join-latency and view-convergence metrics.
    """
    from repro.des.measurement import MeasurementResult
    from repro.faults.plan import FaultPlan
    from repro.faults.schedule import FaultSchedule

    plan = config.faults
    if not isinstance(plan, FaultPlan) or not plan.has_churn:
        raise ValueError(
            "run_churn_experiment needs a fault plan with churn tokens "
            "(join/leave/expel); use run_throughput_experiment for "
            f"churn-free plans (got faults={plan.describe() if isinstance(plan, FaultPlan) else plan!r})"
        )
    schedule = FaultSchedule(
        plan, n=config.n, num_alive_correct=config.num_correct
    )
    round_ms = float(config.round_duration_ms)
    cluster = _ScheduledChurnCluster(
        config, schedule, seed=seed, tracer=tracer
    )
    cluster.start()

    t0 = config.warmup_rounds * round_ms
    interval = 1000.0 / config.send_rate
    for i in range(config.messages):
        when = t0 + i * interval

        def _send(index: int = i) -> None:
            cluster.multicast_tracked(config.source, f"msg-{index}".encode())

        cluster.env.loop.schedule(when, _send)

    t_send_end = t0 + config.messages * interval
    drain = (config.purge_rounds + 3) * round_ms
    lag = schedule.awareness_lag(config.fan_out)
    settle = (schedule.last_event_round() + lag + 2) * round_ms
    horizon_ms = max(t_send_end + drain, settle)
    cluster.env.loop.run_until(horizon_ms)
    cluster.stop()

    horizon_round = max(1, int(horizon_ms // round_ms))
    reachable_ids = schedule.reachable_ids(horizon_round)
    reachable = [
        pid for pid in config.receiver_ids() if pid in reachable_ids
    ]

    # Join latency: joiner-local rounds from the join boundary to the
    # first stream delivery, starting at 1 (the cross-stack convention);
    # joiners absent or unreachable at the horizon are censored out.
    join_round = {}
    for at, _stop, first, count in schedule.join_blocks():
        for pid in range(first, first + count):
            join_round[pid] = at
    first_delivery: Dict[int, float] = {}
    for record in cluster.deliveries:
        if record.receiver in join_round:
            t = first_delivery.get(record.receiver)
            if t is None or record.delivered_at_ms < t:
                first_delivery[record.receiver] = record.delivered_at_ms
    latencies = []
    for pid in sorted(join_round):
        if pid not in reachable_ids:
            continue
        t_join = (join_round[pid] - 1) * round_ms
        t_first = first_delivery.get(pid)
        horizon_t = horizon_ms if t_first is None else t_first
        latencies.append(
            max(1.0, math.floor((horizon_t - t_join) / round_ms) + 1.0)
        )
    join_latency = (
        float(sum(latencies) / len(latencies)) if latencies else None
    )

    # View convergence: rounds until 90 % of the members present at the
    # announcement applied the event (censored at the horizon).
    convergence = []
    for record in cluster.announcements:
        expected = record["expected"]
        if not expected:
            continue
        need = max(1, math.ceil(0.9 * len(expected)))
        applied = sorted(
            t for pid, t in record["applied"].items() if pid in expected
        )
        t_done = applied[need - 1] if len(applied) >= need else horizon_ms
        convergence.append(
            max(1.0, math.ceil((t_done - record["t_fire"]) / round_ms))
        )
    view_convergence = (
        float(sum(convergence) / len(convergence)) if convergence else None
    )

    churn = {
        "timeline": [dict(rec) for rec in schedule.churn_timeline()],
        "join_latency": join_latency,
        "view_convergence": view_convergence,
        "joined": len(cluster.joined),
        "left": len(cluster.left),
        "expelled": len(cluster.expelled),
        "events_applied": cluster.events_applied_total(),
    }

    result = MeasurementResult(
        protocol=config.protocol.value,
        n=config.n,
        correct_receivers=config.receiver_ids(),
        send_rate=config.send_rate,
        messages_sent=config.messages,
        experiment_start_ms=t0,
        experiment_end_ms=t_send_end,
        deliveries=cluster.deliveries,
        reachable_receivers=reachable,
        faults=plan.describe(),
        churn=churn,
    )
    if tracer is not None:
        tracer.run_end(
            t=horizon_ms,
            delivered=len(cluster.deliveries),
            messages=config.messages,
            joined=len(cluster.joined),
            left=len(cluster.left),
            expelled=len(cluster.expelled),
        )
    return result
