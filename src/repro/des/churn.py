"""Dynamic membership over Drum, end to end (Section 10).

Integrates :class:`~repro.membership.dynamic.DynamicMembership` with the
full-protocol node: membership events (join / leave / expel) are
disseminated *as multicast payloads over the gossip protocol itself*,
exactly as the paper prescribes — "the dynamic membership protocol
operates using Drum's multicast protocol as its transport layer", so it
inherits Drum's DoS-resistance.

:class:`MemberNode` wraps a :class:`~repro.des.node.GossipNode` with a
membership service: delivered membership events update the local
database (after certificate validation), and each round's gossip views
are drawn from the *currently certified, responsive* members.

:class:`ChurnExperiment` drives a cluster through joins and leaves while
multicasting data, measuring how reliably messages reach the membership
that should have them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.crypto.ca import CertificationAuthority
from repro.des.environment import SimEnvironment
from repro.des.node import GossipNode
from repro.membership.dynamic import DynamicMembership
from repro.membership.events import JoinEvent, LeaveEvent, MembershipEvent
from repro.util import SeedSequenceFactory
from repro.util.rng import SeedLike


class MemberNode:
    """A gossip node whose membership view is CA-certified and dynamic."""

    def __init__(
        self,
        env: SimEnvironment,
        pid: int,
        config: ProtocolConfig,
        ca: CertificationAuthority,
        *,
        seed: SeedLike = None,
        on_deliver=None,
    ):
        self.env = env
        self.pid = pid
        self.ca = ca
        self._app_deliver = on_deliver
        self.node = GossipNode(
            env, pid, config, members=[],
            seed=seed, on_deliver=self._deliver,
        )
        self.membership = DynamicMembership(
            pid,
            ca.public_key,
            failure_timeout=config.round_duration_ms * 10 / 1000.0,
        )
        self.certificate = None
        self.events_applied = 0

    # -- lifecycle -----------------------------------------------------------

    def join_group(self) -> JoinEvent:
        """Obtain a certificate and the initial view; returns the join
        event the admitting member should multicast."""
        self.ca.advance_clock(max(self.ca.now, self.env.now() / 1000.0))
        self.certificate = self.membership.join(
            self.ca, self.node.keys.public, now=self.env.now() / 1000.0
        )
        self._refresh_views()
        return JoinEvent(self.pid, self.certificate)

    def leave_group(self) -> Optional[LeaveEvent]:
        """Log out: revoke at the CA and stop gossiping."""
        cert = self.ca.revoke(self.pid)
        self.node.stop()
        if cert is None:
            return None
        return LeaveEvent(self.pid, cert)

    def start(self) -> None:
        self.node.start()

    def stop(self) -> None:
        self.node.stop()

    # -- membership plumbing ----------------------------------------------------

    def _deliver(self, pid: int, message, now: float) -> None:
        payload = message.payload
        if isinstance(payload, MembershipEvent):
            if self.membership.handle_event(payload, now / 1000.0):
                self.events_applied += 1
                self._refresh_views()
            return
        if self._app_deliver is not None:
            self._app_deliver(pid, message, now)

    def _refresh_views(self) -> None:
        """Point the gossip node at the current certified membership."""
        members = self.membership.gossip_candidates(self.env.now() / 1000.0)
        self.node.members = sorted(set(members) | {self.pid})

    def learn_peer_key(self, pid: int, key) -> None:
        self.node.peer_keys[pid] = key

    def multicast(self, payload: object):
        """Multicast arbitrary payload (data or a membership event)."""
        self._refresh_views()
        return self.node.multicast(payload)

    def known_members(self) -> List[int]:
        return self.membership.current_members(self.env.now() / 1000.0)


@dataclass
class ChurnResult:
    """Outcome of a churn experiment."""

    joined: List[int]
    left: List[int]
    #: pid -> message ids delivered to the application.
    delivered: Dict[int, Set[Tuple[int, int]]]
    #: Membership events applied per node.
    events_applied: Dict[int, int]
    final_membership: Dict[int, List[int]]

    def coverage(self, msg_id: Tuple[int, int], members: List[int]) -> float:
        """Fraction of ``members`` that delivered ``msg_id``."""
        if not members:
            return 1.0
        got = sum(1 for pid in members if msg_id in self.delivered.get(pid, set()))
        return got / len(members)


class ChurnExperiment:
    """A gossip group under churn: joins and leaves during a data stream."""

    def __init__(
        self,
        *,
        protocol: ProtocolKind = ProtocolKind.DRUM,
        initial_size: int = 10,
        round_duration_ms: float = 100.0,
        loss: float = 0.0,
        seed: SeedLike = None,
    ):
        if initial_size < 2:
            raise ValueError(f"initial_size must be >= 2, got {initial_size}")
        self._seeds = SeedSequenceFactory(seed)
        self.env = SimEnvironment(
            loss=loss, latency_range_ms=(0.5, 1.5), seed=self._seeds.next_seed()
        )
        self.config = ProtocolConfig(
            kind=protocol, round_duration_ms=round_duration_ms
        )
        self.ca = CertificationAuthority(validity_period=3600.0)
        self.nodes: Dict[int, MemberNode] = {}
        self.delivered: Dict[int, Set[Tuple[int, int]]] = {}
        self.joined: List[int] = []
        self.left: List[int] = []
        self._next_pid = 0
        for _ in range(initial_size):
            self.add_member(announce=False)
        # Bootstrap: everyone knows the initial membership and keys.
        for node in self.nodes.values():
            cert_map = {
                pid: self.ca.current_certificate(pid)
                for pid in self.nodes
                if pid != node.pid
            }
            for pid, cert in cert_map.items():
                if cert is not None:
                    node.membership.install_certificate(cert, now=0.0)
            node._refresh_views()
        self._share_keys()

    # -- membership operations ----------------------------------------------------

    def add_member(self, announce: bool = True) -> int:
        """A new process joins through the CA."""
        pid = self._next_pid
        self._next_pid += 1
        member = MemberNode(
            self.env,
            pid,
            self.config,
            self.ca,
            seed=self._seeds.next_seed(),
            on_deliver=self._on_data,
        )
        event = member.join_group()
        self.nodes[pid] = member
        self.delivered[pid] = set()
        self.joined.append(pid)
        member.start()
        self._share_keys()
        if announce and len(self.nodes) > 1:
            # An existing member multicasts the CA's log-in message.
            sponsor = next(p for p in self.nodes if p != pid)
            self.nodes[sponsor].multicast(event)
        return pid

    def remove_member(self, pid: int) -> None:
        """``pid`` logs out; a remaining member spreads the leave event."""
        member = self.nodes.pop(pid)
        event = member.leave_group()
        self.left.append(pid)
        if event is not None and self.nodes:
            sponsor = next(iter(self.nodes))
            self.nodes[sponsor].multicast(event)

    # -- experiment drive --------------------------------------------------------------

    def multicast(self, source: int, payload: object) -> Tuple[int, int]:
        message = self.nodes[source].multicast(payload)
        self.delivered[source].add(message.msg_id)
        return message.msg_id

    def run_for(self, rounds: float) -> None:
        """Advance virtual time by ``rounds`` gossip rounds."""
        self.env.loop.run_until(
            self.env.now() + rounds * self.config.round_duration_ms
        )

    def result(self) -> ChurnResult:
        return ChurnResult(
            joined=list(self.joined),
            left=list(self.left),
            delivered={pid: set(ids) for pid, ids in self.delivered.items()},
            events_applied={
                pid: node.events_applied for pid, node in self.nodes.items()
            },
            final_membership={
                pid: node.known_members() for pid, node in self.nodes.items()
            },
        )

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()

    # -- internals ----------------------------------------------------------------------

    def _on_data(self, pid: int, message, now: float) -> None:
        self.delivered.setdefault(pid, set()).add(message.msg_id)

    def _share_keys(self) -> None:
        """Distribute public keys (stand-in for key material in certs)."""
        keys = {pid: node.node.keys.public for pid, node in self.nodes.items()}
        for node in self.nodes.values():
            node.node.learn_keys(keys)
