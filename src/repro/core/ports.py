"""Random-port management.

Drum awaits push-replies, pull-replies, and push data on ports chosen
uniformly at random per round and advertised only inside encrypted
envelopes.  A listener on a random port dies after a few rounds
(``random_port_lifetime``), so even a port an adversary somehow learned
goes stale quickly.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.net.address import RANDOM_PORT_BASE
from repro.util import check_positive, derive_rng
from repro.util.rng import SeedLike

#: Size of the random-port space a process draws from.  The paper's goal
#: is only that the attacker "has no way of predicting these choices";
#: 2^14 ports makes blind flooding of the whole space cost ~16k times the
#: targeted-rate budget.
RANDOM_PORT_SPACE = 1 << 14


class RandomPortAllocator:
    """Allocates and expires random listening ports for one process."""

    def __init__(self, lifetime_rounds: int = 2, *, seed: SeedLike = None):
        check_positive("lifetime_rounds", lifetime_rounds)
        self.lifetime_rounds = lifetime_rounds
        self._rng = derive_rng(seed)
        # ``allocate`` runs once per pull target (and per push offer in
        # the shared-bounds variant) every round; binding the generator
        # method keeps the common no-collision case tight.
        self._integers = self._rng.integers
        self._open: Dict[int, int] = {}  # port -> rounds remaining

    def allocate(self) -> int:
        """Open a fresh random port and return its number."""
        open_ = self._open
        while True:
            port = RANDOM_PORT_BASE + int(self._integers(0, RANDOM_PORT_SPACE))
            if port not in open_:
                open_[port] = self.lifetime_rounds
                return port

    def is_open(self, port: int) -> bool:
        """True while a listener is live on ``port``."""
        return port in self._open

    def release(self, port: int) -> None:
        """Close ``port`` immediately (e.g. handshake completed)."""
        self._open.pop(port, None)

    def tick_round(self) -> List[int]:
        """Age listeners one round; returns the ports that just expired."""
        expired = []
        open_ = self._open
        for port, left in list(open_.items()):
            if left <= 1:
                expired.append(port)
                del open_[port]
            else:
                open_[port] = left - 1
        return expired

    @property
    def open_ports(self) -> Set[int]:
        """The currently live random ports."""
        return set(self._open)
