"""Pull: the pull-only baseline protocol."""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.protocol import GossipProcess
from repro.net.network import Network
from repro.util.rng import SeedLike


class PullProcess(GossipProcess):
    """A pull-only process: full fan-out on the pull operation.

    Its weakness under attack: the *source's* pull-request channel is
    flooded, so M struggles to leave the source — the paper shows the
    escape time grows linearly with the attack rate (Lemma 6).
    """

    def __init__(
        self,
        pid: int,
        members: Sequence[int],
        network: Network,
        *,
        config: ProtocolConfig = None,
        seed: SeedLike = None,
        has_message: bool = False,
    ):
        if config is None:
            config = ProtocolConfig.pull()
        if config.kind is not ProtocolKind.PULL:
            raise ValueError(f"PullProcess requires a pull config, got {config.kind}")
        super().__init__(
            pid, config, members, network, seed=seed, has_message=has_message
        )
