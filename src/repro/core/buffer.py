"""The per-process data-message buffer.

Messages live in the buffer for :attr:`ProtocolConfig.purge_rounds`
local rounds and are then discarded; a round tick also increments every
buffered message's hop counter (the measurement device of Section 8.1).
Selection for gossip is uniformly random over the messages the peer is
missing, truncated to the per-partner send budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.message import DataMessage, Digest
from repro.util import check_positive, derive_rng
from repro.util.rng import SeedLike

MessageId = Tuple[int, int]


class MessageBuffer:
    """Bounded-age store of data messages."""

    def __init__(
        self,
        purge_rounds: int = 10,
        *,
        seed: SeedLike = None,
    ):
        check_positive("purge_rounds", purge_rounds)
        self.purge_rounds = purge_rounds
        self._messages: Dict[MessageId, DataMessage] = {}
        self._age: Dict[MessageId, int] = {}
        self._rng = derive_rng(seed)
        self.purged_total = 0
        # The digest is requested once per gossip partner per round but
        # contents change only on add/purge; cache it between mutations.
        self._digest_cache: Optional[Digest] = None
        # Per-message lifetime overrides (see :meth:`add`).
        self._ttl_override: Dict[MessageId, int] = {}

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, msg_id: MessageId) -> bool:
        return msg_id in self._messages

    def get(self, msg_id: MessageId) -> Optional[DataMessage]:
        """The buffered message with ``msg_id``, if present."""
        return self._messages.get(msg_id)

    def add(self, message: DataMessage, *, ttl: Optional[int] = None) -> bool:
        """Store a message; returns False when it was already buffered.

        ``ttl`` overrides the buffer-wide ``purge_rounds`` for this one
        message — used by experiments that track a single long-lived
        message through normally purging buffers.
        """
        if message.msg_id in self._messages:
            return False
        if ttl is not None and ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        self._messages[message.msg_id] = message
        self._age[message.msg_id] = 0
        if ttl is not None:
            self._ttl_override[message.msg_id] = ttl
        self._digest_cache = None
        return True

    def digest(self) -> Digest:
        """Digest of everything currently buffered."""
        if self._digest_cache is None:
            self._digest_cache = Digest.of(self._messages.keys())
        return self._digest_cache

    def messages_missing_from(
        self, digest: Digest, limit: Optional[int] = None
    ) -> List[DataMessage]:
        """A random subset of buffered messages absent from ``digest``.

        When more than ``limit`` qualify, a uniformly random
        ``limit``-sized subset is returned (Drum "chooses a random subset"
        and sends "at most `max_sends_per_partner` randomly chosen" new
        messages per partner).
        """
        missing = [m for mid, m in self._messages.items() if mid not in digest]
        if limit is not None and len(missing) > limit:
            idx = self._rng.choice(len(missing), size=limit, replace=False)
            missing = [missing[i] for i in idx]
        return missing

    def tick_round(self) -> List[MessageId]:
        """Age all messages one round; purge and return the expired ids."""
        expired: List[MessageId] = []
        for mid in list(self._age):
            self._age[mid] += 1
            lifetime = self._ttl_override.get(mid, self.purge_rounds)
            if self._age[mid] >= lifetime:
                expired.append(mid)
                del self._age[mid]
                self._ttl_override.pop(mid, None)
                old = self._messages.pop(mid)
                del old
        self.purged_total += len(expired)
        if expired:
            self._digest_cache = None
        # Hop counters on surviving messages advance with the local round.
        for mid in self._messages:
            self._messages[mid] = self._messages[mid].aged()
        return expired

    def all_messages(self) -> List[DataMessage]:
        """Every buffered message (insertion order)."""
        return list(self._messages.values())

    def age_of(self, msg_id: MessageId) -> Optional[int]:
        """Rounds since ``msg_id`` entered the buffer, if buffered."""
        return self._age.get(msg_id)
