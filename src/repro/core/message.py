"""Protocol message types.

The round-based simulator exchanges :class:`PushData`, :class:`PullRequest`
and :class:`PullReply`; the full node in :mod:`repro.des` additionally
uses the push-offer handshake (:class:`PushOffer` / :class:`PushReply`)
so that data is only transmitted when the target is actually missing it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.crypto.certificates import Certificate
from repro.crypto.encryption import SealedEnvelope
from repro.crypto.signatures import Signature

class MessageIdFactory:
    """Mints (source, serial) message ids from a private serial counter.

    Each cluster/run owns one factory, so the serial stream always
    starts at 0 for that run — repeated seeded DES runs mint identical
    ids and their result envelopes compare byte-identical without any
    serial canonicalisation.  (A process-global counter would leak the
    history of *prior* in-process runs into the serials.)

    ``next(itertools.count())`` is atomic under the GIL, so one factory
    may be shared by the threaded and asyncio runtimes without a lock.
    """

    __slots__ = ("_serials",)

    def __init__(self) -> None:
        self._serials = itertools.count()

    def fresh(self, source: int) -> Tuple[int, int]:
        """Mint the next (source, serial) id."""
        return (source, next(self._serials))


#: Module-level fallback factory for nodes constructed without a
#: cluster (direct :class:`~repro.des.node.GossipNode` use, tests).
#: Ids from it are only unique per process — cluster runners must pass
#: their own :class:`MessageIdFactory` for reproducible serials.
_default_ids = MessageIdFactory()


def fresh_message_id(source: int) -> Tuple[int, int]:
    """Mint a process-unique (source, serial) id from the default factory."""
    return _default_ids.fresh(source)


@dataclass(frozen=True, slots=True)
class DataMessage:
    """An application multicast message.

    ``round_counter`` implements the paper's hop-count latency
    measurement: the source logs 0 and ships the message with counter 1;
    every receiver logs the counter it sees, and every process increments
    the counters of all buffered messages once per local round.
    """

    msg_id: Tuple[int, int]
    source: int
    payload: object
    round_counter: int = 0
    signature: Optional[Signature] = None
    certificate: Optional[Certificate] = None
    #: Memoised sha256 of the pickled signed body.  The signed body
    #: excludes the mutating ``round_counter``, so the digest survives
    #: :meth:`aged` copies — sign/verify stops re-serialising the same
    #: message at every hop.  Excluded from equality/hash: two messages
    #: are the same message whether or not their digest was computed.
    _body_digest: Optional[str] = field(
        default=None, repr=False, compare=False
    )

    def aged(self) -> "DataMessage":
        """Copy with the round counter incremented (one round elapsed)."""
        return DataMessage(
            msg_id=self.msg_id,
            source=self.source,
            payload=self.payload,
            round_counter=self.round_counter + 1,
            signature=self.signature,
            certificate=self.certificate,
            _body_digest=self._body_digest,
        )

    def signed_body(self) -> tuple:
        """The tuple a source signature covers (counter excluded: it mutates)."""
        return (self.msg_id, self.source, self.payload)

    def body_digest(self) -> str:
        """Digest of :meth:`signed_body`, computed once per message body.

        Byte-identical to what :func:`repro.crypto.signatures.sign` and
        ``verify`` derive from the body themselves; they accept it via
        their ``digest=`` parameter to skip the pickle+sha256 work on
        every verification hop.
        """
        digest = self._body_digest
        if digest is None:
            from repro.crypto.signatures import payload_digest

            digest = payload_digest(self.signed_body())
            object.__setattr__(self, "_body_digest", digest)
        return digest

    def wire_size(self) -> int:
        """Rough wire size in bytes (the paper uses 50-byte payloads)."""
        payload_len = len(self.payload) if hasattr(self.payload, "__len__") else 8
        return 32 + payload_len


@dataclass(frozen=True, slots=True)
class Digest:
    """A summary of the message ids a process currently buffers."""

    message_ids: FrozenSet[Tuple[int, int]]

    @classmethod
    def of(cls, ids) -> "Digest":
        return cls(message_ids=frozenset(ids))

    def __contains__(self, msg_id: Tuple[int, int]) -> bool:
        return msg_id in self.message_ids

    def __len__(self) -> int:
        return len(self.message_ids)

    def missing_from(self, ids) -> FrozenSet[Tuple[int, int]]:
        """Ids in ``ids`` that this digest does not cover."""
        return frozenset(i for i in ids if i not in self.message_ids)

    def wire_size(self) -> int:
        return 16 + 8 * len(self.message_ids)


@dataclass(frozen=True, slots=True)
class PushOffer:
    """Step 1 of the push handshake: 'I have data; reply with a digest'.

    ``reply_port`` is the sender's randomly chosen port for the
    push-reply, sealed under the target's public key.
    """

    sender: int
    reply_port: SealedEnvelope

    def wire_size(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class PushReply:
    """Step 2: the target's digest plus its sealed random data port."""

    sender: int
    digest: Digest
    data_port: SealedEnvelope

    def wire_size(self) -> int:
        return 24 + self.digest.wire_size()


@dataclass(frozen=True, slots=True)
class PushData:
    """Step 3 (or the whole push in the round simulator): data messages."""

    sender: int
    messages: Tuple[DataMessage, ...]

    def wire_size(self) -> int:
        return 16 + sum(m.wire_size() for m in self.messages)


@dataclass(frozen=True, slots=True)
class PullRequest:
    """A digest of what the requester has, plus where to send the reply.

    ``reply_port`` is sealed for the target when random ports are in use;
    the no-random-ports ablation sends a plain well-known port number.
    """

    sender: int
    digest: Digest
    reply_port: object  # SealedEnvelope or plain int for the ablation

    def wire_size(self) -> int:
        return 24 + self.digest.wire_size()


@dataclass(frozen=True, slots=True)
class PullReply:
    """Messages the replier has that were missing from the digest."""

    sender: int
    messages: Tuple[DataMessage, ...]

    def wire_size(self) -> int:
        return 16 + sum(m.wire_size() for m in self.messages)
