"""Protocol core: Drum, Push, and Pull building blocks.

This package holds everything the protocols themselves are made of —
configuration, message types, digests, buffers, view selection, resource
bounds, and random-port management — plus the object-level round
protocol implementations used by :mod:`repro.sim`'s exact engine.  The
full asynchronous node (push-offer handshake, timers, purging) lives in
:mod:`repro.des`.
"""

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import (
    DataMessage,
    Digest,
    PullRequest,
    PullReply,
    PushData,
    PushOffer,
    PushReply,
)
from repro.core.buffer import MessageBuffer
from repro.core.bounds import ResourceBounds
from repro.core.ports import RandomPortAllocator
from repro.core.views import select_view
from repro.core.protocol import GossipProcess
from repro.core.drum import DrumProcess
from repro.core.push import PushProcess
from repro.core.pull import PullProcess
from repro.core.variants import DrumNoRandomPortsProcess, DrumSharedBoundsProcess

PROCESS_CLASSES = {
    ProtocolKind.DRUM: DrumProcess,
    ProtocolKind.PUSH: PushProcess,
    ProtocolKind.PULL: PullProcess,
    ProtocolKind.DRUM_NO_RANDOM_PORTS: DrumNoRandomPortsProcess,
    ProtocolKind.DRUM_SHARED_BOUNDS: DrumSharedBoundsProcess,
}

__all__ = [
    "DataMessage",
    "Digest",
    "DrumNoRandomPortsProcess",
    "DrumProcess",
    "DrumSharedBoundsProcess",
    "GossipProcess",
    "MessageBuffer",
    "PROCESS_CLASSES",
    "ProtocolConfig",
    "ProtocolKind",
    "PullReply",
    "PullRequest",
    "PushData",
    "PushOffer",
    "PushProcess",
    "PushReply",
    "RandomPortAllocator",
    "ResourceBounds",
    "select_view",
]
