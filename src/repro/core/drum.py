"""Drum: the DoS-resistant protocol (push + pull, separate bounds, random ports)."""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.protocol import GossipProcess
from repro.net.network import Network
from repro.util.rng import SeedLike


class DrumProcess(GossipProcess):
    """A Drum process for the exact round simulator.

    Drum splits the fan-out between push and pull, bounds each channel's
    per-round acceptance separately, and awaits pull-replies on
    per-round random encrypted ports — the combination that makes a
    targeted flood unable to stop it from either sending (push targets
    are unpredictable) or receiving (pull-reply ports are unpredictable).
    """

    def __init__(
        self,
        pid: int,
        members: Sequence[int],
        network: Network,
        *,
        config: ProtocolConfig = None,
        seed: SeedLike = None,
        has_message: bool = False,
    ):
        if config is None:
            config = ProtocolConfig.drum()
        if config.kind is not ProtocolKind.DRUM:
            raise ValueError(f"DrumProcess requires a drum config, got {config.kind}")
        super().__init__(
            pid, config, members, network, seed=seed, has_message=has_message
        )
