"""Section 9 ablation variants of Drum.

Two deliberately weakened Drums, used to measure how much each
DoS-mitigation technique contributes:

- :class:`DrumNoRandomPortsProcess` — pull-replies arrive on a
  well-known (hence attackable) port.  The adversary model splits the
  pull share of its budget between the pull-request and pull-reply
  ports (Figure 12a).
- :class:`DrumSharedBoundsProcess` — one joint acceptance quota over
  the *control* channels: push-offers, pull-requests, and push-replies
  (Figure 12b).  This variant runs the full push-offer handshake,
  because that is where sharing hurts: the fabricated flood on the
  well-known ports drains the quota that valid push-replies — arriving
  on unattackable random ports — needed, so an attacked process loses
  its ability to *send* via push even though no attacker packet ever
  reaches a random port.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import PushOffer, PushReply
from repro.core.protocol import GossipProcess
from repro.crypto.encryption import seal
from repro.net.address import (
    PORT_PULL_REQUEST,
    PORT_PUSH_DATA,
    PORT_PUSH_OFFER,
    Address,
)
from repro.net.network import Network
from repro.net.packet import Packet
from repro.util.rng import SeedLike


class DrumNoRandomPortsProcess(GossipProcess):
    """Drum with pull-replies on a well-known port (Fig 12a)."""

    def __init__(
        self,
        pid: int,
        members: Sequence[int],
        network: Network,
        *,
        config: ProtocolConfig = None,
        seed: SeedLike = None,
        has_message: bool = False,
    ):
        if config is None:
            config = ProtocolConfig.drum_no_random_ports()
        if config.kind is not ProtocolKind.DRUM_NO_RANDOM_PORTS:
            raise ValueError(
                f"DrumNoRandomPortsProcess requires a no-random-ports config, "
                f"got {config.kind}"
            )
        super().__init__(
            pid, config, members, network, seed=seed, has_message=has_message
        )


class DrumSharedBoundsProcess(GossipProcess):
    """Drum with one joint control-message quota (Fig 12b).

    Push runs the full offer handshake within a round:

    1. send ``PushOffer`` (with a sealed random reply port) to each push
       target; the offer lands on the target's well-known offer port;
    2. the target accepts offers and pull-requests from the shared
       quota, answering accepted offers with a ``PushReply`` (digest +
       sealed random data port);
    3. the offerer reads push-replies from whatever quota the flood has
       left, and sends data the digest was missing to the data port;
    4. data ports are drained in the engine's data phase.
    """

    def __init__(
        self,
        pid: int,
        members: Sequence[int],
        network: Network,
        *,
        config: ProtocolConfig = None,
        seed: SeedLike = None,
        has_message: bool = False,
    ):
        if config is None:
            config = ProtocolConfig.drum_shared_bounds()
        if config.kind is not ProtocolKind.DRUM_SHARED_BOUNDS:
            raise ValueError(
                f"DrumSharedBoundsProcess requires a shared-bounds config, "
                f"got {config.kind}"
            )
        super().__init__(
            pid, config, members, network, seed=seed, has_message=has_message
        )
        # Push uses the offer handshake: listen for offers, not raw data.
        network.close_port_at(pid, PORT_PUSH_DATA)
        network.open_port_at(pid, PORT_PUSH_OFFER)
        self._offer_reply_ports: List[int] = []
        self._data_ports: List[int] = []
        self._quota_left = 0
        # Offer-port destination/source addresses, shared network-wide
        # like the base class's push/pull tables.
        self._offer_dst = network.wk_addrs(PORT_PUSH_OFFER, members)
        self._offer_src = self._offer_dst[pid]

    # -- send -----------------------------------------------------------------

    def _send_push_phase(self) -> None:
        view = self._view_push
        if not view:
            return
        pid = self.pid
        network = self.network
        send = network.send
        src = self._offer_src
        dst = self._offer_dst
        peer_keys = self.peer_keys
        for target in view:
            port = self._ports.allocate()
            network.open_port_at(pid, port)
            self._offer_reply_ports.append(port)
            target_key = peer_keys.get(target)
            sealed = seal(target_key, port) if target_key is not None else port
            send(
                Packet(
                    dst=dst[target],
                    payload=PushOffer(sender=pid, reply_port=sealed),
                    sender=src,
                )
            )

    # -- receive ----------------------------------------------------------------

    def receive_phase(self) -> None:
        """Drain offers and pull-requests from the joint quota."""
        offer_channel = self.network.channel_at(self.pid, PORT_PUSH_OFFER)
        pull_channel = self.network.channel_at(self.pid, PORT_PULL_REQUEST)
        offers_total = len(offer_channel)
        pulls_total = len(pull_channel)
        # Push-replies arrive interleaved with the flood over the course
        # of a real round, so they compete for the quota on equal terms.
        # One reply per offer sent is the (tight) upper bound on how many
        # will arrive; the quota is split uniformly over all control
        # arrivals by iterated hypergeometric draws.
        replies_expected = len(self._view_push)
        total = offers_total + pulls_total + replies_expected
        quota = self.config.shared_in_bound
        if total <= quota:
            offer_slots, pull_slots = offers_total, pulls_total
            self._quota_left = replies_expected
        else:
            offer_slots = int(
                self.rng.hypergeometric(
                    offers_total, pulls_total + replies_expected, quota
                )
            )
            remaining = quota - offer_slots
            if remaining > 0 and pulls_total:
                pull_slots = int(
                    self.rng.hypergeometric(
                        pulls_total, replies_expected, remaining
                    )
                )
            else:
                pull_slots = 0
            self._quota_left = remaining - pull_slots
        for packet in offer_channel.drain(offer_slots):
            self._answer_push_offer(packet.payload)
        for packet in pull_channel.drain(pull_slots):
            self._answer_pull_request(packet.payload)

    def _answer_push_offer(self, offer: PushOffer) -> None:
        if not isinstance(offer, PushOffer):
            return
        reply_port = self._unseal_port(offer.reply_port)
        if reply_port is None:
            return
        data_port = self._ports.allocate()
        self.network.open_port_at(self.pid, data_port)
        self._data_ports.append(data_port)
        offerer_key = self.peer_keys.get(offer.sender)
        sealed = (
            seal(offerer_key, data_port) if offerer_key is not None else data_port
        )
        self.network.send(
            Packet(
                dst=Address(offer.sender, reply_port),
                payload=PushReply(
                    sender=self.pid, digest=self._digest(), data_port=sealed
                ),
                sender=self._offer_src,
            )
        )

    # -- replies --------------------------------------------------------------

    def reply_phase(self) -> None:
        """Read push-replies from the leftover quota, then pull-replies."""
        arrivals = []
        channel_at = self.network.channel_at
        pid = self.pid
        for port in self._offer_reply_ports:
            channel = channel_at(pid, port)
            if channel is not None:
                arrivals.extend(channel.drain(None))
        self._offer_reply_ports = []
        if arrivals and self._quota_left > 0:
            order = self.rng.permutation(len(arrivals))
            for i in order[: self._quota_left]:
                self._handle_push_reply(arrivals[i].payload)
        super().reply_phase()

    def _handle_push_reply(self, reply: PushReply) -> None:
        if not isinstance(reply, PushReply):
            return
        data_port = self._unseal_port(reply.data_port)
        if data_port is None:
            return
        if self._had_message and (0, 0) not in reply.digest:
            self.network.send(
                Packet(
                    dst=Address(reply.sender, data_port),
                    payload=self._push_payload_with,
                    sender=self._offer_src,
                )
            )

    # -- data -------------------------------------------------------------------

    def data_phase(self) -> None:
        """Ingest push data that arrived on this round's data ports."""
        channel_at = self.network.channel_at
        pid = self.pid
        for port in self._data_ports:
            channel = channel_at(pid, port)
            if channel is not None:
                for packet in channel.drain(None):
                    self._ingest_push(packet.payload)
        self._data_ports = []
