"""Object-level round protocol (the exact simulator's node).

This implements, faithfully at the level of individual packets and
ports, the round semantics the paper's MATLAB simulations use:

- every round each process draws its push/pull views and gossips
  regardless of whether it holds the tracked message ``M``;
- push is modelled without the offer handshake (as in the paper's
  simulations — the full handshake lives in :mod:`repro.des`);
- a pull-request advertises a reply port, random and sealed by default,
  well-known in the no-random-ports ablation;
- each channel accepts a bounded, uniformly random subset of what
  arrived and the remainder is discarded at round end;
- pull-replies are sent and received within the same round (the paper
  assumes delivery latency below half a round).

The engine in :mod:`repro.sim.engine` drives the phases in lockstep:
``begin_round`` → ``send_phase`` → (adversary floods) →
``receive_phase`` → ``reply_phase`` → ``end_round``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import (
    DataMessage,
    Digest,
    PullReply,
    PullRequest,
    PushData,
)
from repro.core.ports import RandomPortAllocator
from repro.crypto.encryption import SealedEnvelope, open_envelope, seal
from repro.crypto.keys import KeyPair
from repro.net.address import (
    PORT_PULL_REPLY,
    PORT_PULL_REQUEST,
    PORT_PUSH_DATA,
    Address,
)
from repro.net.network import Network
from repro.net.packet import Packet
from repro.util import derive_rng
from repro.util.rng import SeedLike
from repro.core.views import select_disjoint_views


class GossipProcess:
    """One correct process in the exact round-based simulation."""

    def __init__(
        self,
        pid: int,
        config: ProtocolConfig,
        members: Sequence[int],
        network: Network,
        *,
        seed: SeedLike = None,
        has_message: bool = False,
    ):
        self.pid = pid
        self.config = config
        self.members = list(members)
        self.network = network
        self.rng = derive_rng(seed)
        self.keys = KeyPair(owner=pid)
        self.peer_keys: Dict[int, object] = {}

        #: Whether this process currently holds the tracked message M.
        self.has_message = has_message
        #: Snapshot of ``has_message`` at the top of the round; gossip
        #: content reflects the round-start state, matching the paper's
        #: synchronous analysis.
        self._had_message = has_message
        #: Round number at which M was delivered (0 for the source).
        self.delivery_round: Optional[int] = 0 if has_message else None
        #: How M arrived: "source", "push", or "pull".
        self.delivery_path: Optional[str] = "source" if has_message else None

        #: Optional ``(observer_pid, peer_pid)`` callback fired whenever
        #: an accepted inbound message reveals a live peer — the hook the
        #: exact engine's membership layer uses to feed failure
        #: detectors and disseminate awareness along *realized* gossip
        #: contacts.  None (the default) costs one predicate test per
        #: ingested message.
        self.on_contact = None

        self.round = 0
        self._ports = RandomPortAllocator(
            config.random_port_lifetime, seed=self.rng
        )
        self._view_push: List[int] = []
        self._view_pull: List[int] = []
        self._pending_reply_ports: List[int] = []

        # -- hot-path caches ------------------------------------------------
        # Everything below is immutable for the process's lifetime, and
        # every item was a measured per-packet or per-round allocation:
        # protocol flags resolved through enum properties, the two-state
        # gossip content (M is the only message the round simulator
        # tracks, so payloads/digests/replies take exactly two values),
        # and one Address object per (peer, well-known port).
        self._uses_push = config.kind.uses_push
        self._uses_pull = config.kind.uses_pull
        self._pub = self.keys.public
        self._push_bound = config.push_in_bound
        self._pull_bound = config.pull_in_bound
        self._tracked = DataMessage(msg_id=(0, 0), source=0, payload=b"M")
        self._digest_with = Digest.of([(0, 0)])
        self._digest_empty = Digest.of([])
        self._push_payload_with = PushData(
            sender=pid, messages=(self._tracked,)
        )
        self._push_payload_empty = PushData(sender=pid, messages=())
        self._pull_reply_with = PullReply(
            sender=pid, messages=(self._tracked,)
        )
        self._pull_reply_empty = PullReply(sender=pid, messages=())
        # The destination tables live on the Network and are shared by
        # every process: n Address objects per port for the whole group,
        # not n² (a measured init hotspot at paper scale).
        self._push_dst = network.wk_addrs(PORT_PUSH_DATA, members)
        self._pull_dst = network.wk_addrs(PORT_PULL_REQUEST, members)
        self._push_src = self._push_dst[pid]
        self._pull_src = self._pull_dst[pid]
        self._others = [m for m in members if m != pid]
        self._view_sizes = [config.view_push_size, config.view_pull_size]
        self._total_view = sum(self._view_sizes)
        # Whether the inlined disjoint draw applies (it always does at
        # paper scale; tiny groups fall back to select_disjoint_views).
        self._disjoint_ok = len(self._others) >= self._total_view

        network.register_node(pid)
        if config.kind.uses_push:
            network.open_port_at(pid, PORT_PUSH_DATA)
        if config.kind.uses_pull:
            network.open_port_at(pid, PORT_PULL_REQUEST)
            if not config.uses_random_ports:
                network.open_port_at(pid, PORT_PULL_REPLY)

    # -- key distribution --------------------------------------------------

    def learn_keys(self, keys: Dict[int, object]) -> None:
        """Install the public keys of the other group members."""
        self.peer_keys = dict(keys)

    # -- dynamic membership --------------------------------------------------

    def set_gossip_candidates(self, candidates) -> None:
        """Replace the target pool views are drawn from.

        The dynamic-membership layer calls this when the process's local
        view changes (join/leave/expel applied, failure-detector
        suspicion or rehabilitation).  The well-known destination tables
        are keyed by pid and already cover the full id universe the
        engine constructed the process with, so only the candidate list
        and its derived caches change.  Static runs never call this —
        their hot path is untouched.
        """
        members = sorted(set(candidates) | {self.pid})
        self.members = members
        self._others = [m for m in members if m != self.pid]
        self._disjoint_ok = len(self._others) >= self._total_view

    # -- round phases --------------------------------------------------------

    def begin_round(self) -> None:
        """Snapshot state and draw this round's views.

        The common case inlines :func:`select_disjoint_views`' disjoint
        draw against the precomputed candidate list — the same single
        ``choice`` call on the same generator, so the RNG stream (and
        therefore every seeded trace) is unchanged.
        """
        self._had_message = self.has_message
        if self._disjoint_ok:
            others = self._others
            idx = self.rng.choice(
                len(others), size=self._total_view, replace=False
            ).tolist()
            split = self._view_sizes[0]
            self._view_push = [others[i] for i in idx[:split]]
            self._view_pull = [others[i] for i in idx[split:]]
        else:
            self._view_push, self._view_pull = select_disjoint_views(
                self.members, self.pid, self._view_sizes, self.rng
            )

    def send_phase(self) -> None:
        """Send push data to view_push and pull-requests to view_pull."""
        self._send_push_phase()
        self._send_pull_phase()

    def _send_push_phase(self) -> None:
        view = self._view_push
        if not view:
            return
        # The payload takes one of two values; both are immutable and
        # prebuilt, so only the Packet is allocated per target.
        payload = (
            self._push_payload_with
            if self._had_message
            else self._push_payload_empty
        )
        send = self.network.send
        src = self._push_src
        dst = self._push_dst
        for target in view:
            send(Packet(dst=dst[target], payload=payload, sender=src))

    def _send_pull_phase(self) -> None:
        view = self._view_pull
        if not view:
            return
        digest = self._digest_with if self._had_message else self._digest_empty
        network = self.network
        send = network.send
        src = self._pull_src
        dst = self._pull_dst
        pid = self.pid
        if self.config.uses_random_ports:
            # Inlined _advertise_reply_port: allocate a random reply
            # port, open its bounded channel, and seal the port number
            # for the target.  Same calls in the same order, minus the
            # per-target method dispatch and Address construction.
            allocate = self._ports.allocate
            open_at = network.open_port_at
            pending = self._pending_reply_ports
            peer_key = self.peer_keys.get
            for target in view:
                port = allocate()
                open_at(pid, port)
                pending.append(port)
                key = peer_key(target)
                reply_port = (
                    SealedEnvelope(recipient=key, _plaintext=port)
                    if key is not None
                    else port
                )
                send(
                    Packet(
                        dst=dst[target],
                        payload=PullRequest(
                            sender=pid, digest=digest, reply_port=reply_port
                        ),
                        sender=src,
                    )
                )
        else:
            for target in view:
                reply_port = self._advertise_reply_port(target)
                send(
                    Packet(
                        dst=dst[target],
                        payload=PullRequest(
                            sender=pid, digest=digest, reply_port=reply_port
                        ),
                        sender=src,
                    )
                )

    def receive_phase(self) -> None:
        """Drain bounded channels: ingest pushes, answer pull-requests."""
        if self._uses_push:
            for packet in self._drain(PORT_PUSH_DATA, self._push_bound):
                self._ingest_push(packet.payload)
        if self._uses_pull:
            for packet in self._drain(PORT_PULL_REQUEST, self._pull_bound):
                self._answer_pull_request(packet.payload)

    def reply_phase(self) -> None:
        """Read the pull-replies that arrived on this round's reply ports."""
        if not self._uses_pull:
            return
        if self.config.uses_random_ports:
            pid = self.pid
            bound = self._pull_bound
            get_channel = self.network.channel_at
            for port in self._pending_reply_ports:
                channel = get_channel(pid, port)
                if channel is None:
                    continue
                # Each reply port awaits a single reply, but its channel
                # is still bounded: if an adversary *does* learn the port
                # (e.g. the snooping ablation against cleartext ports),
                # its flood competes for these slots.  Under Drum proper
                # at most one reply arrives, so the bound never binds.
                for packet in channel.drain(bound):
                    self._ingest_pull_reply(packet.payload)
        else:
            for packet in self._drain(PORT_PULL_REPLY, self._pull_bound):
                self._ingest_pull_reply(packet.payload)
        self._pending_reply_ports = []

    def data_phase(self) -> None:
        """Hook for protocols whose data arrives after the reply phase.

        The base protocols deliver everything by the reply phase; the
        shared-bounds variant's push handshake delivers data here.
        """

    def end_round(self) -> None:
        """Expire random-port listeners and advance the local round."""
        expired = self._ports.tick_round()
        if expired:
            close = self.network.close_port_at
            pid = self.pid
            for port in expired:
                close(pid, port)
        self.round += 1

    # -- helpers -----------------------------------------------------------

    def _tracked_message(self) -> DataMessage:
        return self._tracked

    def _digest(self) -> Digest:
        return self._digest_with if self._had_message else self._digest_empty

    def _advertise_reply_port(self, target: int) -> object:
        """Choose and (by default) seal the port awaiting the pull-reply."""
        if not self.config.uses_random_ports:
            self._pending_reply_ports.append(PORT_PULL_REPLY)
            return PORT_PULL_REPLY
        port = self._ports.allocate()
        self.network.open_port_at(self.pid, port)
        self._pending_reply_ports.append(port)
        target_key = self.peer_keys.get(target)
        if target_key is not None:
            return seal(target_key, port)
        return port

    def _drain(self, port: int, bound: Optional[int]) -> List[Packet]:
        channel = self.network.channel_at(self.pid, port)
        return [] if channel is None else channel.drain(bound)

    def _ingest_push(self, payload: PushData) -> None:
        if not isinstance(payload, PushData):
            return  # junk on the push port: fails sanity checks
        if self.on_contact is not None:
            self.on_contact(self.pid, payload.sender)
        for message in payload.messages:
            self._deliver(message, via="push")

    def _unseal_port(self, value) -> Optional[int]:
        """Unwrap a (possibly sealed) advertised port; None when bogus.

        When the envelope's recipient is this process's own public-key
        *object* — the invariant under engine-distributed keys — the
        key check reduces to an identity test; anything else takes the
        full :func:`open_envelope` path.
        """
        if type(value) is SealedEnvelope:
            if value.recipient is self._pub:
                value = value._plaintext
            else:
                try:
                    value = open_envelope(self.keys.private, value)
                except Exception:
                    return None  # not sealed for us: drop
        return value if isinstance(value, int) else None

    def _answer_pull_request(self, payload: PullRequest) -> None:
        if not isinstance(payload, PullRequest):
            return
        reply_port = self._unseal_port(payload.reply_port)
        if reply_port is None:
            return
        if self.on_contact is not None:
            self.on_contact(self.pid, payload.sender)
        # A reply is sent even when we have nothing new: real processes
        # always have *other* traffic, and the reply itself loads the
        # requester's reply channel in the no-random-ports ablation.
        reply = (
            self._pull_reply_with
            if self._had_message and (0, 0) not in payload.digest
            else self._pull_reply_empty
        )
        self.network.send(
            Packet(
                dst=Address(payload.sender, reply_port),
                payload=reply,
                sender=self._pull_src,
            )
        )

    def _ingest_pull_reply(self, payload: PullReply) -> None:
        if not isinstance(payload, PullReply):
            return
        if self.on_contact is not None:
            self.on_contact(self.pid, payload.sender)
        for message in payload.messages:
            self._deliver(message, via="pull")

    def _deliver(self, message: DataMessage, via: str) -> None:
        if message.msg_id != (0, 0):
            return
        if not self.has_message:
            self.has_message = True
            self.delivery_round = self.round + 1
            self.delivery_path = via
