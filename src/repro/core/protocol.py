"""Object-level round protocol (the exact simulator's node).

This implements, faithfully at the level of individual packets and
ports, the round semantics the paper's MATLAB simulations use:

- every round each process draws its push/pull views and gossips
  regardless of whether it holds the tracked message ``M``;
- push is modelled without the offer handshake (as in the paper's
  simulations — the full handshake lives in :mod:`repro.des`);
- a pull-request advertises a reply port, random and sealed by default,
  well-known in the no-random-ports ablation;
- each channel accepts a bounded, uniformly random subset of what
  arrived and the remainder is discarded at round end;
- pull-replies are sent and received within the same round (the paper
  assumes delivery latency below half a round).

The engine in :mod:`repro.sim.engine` drives the phases in lockstep:
``begin_round`` → ``send_phase`` → (adversary floods) →
``receive_phase`` → ``reply_phase`` → ``end_round``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import (
    DataMessage,
    Digest,
    PullReply,
    PullRequest,
    PushData,
)
from repro.core.ports import RandomPortAllocator
from repro.crypto.encryption import SealedEnvelope, open_envelope, seal
from repro.crypto.keys import KeyPair
from repro.net.address import (
    PORT_PULL_REPLY,
    PORT_PULL_REQUEST,
    PORT_PUSH_DATA,
    Address,
)
from repro.net.network import Network
from repro.net.packet import Packet
from repro.util import derive_rng
from repro.util.rng import SeedLike
from repro.core.views import select_disjoint_views


class GossipProcess:
    """One correct process in the exact round-based simulation."""

    def __init__(
        self,
        pid: int,
        config: ProtocolConfig,
        members: Sequence[int],
        network: Network,
        *,
        seed: SeedLike = None,
        has_message: bool = False,
    ):
        self.pid = pid
        self.config = config
        self.members = list(members)
        self.network = network
        self.rng = derive_rng(seed)
        self.keys = KeyPair(owner=pid)
        self.peer_keys: Dict[int, object] = {}

        #: Whether this process currently holds the tracked message M.
        self.has_message = has_message
        #: Snapshot of ``has_message`` at the top of the round; gossip
        #: content reflects the round-start state, matching the paper's
        #: synchronous analysis.
        self._had_message = has_message
        #: Round number at which M was delivered (0 for the source).
        self.delivery_round: Optional[int] = 0 if has_message else None
        #: How M arrived: "source", "push", or "pull".
        self.delivery_path: Optional[str] = "source" if has_message else None

        self.round = 0
        self._ports = RandomPortAllocator(
            config.random_port_lifetime, seed=self.rng
        )
        self._view_push: List[int] = []
        self._view_pull: List[int] = []
        self._pending_reply_ports: List[int] = []

        network.register_node(pid)
        if config.kind.uses_push:
            network.open_port(Address(pid, PORT_PUSH_DATA))
        if config.kind.uses_pull:
            network.open_port(Address(pid, PORT_PULL_REQUEST))
            if not config.uses_random_ports:
                network.open_port(Address(pid, PORT_PULL_REPLY))

    # -- key distribution --------------------------------------------------

    def learn_keys(self, keys: Dict[int, object]) -> None:
        """Install the public keys of the other group members."""
        self.peer_keys = dict(keys)

    # -- round phases --------------------------------------------------------

    def begin_round(self) -> None:
        """Snapshot state and draw this round's views."""
        self._had_message = self.has_message
        views = select_disjoint_views(
            self.members,
            self.pid,
            [self.config.view_push_size, self.config.view_pull_size],
            self.rng,
        )
        self._view_push, self._view_pull = views

    def send_phase(self) -> None:
        """Send push data to view_push and pull-requests to view_pull."""
        self._send_push_phase()
        self._send_pull_phase()

    def _send_push_phase(self) -> None:
        for target in self._view_push:
            payload = PushData(
                sender=self.pid,
                messages=(self._tracked_message(),) if self._had_message else (),
            )
            self.network.send(
                Packet(
                    dst=Address(target, PORT_PUSH_DATA),
                    payload=payload,
                    sender=Address(self.pid, PORT_PUSH_DATA),
                )
            )

    def _send_pull_phase(self) -> None:
        for target in self._view_pull:
            reply_port = self._advertise_reply_port(target)
            payload = PullRequest(
                sender=self.pid,
                digest=self._digest(),
                reply_port=reply_port,
            )
            self.network.send(
                Packet(
                    dst=Address(target, PORT_PULL_REQUEST),
                    payload=payload,
                    sender=Address(self.pid, PORT_PULL_REQUEST),
                )
            )

    def receive_phase(self) -> None:
        """Drain bounded channels: ingest pushes, answer pull-requests."""
        if self.config.kind.uses_push:
            accepted = self._drain(PORT_PUSH_DATA, self.config.push_in_bound)
            for packet in accepted:
                self._ingest_push(packet.payload)
        if self.config.kind.uses_pull:
            accepted = self._drain(PORT_PULL_REQUEST, self.config.pull_in_bound)
            for packet in accepted:
                self._answer_pull_request(packet.payload)

    def reply_phase(self) -> None:
        """Read the pull-replies that arrived on this round's reply ports."""
        if not self.config.kind.uses_pull:
            return
        if self.config.uses_random_ports:
            for port in self._pending_reply_ports:
                addr = Address(self.pid, port)
                if not self.network.is_open(addr):
                    continue
                # Each reply port awaits a single reply, but its channel
                # is still bounded: if an adversary *does* learn the port
                # (e.g. the snooping ablation against cleartext ports),
                # its flood competes for these slots.  Under Drum proper
                # at most one reply arrives, so the bound never binds.
                accepted = self.network.channel(addr).drain(
                    self.config.pull_in_bound
                )
                for packet in accepted:
                    self._ingest_pull_reply(packet.payload)
        else:
            accepted = self._drain(PORT_PULL_REPLY, self.config.pull_in_bound)
            for packet in accepted:
                self._ingest_pull_reply(packet.payload)
        self._pending_reply_ports = []

    def data_phase(self) -> None:
        """Hook for protocols whose data arrives after the reply phase.

        The base protocols deliver everything by the reply phase; the
        shared-bounds variant's push handshake delivers data here.
        """

    def end_round(self) -> None:
        """Expire random-port listeners and advance the local round."""
        for port in self._ports.tick_round():
            self.network.close_port(Address(self.pid, port))
        self.round += 1

    # -- helpers -----------------------------------------------------------

    def _tracked_message(self) -> DataMessage:
        return DataMessage(msg_id=(0, 0), source=0, payload=b"M")

    def _digest(self) -> Digest:
        return Digest.of([(0, 0)]) if self._had_message else Digest.of([])

    def _advertise_reply_port(self, target: int) -> object:
        """Choose and (by default) seal the port awaiting the pull-reply."""
        if not self.config.uses_random_ports:
            self._pending_reply_ports.append(PORT_PULL_REPLY)
            return PORT_PULL_REPLY
        port = self._ports.allocate()
        self.network.open_port(Address(self.pid, port))
        self._pending_reply_ports.append(port)
        target_key = self.peer_keys.get(target)
        if target_key is not None:
            return seal(target_key, port)
        return port

    def _drain(self, port: int, bound: Optional[int]) -> List[Packet]:
        addr = Address(self.pid, port)
        if not self.network.is_open(addr):
            return []
        return self.network.channel(addr).drain(bound)

    def _ingest_push(self, payload: PushData) -> None:
        if not isinstance(payload, PushData):
            return  # junk on the push port: fails sanity checks
        for message in payload.messages:
            self._deliver(message, via="push")

    def _answer_pull_request(self, payload: PullRequest) -> None:
        if not isinstance(payload, PullRequest):
            return
        reply_port = payload.reply_port
        if isinstance(reply_port, SealedEnvelope):
            try:
                reply_port = open_envelope(self.keys.private, reply_port)
            except Exception:
                return  # not sealed for us: drop
        if not isinstance(reply_port, int):
            return
        missing = (
            (self._tracked_message(),)
            if self._had_message and (0, 0) not in payload.digest
            else ()
        )
        # A reply is sent even when we have nothing new: real processes
        # always have *other* traffic, and the reply itself loads the
        # requester's reply channel in the no-random-ports ablation.
        self.network.send(
            Packet(
                dst=Address(payload.sender, reply_port),
                payload=PullReply(sender=self.pid, messages=missing),
                sender=Address(self.pid, PORT_PULL_REQUEST),
            )
        )

    def _ingest_pull_reply(self, payload: PullReply) -> None:
        if not isinstance(payload, PullReply):
            return
        for message in payload.messages:
            self._deliver(message, via="pull")

    def _deliver(self, message: DataMessage, via: str) -> None:
        if message.msg_id != (0, 0):
            return
        if not self.has_message:
            self.has_message = True
            self.delivery_round = self.round + 1
            self.delivery_path = via
