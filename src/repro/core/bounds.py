"""Per-round resource accounting.

Drum bounds, separately, how many messages it accepts per round on each
channel: an attack that floods one channel exhausts only that channel's
quota.  The Section 9 "shared bounds" ablation replaces the separate
quotas with one joint quota over the control channels, which is exactly
the configuration this class can also express — and the experiments show
it collapses under attack.

:class:`ResourceBounds` is used by the full node (:mod:`repro.des`);
the round-based simulator expresses the same semantics through
:class:`~repro.net.channel.BoundedChannel` drain bounds.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional


class ResourceBounds:
    """Tracks per-channel acceptance quotas within one round."""

    def __init__(
        self,
        bounds: Mapping[str, int],
        *,
        shared_channels: Iterable[str] = (),
        shared_bound: Optional[int] = None,
    ):
        """``bounds`` maps channel name -> per-round quota.

        Channels listed in ``shared_channels`` ignore their individual
        quota and draw from the single ``shared_bound`` pool instead.
        """
        for name, bound in bounds.items():
            if bound < 0:
                raise ValueError(f"bound for {name!r} must be >= 0, got {bound}")
        shared = set(shared_channels)
        unknown = shared - set(bounds)
        if unknown:
            raise ValueError(f"shared channels not in bounds: {sorted(unknown)}")
        if shared and shared_bound is None:
            raise ValueError("shared_channels given without shared_bound")
        self._bounds = dict(bounds)
        self._shared = shared
        self._shared_bound = shared_bound
        self._used: Dict[str, int] = {name: 0 for name in bounds}
        self._shared_used = 0
        self.rejected: Dict[str, int] = {name: 0 for name in bounds}

    def bound_for(self, channel: str) -> Optional[int]:
        """The effective quota of ``channel`` (None = draws from shared)."""
        if channel in self._shared:
            return self._shared_bound
        return self._bounds[channel]

    def try_consume(self, channel: str, amount: int = 1) -> bool:
        """Consume quota for ``amount`` messages on ``channel``.

        Returns False (and records the rejection) when the quota is
        exhausted; the caller then discards the message, which is how an
        attack flooding a channel starves it.
        """
        if channel not in self._bounds:
            raise KeyError(f"unknown channel {channel!r}")
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        if channel in self._shared:
            if self._shared_used + amount > self._shared_bound:
                self.rejected[channel] += amount
                return False
            self._shared_used += amount
            return True
        if self._used[channel] + amount > self._bounds[channel]:
            self.rejected[channel] += amount
            return False
        self._used[channel] += amount
        return True

    def remaining(self, channel: str) -> int:
        """Quota left on ``channel`` this round."""
        if channel in self._shared:
            return self._shared_bound - self._shared_used
        return self._bounds[channel] - self._used[channel]

    def used(self, channel: str) -> int:
        """Quota consumed on ``channel`` this round."""
        return self._used[channel] if channel not in self._shared else self._shared_used

    def reset(self) -> None:
        """Start a new round: all quotas refill (rejection stats persist)."""
        for name in self._used:
            self._used[name] = 0
        self._shared_used = 0
