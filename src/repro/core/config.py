"""Protocol configuration.

One :class:`ProtocolConfig` object describes everything that
distinguishes Drum from Push from Pull from the Section 9 ablation
variants: how the fan-out is split between the two operations, what the
per-channel acceptance bounds are and whether they are shared, and
whether reply/data ports are randomised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.util import check_positive


class ProtocolKind(str, enum.Enum):
    """The five protocols evaluated in the paper."""

    DRUM = "drum"
    PUSH = "push"
    PULL = "pull"
    #: Section 9 ablation: pull-replies go to an attackable well-known port.
    DRUM_NO_RANDOM_PORTS = "drum-no-random-ports"
    #: Section 9 ablation: one joint acceptance bound for control channels.
    DRUM_SHARED_BOUNDS = "drum-shared-bounds"

    def is_drum_family(self) -> bool:
        """True for Drum and both of its ablation variants."""
        return self in (
            ProtocolKind.DRUM,
            ProtocolKind.DRUM_NO_RANDOM_PORTS,
            ProtocolKind.DRUM_SHARED_BOUNDS,
        )

    @property
    def uses_push(self) -> bool:
        return self is not ProtocolKind.PULL

    @property
    def uses_pull(self) -> bool:
        return self is not ProtocolKind.PUSH


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunable parameters of a gossip protocol instance.

    ``fan_out`` is the paper's ``F``.  Drum splits it evenly: push and
    pull views of ``F/2`` each, and per-channel acceptance bounds of
    ``F/2``; Push and Pull put everything on their single operation.
    """

    kind: ProtocolKind = ProtocolKind.DRUM
    fan_out: int = 4
    #: Rounds a data message stays buffered before being purged
    #: (the Section 8 experiments purge after 10 rounds).
    purge_rounds: int = 10
    #: Maximum new data messages sent to one partner per round
    #: (80 in the Section 8 experiments).
    max_sends_per_partner: int = 80
    #: Rounds a random reply port stays open before its listener dies.
    random_port_lifetime: int = 2
    #: Nominal round duration in milliseconds (the DES and runtime jitter it).
    round_duration_ms: float = 1000.0
    #: Fractional random jitter applied to each round's duration.
    round_jitter: float = 0.1

    def __post_init__(self) -> None:
        check_positive("fan_out", self.fan_out)
        check_positive("purge_rounds", self.purge_rounds)
        check_positive("max_sends_per_partner", self.max_sends_per_partner)
        check_positive("random_port_lifetime", self.random_port_lifetime)
        check_positive("round_duration_ms", self.round_duration_ms)
        if not 0.0 <= self.round_jitter < 1.0:
            raise ValueError(
                f"round_jitter must be in [0, 1), got {self.round_jitter}"
            )
        if self.kind.is_drum_family() and self.fan_out % 2 != 0:
            raise ValueError(
                "Drum divides the fan-out evenly between push and pull; "
                f"fan_out must be even, got {self.fan_out}"
            )

    # -- derived view sizes and bounds ------------------------------------

    @property
    def view_push_size(self) -> int:
        """``|view_push|``: push targets chosen per round."""
        if not self.kind.uses_push:
            return 0
        return self.fan_out // 2 if self.kind.is_drum_family() else self.fan_out

    @property
    def view_pull_size(self) -> int:
        """``|view_pull|``: pull-request targets chosen per round."""
        if not self.kind.uses_pull:
            return 0
        return self.fan_out // 2 if self.kind.is_drum_family() else self.fan_out

    @property
    def push_in_bound(self) -> int:
        """Max push (data/offer) messages accepted per round."""
        return self.view_push_size

    @property
    def pull_in_bound(self) -> int:
        """Max pull-requests accepted per round."""
        return self.view_pull_size

    @property
    def shared_in_bound(self) -> Optional[int]:
        """Joint control-message bound for the shared-bounds variant.

        The pool covers the three control channels — push-offers,
        pull-requests, and push-replies — and equals the *sum* of the
        bounds Drum would give them separately (``F/2`` each), so the
        variant is not starved in the absence of an attack; under attack
        the flood on the well-known ports drains the joint quota that
        push-replies (arriving on unattackable random ports) needed.
        """
        if self.kind is ProtocolKind.DRUM_SHARED_BOUNDS:
            return 3 * self.fan_out // 2
        return None

    @property
    def uses_random_ports(self) -> bool:
        """Whether reply/data ports are randomised and encrypted."""
        return self.kind is not ProtocolKind.DRUM_NO_RANDOM_PORTS

    # -- factories ---------------------------------------------------------

    @classmethod
    def drum(cls, fan_out: int = 4, **kwargs) -> "ProtocolConfig":
        """Drum with the paper's defaults."""
        return cls(kind=ProtocolKind.DRUM, fan_out=fan_out, **kwargs)

    @classmethod
    def push(cls, fan_out: int = 4, **kwargs) -> "ProtocolConfig":
        """Push-only baseline."""
        return cls(kind=ProtocolKind.PUSH, fan_out=fan_out, **kwargs)

    @classmethod
    def pull(cls, fan_out: int = 4, **kwargs) -> "ProtocolConfig":
        """Pull-only baseline."""
        return cls(kind=ProtocolKind.PULL, fan_out=fan_out, **kwargs)

    @classmethod
    def drum_no_random_ports(cls, fan_out: int = 4, **kwargs) -> "ProtocolConfig":
        """Section 9 variant: pull-replies on a well-known port."""
        return cls(kind=ProtocolKind.DRUM_NO_RANDOM_PORTS, fan_out=fan_out, **kwargs)

    @classmethod
    def drum_shared_bounds(cls, fan_out: int = 4, **kwargs) -> "ProtocolConfig":
        """Section 9 variant: joint bound on control channels."""
        return cls(kind=ProtocolKind.DRUM_SHARED_BOUNDS, fan_out=fan_out, **kwargs)

    def with_(self, **changes) -> "ProtocolConfig":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)
