"""Random gossip-view selection.

Every round each process draws small uniform-random views from its
membership list — the randomness that removes single points of failure
from gossip protocols and that Drum additionally leans on to make push
targets unpredictable to an attacker.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.util import derive_rng
from repro.util.rng import SeedLike


def select_view(
    members: Sequence[int],
    self_id: int,
    size: int,
    rng: SeedLike = None,
) -> List[int]:
    """Choose ``size`` distinct gossip partners uniformly at random.

    ``self_id`` is excluded.  When fewer than ``size`` other members
    exist, all of them are returned (in random order) — a process in a
    tiny group simply gossips with everyone.
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    generator = derive_rng(rng)
    candidates = [m for m in members if m != self_id]
    if len(candidates) <= size:
        generator.shuffle(candidates)
        return candidates
    idx = generator.choice(len(candidates), size=size, replace=False)
    return [candidates[i] for i in idx]


def select_disjoint_views(
    members: Sequence[int],
    self_id: int,
    sizes: Sequence[int],
    rng: SeedLike = None,
) -> List[List[int]]:
    """Choose several pairwise-disjoint views in one draw.

    Drum draws ``view_push`` and ``view_pull`` each round; drawing them
    disjointly avoids wasting fan-out on gossiping twice with the same
    partner in one round.  Falls back to overlapping views when the
    group is too small to satisfy disjointness.
    """
    generator = derive_rng(rng)
    total = sum(sizes)
    candidates = [m for m in members if m != self_id]
    if len(candidates) < total:
        # Too few members for disjoint views; draw independently instead.
        return [select_view(members, self_id, s, generator) for s in sizes]
    idx = generator.choice(len(candidates), size=total, replace=False)
    chosen = [candidates[i] for i in idx]
    views: List[List[int]] = []
    offset = 0
    for s in sizes:
        views.append(chosen[offset : offset + s])
        offset += s
    return views
