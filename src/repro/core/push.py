"""Push: the push-only baseline protocol."""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.protocol import GossipProcess
from repro.net.network import Network
from repro.util.rng import SeedLike


class PushProcess(GossipProcess):
    """A push-only process: full fan-out on the push operation.

    Implemented with the same acceptance bound and round discipline as
    Drum so that comparisons isolate the push/pull combination itself
    (Section 5).  Its weakness under attack: a flooded push channel is
    the *only* way an attacked process can receive data.
    """

    def __init__(
        self,
        pid: int,
        members: Sequence[int],
        network: Network,
        *,
        config: ProtocolConfig = None,
        seed: SeedLike = None,
        has_message: bool = False,
    ):
        if config is None:
            config = ProtocolConfig.push()
        if config.kind is not ProtocolKind.PUSH:
            raise ValueError(f"PushProcess requires a push config, got {config.kind}")
        super().__init__(
            pid, config, members, network, seed=seed, has_message=has_message
        )
