"""The Section 10 dynamic membership protocol.

One :class:`DynamicMembership` instance runs at each process, layered on
top of the multicast protocol (events arrive through
:meth:`handle_event`, exactly as Drum would deliver them).  It maintains
the local membership database as a map of validated certificates:

- join/leave/expel events mutate the database only after their
  certificate checks out against the CA's public key — fabricated
  membership traffic is discarded;
- certificates expire, so a member that stops renewing drops out of
  everyone's view without any message at all;
- messages from unknown members are unusable until a certificate is
  seen; processes therefore piggyback their certificate on outgoing
  data messages periodically (and always, right after joining);
- the local :class:`~repro.membership.failure_detector.FailureDetector`
  removes unresponsive peers from the *gossip view* without touching
  their membership status.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.ca import CertificationAuthority
from repro.crypto.certificates import Certificate
from repro.crypto.keys import PublicKey
from repro.membership.events import (
    ExpelEvent,
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
)
from repro.membership.failure_detector import FailureDetector


class DynamicMembership:
    """One process's view of a dynamic group."""

    def __init__(
        self,
        pid: int,
        ca_key: PublicKey,
        *,
        failure_timeout: float = 10.0,
        piggyback_interval: float = 30.0,
        recently_joined_window: float = 5.0,
    ):
        self.pid = pid
        self.ca_key = ca_key
        self.failure_detector = FailureDetector(failure_timeout)
        self.piggyback_interval = float(piggyback_interval)
        self.recently_joined_window = float(recently_joined_window)
        self._certs: Dict[int, Certificate] = {}
        self._own_cert: Optional[Certificate] = None
        self._joined_at: Optional[float] = None
        self._last_piggyback: float = float("-inf")
        self.rejected_events = 0

    # -- bootstrap ----------------------------------------------------------

    def join(
        self, ca: CertificationAuthority, own_key: PublicKey, now: float
    ) -> Certificate:
        """Join the group: obtain a certificate and the initial view."""
        cert = ca.authorize_join(self.pid, own_key)
        self._own_cert = cert
        self._joined_at = now
        for member in ca.initial_view(exclude=self.pid):
            member_cert = ca.current_certificate(member)
            if member_cert is not None:
                self._certs[member] = member_cert
                self.failure_detector.track(member, now)
        return cert

    def install_certificate(self, cert: Certificate, now: float) -> bool:
        """Learn a peer's certificate (e.g. piggybacked on a data message)."""
        if not cert.is_valid_at(now, self.ca_key):
            self.rejected_events += 1
            return False
        current = self._certs.get(cert.subject)
        if current is not None and current.serial >= cert.serial:
            return False  # already have it (or something newer)
        self._certs[cert.subject] = cert
        self.failure_detector.track(cert.subject, now)
        return True

    # -- event handling -------------------------------------------------------

    def handle_event(self, event: MembershipEvent, now: float) -> bool:
        """Apply a join/leave/expel delivered by the multicast layer.

        Returns False (and counts a rejection) when the event's
        certificate does not verify — the defence against fabricated
        membership traffic.
        """
        if isinstance(event, JoinEvent):
            if not event.certificate.is_valid_at(now, self.ca_key):
                self.rejected_events += 1
                return False
            self._certs[event.subject] = event.certificate
            self.failure_detector.track(event.subject, now)
            return True
        if isinstance(event, (LeaveEvent, ExpelEvent)):
            # The certificate authenticates the event even though it has
            # been revoked at the CA: its signature must still verify
            # and it must match what we know of the subject.
            known = self._certs.get(event.subject)
            if known is not None and known.serial != event.certificate.serial:
                self.rejected_events += 1
                return False
            body_ok = event.certificate.is_valid_at(
                min(now, event.certificate.expires_at - 1e-9), self.ca_key
            )
            if not body_ok:
                self.rejected_events += 1
                return False
            self._certs.pop(event.subject, None)
            self.failure_detector.untrack(event.subject)
            return True
        self.rejected_events += 1
        return False

    # -- views ------------------------------------------------------------------

    def current_members(self, now: float) -> List[int]:
        """Members with unexpired certificates (self excluded)."""
        self._expire(now)
        return sorted(self._certs)

    def gossip_candidates(self, now: float) -> List[int]:
        """Members the process is willing to gossip with right now:
        certified *and* not suspected by the failure detector."""
        return self.failure_detector.responsive_subset(self.current_members(now))

    def knows(self, pid: int, now: float) -> bool:
        """True when ``pid``'s messages can currently be authenticated."""
        cert = self._certs.get(pid)
        return cert is not None and cert.is_valid_at(now, self.ca_key)

    # -- piggybacking --------------------------------------------------------------

    def should_piggyback_certificate(self, now: float) -> bool:
        """Whether the next outgoing message should carry our certificate.

        True shortly after joining (peers may not know us yet) and
        periodically thereafter (peers with incomplete databases catch
        up).
        """
        if self._own_cert is None:
            return False
        recently_joined = (
            self._joined_at is not None
            and now - self._joined_at <= self.recently_joined_window
        )
        due = now - self._last_piggyback >= self.piggyback_interval
        return recently_joined or due

    def certificate_to_piggyback(self, now: float) -> Optional[Certificate]:
        """The certificate to attach, marking the piggyback as done."""
        if not self.should_piggyback_certificate(now):
            return None
        self._last_piggyback = now
        return self._own_cert

    # -- internals ------------------------------------------------------------------

    def _expire(self, now: float) -> None:
        expired = [
            pid
            for pid, cert in self._certs.items()
            if not cert.is_valid_at(now, self.ca_key)
        ]
        for pid in expired:
            del self._certs[pid]
