"""Group membership services.

The analyses and simulations assume a static group
(:class:`~repro.membership.static.StaticMembership`).  Section 10
sketches a dynamic membership protocol for Drum, implemented here:

- a CA (:class:`~repro.crypto.ca.CertificationAuthority`) authorises
  joins, issues expiring certificates, and revokes them on log-out or
  expulsion;
- membership events (join / leave / expel) carry the CA-issued
  certificate and are disseminated *over Drum's multicast itself*, so
  the membership layer inherits Drum's DoS-resistance;
- processes piggyback their certificates on data messages so peers with
  incomplete membership databases can authenticate them;
- a local failure detector stops a process from gossiping with
  unresponsive partners without ever gossiping suspicions (a malicious
  process therefore cannot talk anyone *else* out of a membership).
"""

from repro.membership.static import StaticMembership
from repro.membership.events import ExpelEvent, JoinEvent, LeaveEvent, MembershipEvent
from repro.membership.failure_detector import FailureDetector
from repro.membership.dynamic import DynamicMembership

__all__ = [
    "DynamicMembership",
    "ExpelEvent",
    "FailureDetector",
    "JoinEvent",
    "LeaveEvent",
    "MembershipEvent",
    "StaticMembership",
]
