"""Static membership: the fixed group of the analyses and simulations."""

from __future__ import annotations

from typing import Iterable, List


class StaticMembership:
    """A fixed, fully known group.

    Every process holds the complete list (the paper's simulation
    assumption); views are drawn from :func:`repro.core.views.select_view`
    against this list.
    """

    def __init__(self, members: Iterable[int]):
        unique = sorted(set(members))
        if len(unique) < 2:
            raise ValueError("a group needs at least two members")
        self._members: List[int] = unique

    def members(self) -> List[int]:
        """All group members, ascending."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, pid: int) -> bool:
        return pid in set(self._members)

    def others(self, pid: int) -> List[int]:
        """Everyone except ``pid``."""
        return [m for m in self._members if m != pid]
