"""Membership change events, disseminated over the multicast layer.

Every event carries the CA-issued (or CA-revoked) certificate, so a
malicious process cannot fabricate group-management traffic: a receiver
validates the certificate against the CA's public key before mutating
its local membership database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.certificates import Certificate


@dataclass(frozen=True)
class MembershipEvent:
    """Base class: something happened to ``subject``'s membership."""

    subject: int
    certificate: Certificate

    def __post_init__(self) -> None:
        if self.certificate.subject != self.subject:
            raise ValueError(
                f"certificate subject {self.certificate.subject} does not "
                f"match event subject {self.subject}"
            )


@dataclass(frozen=True)
class JoinEvent(MembershipEvent):
    """``subject`` joined: the CA propagates its freshly issued certificate."""


@dataclass(frozen=True)
class LeaveEvent(MembershipEvent):
    """``subject`` logged out: its certificate (now revoked) identifies it."""


@dataclass(frozen=True)
class ExpelEvent(MembershipEvent):
    """The CA expelled ``subject`` on suspicion of malbehaviour."""
