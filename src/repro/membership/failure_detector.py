"""Local failure detection.

Section 10: "From time to time, each process tests the responsiveness of
the other processes it communicates with.  If a failure is detected, the
process stops communicating with the failed process, but does not
propagate this information to other processes."

The detector is deliberately *local only*: unlike gossiped failure
detectors, no process can be removed from someone else's view on the
basis of third-party claims, which closes the membership-poisoning
channel a Byzantine process would otherwise exploit.
"""

from __future__ import annotations

from typing import Dict, List, Set


class FailureDetector:
    """Timeout-based responsiveness tracking for one process."""

    def __init__(self, timeout: float, *, probe_interval: float = 1.0):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if probe_interval <= 0:
            raise ValueError(f"probe_interval must be > 0, got {probe_interval}")
        self.timeout = float(timeout)
        self.probe_interval = float(probe_interval)
        self._last_heard: Dict[int, float] = {}
        self._suspected: Set[int] = set()

    def track(self, peer: int, now: float) -> None:
        """Start the responsiveness clock for ``peer`` without treating
        this as traffic.

        Must be called when a peer enters the local view (initial view
        install, join event): a member that crashes before ever sending
        a byte has no ``heard_from`` record, and without a clock it
        would stay "responsive" forever.  Idempotent — an existing
        record (and any standing suspicion) is left untouched.
        """
        self._last_heard.setdefault(peer, now)

    def untrack(self, peer: int) -> None:
        """Forget ``peer`` entirely (it left or was expelled)."""
        self._last_heard.pop(peer, None)
        self._suspected.discard(peer)

    def heard_from(self, peer: int, now: float) -> None:
        """Record any inbound traffic from ``peer`` (implicit heartbeat)."""
        self._last_heard[peer] = now
        # Responsiveness rehabilitates a suspect — the failure was
        # transient (a perturbation, in the paper's terms).
        self._suspected.discard(peer)

    def check(self, now: float) -> List[int]:
        """Mark peers silent beyond the timeout; returns new suspects."""
        newly = []
        for peer, last in self._last_heard.items():
            if peer not in self._suspected and now - last > self.timeout:
                self._suspected.add(peer)
                newly.append(peer)
        return sorted(newly)

    def is_suspected(self, peer: int) -> bool:
        """True when ``peer`` is currently considered unresponsive."""
        return peer in self._suspected

    def responsive_subset(self, peers: List[int]) -> List[int]:
        """Filter ``peers`` down to those not suspected — the set a Drum
        process draws its gossip views from."""
        return [p for p in peers if p not in self._suspected]

    @property
    def suspected(self) -> Set[int]:
        return set(self._suspected)
