"""The asyncio cluster: thousands of protocol nodes on one event loop.

:class:`AioCluster` mirrors :class:`~repro.runtime.cluster.LiveCluster`
— same node class, same fault layer, same delivery log and
:class:`~repro.des.measurement.MeasurementResult` packaging — but every
node runs as timers on a single :mod:`asyncio` loop instead of owning
OS threads.  The per-node cost drops from a thread stack to a timer
handle, so group sizes in the thousands fit one process.

Wall-clock fidelity: a saturated loop stretches *every* node's round
uniformly (time dilation), and purging counts local rounds, so
reliability survives; latency in milliseconds dilates with the load.
This is the same weakened determinism contract as the threaded runtime
— the fault/attack *plan* is seed-exact, packet interleaving is not.

Runtime injection (for :class:`~repro.aio.service.GossipService`):
:meth:`AioCluster.inject_faults` wraps the cluster's transport in a
:class:`~repro.faults.live.FaultyTransport` mid-run, and
:meth:`AioCluster.inject_attack` spawns an
:class:`~repro.des.attacker.AttackerProcess` on its own environment —
the identical attacker the discrete-event stack runs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.adversary.attacks import AttackSpec
from repro.aio.env import AsyncEnvironment
from repro.aio.transport import AioLoopbackTransport, AioUdpBridge
from repro.core.config import ProtocolConfig, ProtocolKind
from repro.core.message import MessageIdFactory
from repro.crypto.signatures import SignatureRegistry
from repro.des.attacker import AttackerProcess
from repro.des.measurement import DeliveryRecord, MeasurementResult
from repro.des.node import GossipNode
from repro.faults.live import FaultyTransport
from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule
from repro.net.link import LossModel
from repro.net.transport import Transport, UdpTransport
from repro.util import SeedSequenceFactory, check_fraction, check_probability
from repro.util.rng import SeedLike

#: Transports the config can name.
TRANSPORTS = ("loopback", "udp")


@dataclass(frozen=True)
class AioClusterConfig:
    """One asyncio-cluster configuration.

    Field-compatible with :class:`~repro.des.cluster.ClusterConfig`'s
    shared surface so :meth:`repro.api.Experiment.aio_config` is a
    straight translation; defaults favour sub-second demo rounds like
    the threaded runtime.
    """

    protocol: Union[ProtocolKind, str] = ProtocolKind.DRUM
    n: int = 50
    malicious_fraction: float = 0.0
    attack: Optional[AttackSpec] = None
    fan_out: int = 4
    loss: float = 0.0
    round_duration_ms: float = 200.0
    round_jitter: float = 0.1
    purge_rounds: int = 20
    max_sends_per_partner: int = 80
    #: Source send rate in messages per second.
    send_rate: float = 40.0
    #: Stream length for :func:`run_aio_experiment`.
    messages: int = 40
    #: Extra drain after the stream tail is awaited, in round durations —
    #: lets earlier messages' tails finish spreading before teardown.
    drain_rounds: float = 0.0
    #: ``"loopback"`` (in-process datagrams) or ``"udp"`` (real sockets
    #: via :class:`~repro.net.transport.UdpTransport`).
    transport: str = "loopback"
    #: Injected faults, same plans and global fault clock as every other
    #: stack.  Churn tokens are refused — this runtime keeps a fixed
    #: membership, like the threaded one.
    faults: Optional[Union[FaultPlan, str]] = None

    def __post_init__(self) -> None:
        if isinstance(self.protocol, str):
            object.__setattr__(self, "protocol", ProtocolKind(self.protocol))
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        check_fraction(
            "malicious_fraction", self.malicious_fraction, allow_zero=True
        )
        check_probability("loss", self.loss)
        if self.send_rate <= 0:
            raise ValueError(f"send_rate must be > 0, got {self.send_rate}")
        if self.messages < 1:
            raise ValueError(f"messages must be >= 1, got {self.messages}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got "
                f"{self.transport!r}"
            )
        from repro.aio.engine import AIO_MAX_N

        if self.n > AIO_MAX_N:
            from repro.api.engines import group_size_refusal

            raise ValueError(group_size_refusal("aio", self.n))
        if self.attack is not None:
            victims = self.attack.victim_count(self.n)
            if not 1 <= victims <= self.num_correct:
                raise ValueError(
                    f"attack targets {victims} processes; only "
                    f"{self.num_correct} are correct"
                )
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultPlan.parse(self.faults))
        if self.faults is not None:
            if not isinstance(self.faults, FaultPlan):
                raise TypeError(
                    f"faults must be a FaultPlan or spec string, got "
                    f"{self.faults!r}"
                )
            if self.faults.is_empty:
                object.__setattr__(self, "faults", None)
            else:
                if self.faults.has_churn:
                    from repro.api.engines import churn_refusal

                    raise ValueError(churn_refusal("aio", self.faults))
                self.faults.validate_for(
                    n=self.n,
                    num_alive_correct=self.num_correct,
                    max_rounds=10**9,
                )

    # -- group layout (mirrors ClusterConfig) --------------------------------

    @property
    def num_malicious(self) -> int:
        return int(round(self.malicious_fraction * self.n))

    @property
    def num_correct(self) -> int:
        return self.n - self.num_malicious

    @property
    def source(self) -> int:
        return 0

    def correct_ids(self) -> List[int]:
        return list(range(self.num_correct))

    def attacked_ids(self) -> List[int]:
        if self.attack is None:
            return []
        return list(range(self.attack.victim_count(self.n)))

    def receiver_ids(self) -> List[int]:
        return [pid for pid in self.correct_ids() if pid != self.source]

    def protocol_config(self) -> ProtocolConfig:
        return ProtocolConfig(
            kind=self.protocol,
            fan_out=self.fan_out,
            purge_rounds=self.purge_rounds,
            max_sends_per_partner=self.max_sends_per_partner,
            round_duration_ms=self.round_duration_ms,
            round_jitter=self.round_jitter,
        )

    def with_(self, **changes) -> "AioClusterConfig":
        return replace(self, **changes)


class AioFaultDriver:
    """Runs a plan's crash / recover windows as loop timers.

    The asyncio analogue of :class:`~repro.faults.live.LiveFaultDriver`:
    the same ``((round-1)·round_ms, action, ids)`` event list, fired
    with ``loop.call_later`` instead of a timer thread — flips execute
    on the loop, serialised with protocol callbacks for free.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        nodes: Dict[int, object],
        *,
        round_duration_ms: float,
        tracer=None,
    ):
        if round_duration_ms <= 0:
            raise ValueError(
                f"round_duration_ms must be > 0, got {round_duration_ms}"
            )
        self.schedule = schedule
        self.nodes = nodes
        self.tracer = tracer
        self.round_duration_ms = float(round_duration_ms)
        events: List[Tuple[float, str, frozenset]] = []
        for start, stop, ids in schedule._crash_windows:
            events.append(((start - 1) * self.round_duration_ms, "crash", ids))
            if stop is not None:
                events.append(
                    ((stop - 1) * self.round_duration_ms, "recover", ids)
                )
        self.events = sorted(events, key=lambda e: (e[0], e[1]))
        self._handles: List[object] = []
        self._origin: Optional[float] = None

    def start(self) -> None:
        if self._handles:
            raise RuntimeError("fault driver already started")
        loop = asyncio.get_running_loop()
        self._origin = loop.time()
        for at_ms, action, ids in self.events:
            self._handles.append(
                loop.call_later(at_ms / 1000.0, self._flip, action, ids)
            )

    def _flip(self, action: str, ids: frozenset) -> None:
        flipped = []
        for pid in sorted(ids):
            node = self.nodes.get(pid)
            if node is None:
                continue
            if action == "crash" and node.running:
                node.stop()
                flipped.append(pid)
            elif action == "recover" and not node.running:
                node.start()
                flipped.append(pid)
        if self.tracer is not None and flipped:
            t = (asyncio.get_running_loop().time() - self._origin) * 1000.0
            if action == "crash":
                self.tracer.crash(flipped, t=t)
            else:
                self.tracer.heal(flipped, t=t)

    def stop(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()


class AioCluster:
    """Asyncio cluster lifecycle: build → ``await start()`` → multicast
    → ``await stop()``.

    Construction is loop-free (it only records the config and draws no
    seeds); :meth:`start` must run on the event loop and builds every
    environment and node there.  All other methods assume loop context
    unless noted.
    """

    def __init__(
        self,
        config: AioClusterConfig,
        *,
        seed: SeedLike = None,
        tracer=None,
        transport: Optional[Transport] = None,
    ):
        self.config = config
        # Observability: a repro.obs Tracer or None.  Events are
        # wall-clock ``t``-stamped (ms).  Node callbacks all run on the
        # loop, but a service may scrape from other threads — pass
        # ``Tracer(..., thread_safe=True)`` when sharing one.
        self.tracer = tracer
        self._seeds = SeedSequenceFactory(seed)
        self._given_transport = transport
        self.transport: Optional[Transport] = None
        self._fault_transport: Optional[FaultyTransport] = None
        self._fault_driver: Optional[AioFaultDriver] = None
        self.envs: Dict[int, AsyncEnvironment] = {}
        self.nodes: Dict[int, GossipNode] = {}
        self.registry = SignatureRegistry()
        #: Cluster-scoped serial counter (see des/cluster.py).
        self.msg_ids = MessageIdFactory()
        self.attackers: List[AttackerProcess] = []
        self._attacker_env: Optional[AsyncEnvironment] = None
        self.deliveries: List[DeliveryRecord] = []
        self.created_at: Dict[Tuple[int, int], float] = {}
        #: msg_id -> receivers that delivered it (incremental, so
        #: :meth:`await_delivery` polls in O(1) instead of scanning the
        #: log — the log can hold messages × thousands of records).
        self._got: Dict[Tuple[int, int], Set[int]] = {}
        self.node_errors: List[Tuple[int, BaseException]] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at: Optional[float] = None
        self._stopped = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Build environments, nodes, faults, and attacker, then start.

        Seed draw order (documented so seeded plans replay): transport
        loss → fault layer (only with a plan) → per node (environment,
        node) → attacker (only with an attack).
        """
        if self._stopped:
            raise RuntimeError("cluster already stopped")
        if self._loop is not None:
            raise RuntimeError("cluster already started")
        config = self.config
        loop = asyncio.get_running_loop()
        self._loop = loop

        transport = self._given_transport
        if transport is None:
            if config.transport == "udp":
                transport = AioUdpBridge(
                    UdpTransport(
                        LossModel(config.loss, seed=self._seeds.next_seed())
                    )
                )
            else:
                transport = AioLoopbackTransport(
                    LossModel(config.loss, seed=self._seeds.next_seed())
                )
        attach = getattr(transport, "attach", None)
        if attach is not None:
            attach(loop)
        if config.faults is not None:
            transport = self._fault_transport = FaultyTransport(
                transport,
                config.faults,
                n=config.n,
                num_alive_correct=config.num_correct,
                round_duration_ms=config.round_duration_ms,
                seed=self._seeds.next_seed(),
                tracer=self.tracer,
            )
        self.transport = transport

        proto_cfg = config.protocol_config()
        members = list(range(config.n))
        for pid in config.correct_ids():
            env = AsyncEnvironment(
                transport,
                loop=loop,
                seed=self._seeds.next_seed(),
                on_error=lambda exc, pid=pid: self._record_node_error(
                    pid, exc
                ),
            )
            self.envs[pid] = env
            self.nodes[pid] = GossipNode(
                env,
                pid,
                proto_cfg,
                members,
                seed=self._seeds.next_seed(),
                on_deliver=self._record,
                registry=self.registry,
                id_factory=self.msg_ids,
            )
        # One shared key directory (learn_keys(copy=False)): per-node
        # copies would be n² dict entries at this scale.
        keys = {pid: node.keys.public for pid, node in self.nodes.items()}
        for node in self.nodes.values():
            node.learn_keys(keys, copy=False)

        if (
            self._fault_transport is not None
            and self._fault_transport.schedule is not None
        ):
            self._fault_driver = AioFaultDriver(
                self._fault_transport.schedule,
                self.nodes,
                round_duration_ms=config.round_duration_ms,
                tracer=self.tracer,
            )

        if config.attack is not None:
            self._spawn_attacker(
                config.attack, seed=self._seeds.next_seed()
            )

        # run_start last: every seed position above is already consumed.
        if self.tracer is not None:
            self.tracer.run_start(
                "aio", continuous=True,
                protocol=config.protocol.value, n=config.n,
            )

        self._started_at = loop.time() * 1000.0
        for node in self.nodes.values():
            node.start()
        if self._fault_transport is not None:
            self._fault_transport.start_clock()
        if self._fault_driver is not None:
            self._fault_driver.start()
        for attacker in self.attackers:
            attacker.start()
        # Yield once so the first batch of round timers is registered
        # before the caller starts multicasting.
        await asyncio.sleep(0)

    async def stop(self) -> None:
        """Tear down.  Idempotent; environments close even on failure."""
        if self._stopped:
            return
        self._stopped = True
        first_error: Optional[BaseException] = None
        if self._fault_driver is not None:
            self._fault_driver.stop()
        for attacker in self.attackers:
            if attacker.running:
                attacker.stop()
        try:
            for node in self.nodes.values():
                try:
                    if node.running:
                        node.stop()
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
        finally:
            for env in self.envs.values():
                env.close()
            if self._attacker_env is not None:
                self._attacker_env.close()
            if self.transport is not None:
                self.transport.close()
        if self.tracer is not None:
            self.tracer.run_end(delivered=len(self.deliveries))
        # Let cancelled callbacks drain before the loop is torn down.
        await asyncio.sleep(0)
        if first_error is not None:
            raise first_error

    # -- delivery log / watchdog ---------------------------------------------

    def _record_node_error(self, pid: int, exc: BaseException) -> None:
        self.node_errors.append((pid, exc))

    def _check_node_errors(self) -> None:
        if not self.node_errors:
            return
        pid, exc = self.node_errors[0]
        raise RuntimeError(
            f"{len(self.node_errors)} node callback error(s); first from "
            f"node {pid}: {exc!r}"
        ) from exc

    def _record(self, pid: int, message, now_ms: float) -> None:
        created = self.created_at.get(message.msg_id)
        if created is None:
            return
        wall = self._loop.time() * 1000.0
        self.deliveries.append(
            DeliveryRecord(
                receiver=pid,
                msg_id=message.msg_id,
                delivered_at_ms=wall,
                latency_ms=wall - created,
                round_counter=message.round_counter,
            )
        )
        self._got[message.msg_id].add(pid)
        if self.tracer is not None:
            self.tracer.delivered(
                node=pid, t=wall, round_counter=message.round_counter
            )

    # -- runtime injection (the service's control plane) ----------------------

    def inject_faults(self, plan: Union[FaultPlan, str]) -> None:
        """Apply a fault plan to a *running* cluster.

        Wraps the live transport in a
        :class:`~repro.faults.live.FaultyTransport` (fault round 1
        anchored now) and re-points every environment's sends through
        it; crash windows run on an :class:`AioFaultDriver`.  One plan
        at a time — stack refinements by describing them in one spec.
        """
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if plan.has_churn:
            from repro.api.engines import churn_refusal

            raise ValueError(churn_refusal("aio", plan))
        if plan.is_empty:
            return
        if self._fault_transport is not None:
            raise RuntimeError(
                "a fault plan is already installed; describe the whole "
                "condition in one spec"
            )
        if self._loop is None or self._stopped:
            raise RuntimeError("cluster is not running")
        config = self.config
        plan.validate_for(
            n=config.n,
            num_alive_correct=config.num_correct,
            max_rounds=10**9,
        )
        faulty = FaultyTransport(
            self.transport,
            plan,
            n=config.n,
            num_alive_correct=config.num_correct,
            round_duration_ms=config.round_duration_ms,
            seed=self._seeds.next_seed(),
            tracer=self.tracer,
        )
        self._fault_transport = faulty
        self.transport = faulty
        # Handlers stay bound on the inner transport; only the send
        # path needs re-pointing.
        for env in self.envs.values():
            env.transport = faulty
        if self._attacker_env is not None:
            self._attacker_env.transport = faulty
        faulty.start_clock()
        if faulty.schedule is not None:
            self._fault_driver = AioFaultDriver(
                faulty.schedule,
                self.nodes,
                round_duration_ms=config.round_duration_ms,
                tracer=self.tracer,
            )
            self._fault_driver.start()
        # The *post-injection* config carries the plan so result()
        # reports faults and reachability like a configured run.
        self.config = replace(config, faults=plan)

    def inject_attack(self, spec: AttackSpec) -> AttackerProcess:
        """Start a DoS attacker against a running cluster."""
        if self._loop is None or self._stopped:
            raise RuntimeError("cluster is not running")
        attacker = self._spawn_attacker(spec, seed=self._seeds.next_seed())
        attacker.start()
        return attacker

    def _spawn_attacker(self, spec: AttackSpec, *, seed) -> AttackerProcess:
        if self._attacker_env is None:
            self._attacker_env = AsyncEnvironment(
                self.transport, loop=self._loop, seed=None
            )
        attacker = AttackerProcess(
            self._attacker_env,
            spec,
            self.config.protocol,
            list(range(spec.victim_count(self.config.n))),
            round_duration_ms=self.config.round_duration_ms,
            seed=seed,
        )
        self.attackers.append(attacker)
        return attacker

    # -- application API ------------------------------------------------------

    def multicast(self, source: int, payload: object) -> Tuple[int, int]:
        """Multicast ``payload`` from ``source`` and track deliveries."""
        wall = self._loop.time() * 1000.0
        msg = self.nodes[source].multicast(payload)
        self.created_at[msg.msg_id] = wall
        self._got[msg.msg_id] = {source}
        self.deliveries.append(
            DeliveryRecord(
                receiver=source,
                msg_id=msg.msg_id,
                delivered_at_ms=wall,
                latency_ms=0.0,
                round_counter=0,
            )
        )
        if self.tracer is not None:
            self.tracer.delivered(node=source, via="source", t=wall)
        return msg.msg_id

    async def await_delivery(
        self,
        msg_id: Tuple[int, int],
        *,
        fraction: float = 1.0,
        timeout_s: float = 30.0,
    ) -> bool:
        """Wait until ``fraction`` of correct processes delivered ``msg_id``.

        Raises :class:`RuntimeError` if any node callback has died —
        waiting out the timeout against a dead node would just report a
        bogus delivery failure.
        """
        receivers = set(self.config.correct_ids())
        needed = max(1, int(fraction * len(receivers)))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while True:
            self._check_node_errors()
            got = self._got.get(msg_id, ())
            if len(got) >= needed:
                return True
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(0.02)

    def delivered_counts(self) -> Dict[Tuple[int, int], int]:
        """Receivers reached per tracked message (status queries)."""
        return {mid: len(got) for mid, got in self._got.items()}

    def result(self, send_rate: float, messages_sent: int) -> MeasurementResult:
        """Package the delivery log as a :class:`MeasurementResult`."""
        if self._started_at is None:
            raise RuntimeError("cluster was never started")
        sources = {mid[0] for mid in self.created_at} or {0}
        receivers = [
            pid for pid in self.config.correct_ids() if pid not in sources
        ]
        reachable: Optional[List[int]] = None
        faults_desc: Optional[str] = None
        if self.config.faults is not None:
            faults_desc = self.config.faults.describe()
            schedule = self._fault_transport.schedule
            if schedule is not None:
                horizon = self._fault_transport.current_round()
                reachable_ids = schedule.reachable_ids(horizon)
                reachable = [
                    pid for pid in receivers if pid in reachable_ids
                ]
            else:
                reachable = list(receivers)
        return MeasurementResult(
            protocol=self.config.protocol.value,
            n=self.config.n,
            correct_receivers=receivers,
            send_rate=send_rate,
            messages_sent=messages_sent,
            experiment_start_ms=self._started_at,
            experiment_end_ms=self._loop.time() * 1000.0,
            deliveries=list(self.deliveries),
            reachable_receivers=reachable,
            faults=faults_desc,
        )


def run_aio_experiment(
    config: AioClusterConfig, *, seed: SeedLike = None, tracer=None
) -> MeasurementResult:
    """Stream ``config.messages`` through an asyncio cluster.

    The synchronous entry point (``asyncio.run`` inside): build and
    start the cluster, stream from the source at ``send_rate``, await
    the stream tail reaching half the group, drain ``drain_rounds``
    extra round durations, tear down, and package the measurement.
    """

    async def _run() -> MeasurementResult:
        cluster = AioCluster(config, seed=seed, tracer=tracer)
        await cluster.start()
        try:
            interval_s = 1.0 / config.send_rate
            last_id = None
            for i in range(config.messages):
                last_id = cluster.multicast(
                    config.source, f"msg-{i}".encode()
                )
                if i + 1 < config.messages:
                    await asyncio.sleep(interval_s)
            if last_id is not None:
                await cluster.await_delivery(
                    last_id,
                    fraction=0.5,
                    timeout_s=max(
                        2.0, 10 * config.round_duration_ms / 1000.0
                    ),
                )
            if config.drain_rounds > 0:
                await asyncio.sleep(
                    config.drain_rounds * config.round_duration_ms / 1000.0
                )
        finally:
            await cluster.stop()
        return cluster.result(config.send_rate, config.messages)

    return asyncio.run(_run())
