"""The asyncio gossip service runtime.

One :mod:`asyncio` event loop hosts thousands of
:class:`~repro.des.node.GossipNode` instances — the same protocol class
the discrete-event and threaded stacks run — as cooperatively scheduled
tasks over an in-process datagram loopback
(:class:`~repro.aio.transport.AioLoopbackTransport`) or real UDP sockets
(:class:`~repro.aio.transport.AioUdpBridge` over
:class:`~repro.net.transport.UdpTransport`).

Where the threaded runtime spends one OS thread per node (and tops out
around a few hundred nodes), the asyncio runtime spends one timer handle
per node round, so group sizes in the thousands fit in a single process.
Wall-clock contention shows up as uniform time dilation — every node's
round stretches together, and purging counts *local* rounds — so
reliability measurements survive a saturated loop.

Entry points:

- :class:`~repro.aio.cluster.AioCluster` /
  :func:`~repro.aio.cluster.run_aio_experiment` — programmatic runs;
- ``Experiment.run(engine="aio")`` — the registry path
  (:mod:`repro.aio.engine` registers the stack);
- :class:`~repro.aio.service.GossipService` / ``repro serve`` — a live
  control plane: start/stop clusters, inject faults and attacks, scrape
  Prometheus metrics, stream observability events as JSONL.

Import note: the engine registry imports :mod:`repro.aio.engine` during
bootstrap, so nothing in this package may call back into the registry at
module scope (capability refusals import it lazily, inside the raise
path).
"""

from repro.aio.cluster import AioCluster, AioClusterConfig, run_aio_experiment
from repro.aio.env import AsyncEnvironment
from repro.aio.service import EventStreamSink, GossipService
from repro.aio.transport import AioLoopbackTransport, AioUdpBridge

# Self-registration with the engine registry (also triggered by the
# registry's bootstrap, whichever happens first).
import repro.aio.engine  # noqa: E402,F401

__all__ = [
    "AioCluster",
    "AioClusterConfig",
    "AioLoopbackTransport",
    "AioUdpBridge",
    "AsyncEnvironment",
    "EventStreamSink",
    "GossipService",
    "run_aio_experiment",
]
