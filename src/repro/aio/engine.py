"""Registers the asyncio runtime with the engine registry.

This module is the canonical pluggable-engine example: it is imported
by :func:`repro.api.engines._ensure_builtin` (or by anyone importing
:mod:`repro.aio`) and registers the ``"aio"`` stack through the same
public :func:`repro.api.engines.register` call a third-party stack
would use — :mod:`repro.api` itself knows nothing about this package
beyond the bootstrap import.
"""

from __future__ import annotations

import repro.api.engines as engines

#: Declared group-size ceiling.  Each node costs a timer handle plus
#: protocol state (not a thread), so the binding limit is loop
#: throughput: beyond ~5·10⁴ nodes a round's control traffic outruns
#: what one loop dispatches per round duration and time dilation stops
#: being "uniform slowdown" and becomes collapse.
AIO_MAX_N = 50_000


def run_aio_engine(exp, *, seed=None, workers=None, tracer=None):
    """Stream ``exp.messages`` through an asyncio cluster (blocking)."""
    from repro.aio.cluster import run_aio_experiment

    return run_aio_experiment(exp.aio_config(), seed=seed, tracer=tracer)


# Importing this module directly (``import repro.aio``) must not leave
# the registry ordered differently from the lazy bootstrap path: force
# the built-in stacks in first, then append ``aio``.  Re-entrancy is
# safe — ``_ensure_builtin`` sets its guard before importing us back.
engines.engines()

SPEC = engines.EngineSpec(
    name="aio",
    runner=run_aio_engine,
    capabilities=engines.EngineCapabilities(
        determinism="wallclock",
        continuous=True,
        max_n=AIO_MAX_N,
    ),
    summary="asyncio service runtime (thousands of nodes on one loop)",
)

engines.register(SPEC, replace_existing=True)
