"""Asyncio implementation of the node environment.

:class:`AsyncEnvironment` gives one :class:`~repro.des.node.GossipNode`
(or :class:`~repro.des.attacker.AttackerProcess`) a clock, timers, and a
datagram service backed by a running :mod:`asyncio` event loop.  All
callbacks execute on the loop, so — unlike the threaded
:class:`~repro.runtime.env.RealTimeEnvironment` — no lock is needed to
serialise protocol logic: cooperative scheduling *is* the lock.

Timers are ``loop.call_later`` handles; time is ``loop.time()`` (a
monotonic clock) rebased to the environment's creation, in milliseconds,
matching the contract of :class:`~repro.des.environment.Environment`.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

import numpy as np

from repro.des.environment import Environment, Handler
from repro.net.address import Address
from repro.net.transport import Transport
from repro.util import derive_rng
from repro.util.rng import SeedLike


class AsyncEnvironment(Environment):
    """One node's view of loop time and a shared transport.

    Must be constructed on (or handed) the running event loop; every
    scheduled callback and every bound handler fires on that loop.
    ``on_error`` receives exceptions escaping a timer or receive
    callback — the loop would otherwise swallow them into its exception
    handler and the node would just go quiet (see the cluster's node
    watchdog).
    """

    def __init__(
        self,
        transport: Transport,
        *,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        seed: SeedLike = None,
        on_error: Optional[Callable[[BaseException], None]] = None,
    ):
        self.transport = transport
        self.loop = loop if loop is not None else asyncio.get_running_loop()
        self._rng = derive_rng(seed)
        self._origin = self.loop.time()
        self._timers: set = set()
        self._closed = False
        self.on_error = on_error

    def now(self) -> float:
        return (self.loop.time() - self._origin) * 1000.0

    def schedule(self, delay_ms: float, fn: Callable[[], None]) -> object:
        handle_box = []

        def _fire() -> None:
            if handle_box:
                self._timers.discard(handle_box[0])
            if self._closed:
                return
            try:
                fn()
            except Exception as exc:
                if self.on_error is None:
                    raise
                self.on_error(exc)

        handle = self.loop.call_later(max(0.0, delay_ms) / 1000.0, _fire)
        handle_box.append(handle)
        self._timers.add(handle)
        return handle

    def cancel(self, handle: object) -> None:
        handle.cancel()
        self._timers.discard(handle)

    def bind(self, addr: Address, handler: Handler) -> None:
        def _guarded(src: Address, payload: object) -> None:
            if self._closed:
                return
            try:
                handler(src, payload)
            except Exception as exc:
                if self.on_error is None:
                    raise
                self.on_error(exc)

        self.transport.bind(addr, _guarded)

    def unbind(self, addr: Address) -> None:
        self.transport.unbind(addr)

    def send(self, src: Address, dst: Address, payload: object) -> None:
        self.transport.send(src, dst, payload)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def close(self) -> None:
        """Cancel outstanding timers and refuse further callbacks."""
        self._closed = True
        for handle in list(self._timers):
            handle.cancel()
        self._timers.clear()
