"""Datagram transports for the asyncio runtime.

Two ways onto the event loop:

- :class:`AioLoopbackTransport` — in-process delivery via
  ``loop.call_soon``.  Sends from the loop itself (the common case:
  every node callback runs on the loop) enqueue directly; sends from
  foreign threads (a :class:`~repro.faults.live.FaultyTransport` delay
  timer, a test harness) marshal through ``call_soon_threadsafe``.
  Handler lookup happens at *dispatch* time, so a random port unbound
  between send and delivery dead-letters exactly like a closed socket.
- :class:`AioUdpBridge` — wraps the existing
  :class:`~repro.net.transport.UdpTransport`: real UDP datagrams on
  localhost, with the receiver threads' callbacks marshalled onto the
  loop so node logic still runs single-threaded.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from repro.net.address import Address
from repro.net.link import LossModel
from repro.net.transport import Handler, Transport


class AioLoopbackTransport(Transport):
    """Loopback transport dispatching every delivery on the event loop.

    Construct anywhere; call :meth:`attach` from loop context (the
    cluster does this in ``start()``) before traffic flows.  Sends
    before attachment are dropped like packets on a downed interface.
    """

    def __init__(self, loss: Optional[LossModel] = None):
        super().__init__(loss)
        self._handlers: Dict[Address, Handler] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[int] = None
        self._closed = False
        self.delivered = 0
        self.dropped = 0

    def attach(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        """Bind the transport to ``loop`` (default: the running loop)."""
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._loop_thread = threading.get_ident()

    def bind(self, addr: Address, handler: Handler) -> None:
        self._handlers[addr] = handler

    def unbind(self, addr: Address) -> None:
        self._handlers.pop(addr, None)

    def _dispatch(self, src: Address, dst: Address, payload: object) -> None:
        if self._closed:
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped += 1
            return
        self.delivered += 1
        handler(src, payload)

    def send(self, src: Address, dst: Address, payload: object) -> None:
        loop = self._loop
        if self._closed or loop is None or loop.is_closed():
            self.dropped += 1
            return
        if self.loss is not None and not self.loss.delivered():
            self.dropped += 1
            return
        if threading.get_ident() == self._loop_thread:
            loop.call_soon(self._dispatch, src, dst, payload)
        else:
            # Off-loop producer (FaultyTransport delay timers, tests).
            try:
                loop.call_soon_threadsafe(self._dispatch, src, dst, payload)
            except RuntimeError:
                self.dropped += 1  # loop shut down mid-send

    def close(self) -> None:
        self._closed = True
        self._handlers.clear()


class AioUdpBridge(Transport):
    """Marshals a :class:`~repro.net.transport.UdpTransport` onto a loop.

    ``bind`` wraps each handler so the UDP receiver thread's callback is
    re-queued with ``call_soon_threadsafe``; ``send`` goes straight to
    the socket (sending is thread-agnostic).  The node logic therefore
    keeps the single-threaded execution model while the datagrams ride a
    real network stack.
    """

    def __init__(self, inner: Transport):
        super().__init__(loss=None)
        self.inner = inner
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self.dropped = 0

    def attach(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_running_loop()

    def bind(self, addr: Address, handler: Handler) -> None:
        def _to_loop(src: Address, payload: object) -> None:
            loop = self._loop
            if self._closed or loop is None or loop.is_closed():
                self.dropped += 1
                return
            try:
                loop.call_soon_threadsafe(handler, src, payload)
            except RuntimeError:
                self.dropped += 1

        self.inner.bind(addr, _to_loop)

    def unbind(self, addr: Address) -> None:
        self.inner.unbind(addr)

    def send(self, src: Address, dst: Address, payload: object) -> None:
        if self._closed:
            return
        self.inner.send(src, dst, payload)

    def close(self) -> None:
        self._closed = True
        self.inner.close()
