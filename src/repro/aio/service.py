"""The gossip service control plane.

:class:`GossipService` hosts an :class:`~repro.aio.cluster.AioCluster`
behind a tiny line-delimited-JSON TCP endpoint, so a cluster can be
driven (and attacked) *while it runs* instead of only as a scripted
experiment:

- ``{"op": "start", "n": 2000, ...}`` — build and start a cluster;
- ``{"op": "multicast", "payload": "..."}`` — inject application
  traffic;
- ``{"op": "inject", "faults": "crash@3:0.2"}`` /
  ``{"op": "inject", "attack": {"alpha": 0.1, "x": 128}}`` — fault
  plans and DoS floods against the live group;
- ``{"op": "metrics"}`` — the Prometheus text exposition of the obs
  counters (scrape-ready);
- ``{"op": "stream"}`` — switches the connection to a JSONL stream of
  observability events (one encoded event per line);
- ``{"op": "status"}`` / ``{"op": "stop"}`` / ``{"op": "shutdown"}``.

Every request is one JSON object on one line; every response is one
JSON object on one line with an ``"ok"`` flag.  The service owns a
thread-safe :class:`~repro.obs.Tracer` feeding a
:class:`~repro.obs.sinks.PrometheusSink` (for ``metrics``) and an
:class:`EventStreamSink` (for ``stream``); both attach to each cluster
it starts.

The event loop runs on a dedicated thread — :meth:`GossipService.start`
/ :meth:`GossipService.stop` are ordinary blocking calls for hosts
(tests, the ``repro serve`` CLI command).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
from collections import deque
from typing import Dict, List, Optional

from repro.adversary.attacks import AttackSpec
from repro.aio.cluster import AioCluster, AioClusterConfig
from repro.obs.sinks import PrometheusSink, encode_event
from repro.obs.tracer import Tracer


class EventStreamSink:
    """Fans trace events out to bounded per-subscriber ring buffers.

    Emission must never block or grow without bound — a slow or stalled
    stream consumer loses the *oldest* events (the ring drops from the
    left) and the per-subscriber ``dropped`` counter records how many.
    ``write`` is called under the tracer's emission lock from the
    cluster's loop; ``drain`` is called from service connections on
    other threads — the sink's own lock makes the handoff safe either
    way.
    """

    def __init__(self, maxlen: int = 4096):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._subs: Dict[int, deque] = {}
        self._dropped: Dict[int, int] = {}
        self._ids = itertools.count()
        #: Backlog of the most recent events, for ``replay`` subscribers
        #: who want history before the live tail.
        self._recent: deque = deque(maxlen=maxlen)
        self.written = 0

    def subscribe(
        self, maxlen: Optional[int] = None, *, replay: bool = False
    ) -> int:
        """Register a consumer; returns its subscriber id.

        ``replay=True`` seeds the subscriber's ring with the backlog of
        recent events, so a late subscriber sees history first.
        """
        with self._lock:
            sub_id = next(self._ids)
            ring: deque = deque(
                maxlen=self.maxlen if maxlen is None else maxlen
            )
            if replay:
                ring.extend(self._recent)
            self._subs[sub_id] = ring
            self._dropped[sub_id] = 0
            return sub_id

    def unsubscribe(self, sub_id: int) -> None:
        with self._lock:
            self._subs.pop(sub_id, None)
            self._dropped.pop(sub_id, None)

    def write(self, event: dict) -> None:
        with self._lock:
            self.written += 1
            self._recent.append(event)
            for sub_id, ring in self._subs.items():
                if ring.maxlen is not None and len(ring) == ring.maxlen:
                    self._dropped[sub_id] += 1
                ring.append(event)

    def drain(self, sub_id: int, max_items: Optional[int] = None) -> List[dict]:
        """Pop up to ``max_items`` buffered events, oldest first."""
        with self._lock:
            ring = self._subs.get(sub_id)
            if ring is None:
                return []
            count = len(ring) if max_items is None else min(max_items, len(ring))
            return [ring.popleft() for _ in range(count)]

    def dropped(self, sub_id: int) -> int:
        """Events this subscriber lost to backpressure so far."""
        with self._lock:
            return self._dropped.get(sub_id, 0)

    def close(self) -> None:
        with self._lock:
            self._subs.clear()
            self._dropped.clear()


#: Config fields a ``start`` request may set, in AioClusterConfig terms.
_START_FIELDS = (
    "protocol",
    "n",
    "malicious_fraction",
    "fan_out",
    "loss",
    "round_duration_ms",
    "round_jitter",
    "purge_rounds",
    "send_rate",
    "messages",
    "transport",
    "faults",
)


class GossipService:
    """A long-lived gossip cluster behind a JSONL-over-TCP control plane."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.prometheus = PrometheusSink()
        self.stream = EventStreamSink()
        # One tracer for the service's lifetime: counters accumulate
        # across cluster restarts, like a real process's metrics.
        self.tracer = Tracer(self.prometheus, self.stream, thread_safe=True)
        self.cluster: Optional[AioCluster] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- host-thread lifecycle ------------------------------------------------

    def start(self, timeout_s: float = 10.0) -> None:
        """Start the service loop thread and bind the control socket."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="gossip-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to bind: {self._startup_error!r}"
            ) from self._startup_error

    def _run(self) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_conn, self.host, self.port)
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._shutdown_async())
            loop.close()

    async def _shutdown_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.cluster is not None:
            try:
                await self.cluster.stop()
            finally:
                self.cluster = None
        # Drain cancelled callbacks / connection tasks.
        pending = [
            t
            for t in asyncio.all_tasks(self._loop)
            if t is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the service loop exits (a client sent ``shutdown``).

        Returns ``True`` once the loop thread has finished, ``False`` on
        timeout.  ``repro serve`` parks here so both Ctrl-C and a remote
        ``shutdown`` request end the process.
        """
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout_s)
        return not thread.is_alive()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the cluster (if any), close the socket, join the thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout_s)
        self._thread = None
        self._loop = None

    # -- the wire protocol ----------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await self._reply(writer, {"ok": False, "error": str(exc)})
                    continue
                op = request.get("op")
                if op == "stream":
                    await self._reply(writer, {"ok": True, "streaming": True})
                    await self._stream_events(writer, request)
                    break
                if op == "shutdown":
                    await self._reply(writer, {"ok": True, "shutdown": True})
                    self._loop.call_soon(self._loop.stop)
                    break
                try:
                    response = await self._dispatch(op, request)
                except Exception as exc:
                    response = {"ok": False, "error": str(exc)}
                await self._reply(writer, response)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _stream_events(
        self, writer: asyncio.StreamWriter, request: dict
    ) -> None:
        """Forward obs events as JSONL until the client leaves.

        The subscriber ring absorbs bursts; a consumer slower than the
        event rate loses oldest-first and the final ``stream_end``
        record reports the drop count.
        """
        max_events = request.get("max_events")
        sub_id = self.stream.subscribe(
            request.get("buffer"), replay=bool(request.get("replay", True))
        )
        sent = 0
        try:
            while max_events is None or sent < max_events:
                budget = None if max_events is None else max_events - sent
                events = self.stream.drain(sub_id, budget)
                if not events:
                    await asyncio.sleep(0.05)
                    # A closed client only surfaces on write; probe with
                    # an empty payload so idle streams still terminate.
                    if writer.is_closing():
                        return
                    continue
                for event in events:
                    writer.write(encode_event(event).encode() + b"\n")
                    sent += 1
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            dropped = self.stream.dropped(sub_id)
            self.stream.unsubscribe(sub_id)
        writer.write(
            json.dumps(
                {"ev": "stream_end", "sent": sent, "dropped": dropped}
            ).encode()
            + b"\n"
        )
        await writer.drain()

    # -- operations -----------------------------------------------------------

    async def _dispatch(self, op: Optional[str], request: dict) -> dict:
        if op == "ping":
            return {"ok": True, "pong": True, "engine": "aio"}
        if op == "start":
            return await self._op_start(request)
        if op == "status":
            return self._op_status()
        if op == "multicast":
            return await self._op_multicast(request)
        if op == "inject":
            return self._op_inject(request)
        if op == "metrics":
            return {"ok": True, "exposition": self.prometheus.render()}
        if op == "stop":
            return await self._op_stop()
        raise ValueError(f"unknown op {op!r}")

    async def _op_start(self, request: dict) -> dict:
        if self.cluster is not None:
            raise RuntimeError(
                "a cluster is already running; stop it first"
            )
        fields = {k: request[k] for k in _START_FIELDS if k in request}
        config = AioClusterConfig(**fields)
        cluster = AioCluster(
            config, seed=request.get("seed"), tracer=self.tracer
        )
        await cluster.start()
        self.cluster = cluster
        return {
            "ok": True,
            "n": config.n,
            "protocol": config.protocol.value,
        }

    def _require_cluster(self) -> AioCluster:
        if self.cluster is None:
            raise RuntimeError("no cluster is running; send op=start first")
        return self.cluster

    def _op_status(self) -> dict:
        cluster = self.cluster
        if cluster is None:
            return {"ok": True, "running": False}
        return {
            "ok": True,
            "running": True,
            "n": cluster.config.n,
            "protocol": cluster.config.protocol.value,
            "deliveries": len(cluster.deliveries),
            "tracked_messages": len(cluster.created_at),
            "node_errors": len(cluster.node_errors),
            "attackers": len(cluster.attackers),
            "faults": None
            if cluster.config.faults is None
            else cluster.config.faults.describe(),
        }

    async def _op_multicast(self, request: dict) -> dict:
        cluster = self._require_cluster()
        payload = request.get("payload", "")
        msg_id = cluster.multicast(
            int(request.get("source", cluster.config.source)),
            payload.encode() if isinstance(payload, str) else payload,
        )
        response = {"ok": True, "msg_id": list(msg_id)}
        fraction = request.get("await_fraction")
        if fraction is not None:
            response["delivered"] = await cluster.await_delivery(
                msg_id,
                fraction=float(fraction),
                timeout_s=float(request.get("timeout_s", 30.0)),
            )
        return response

    def _op_inject(self, request: dict) -> dict:
        cluster = self._require_cluster()
        injected = {}
        attack = request.get("attack")
        faults = request.get("faults")
        if attack is None and faults is None:
            raise ValueError(
                'inject needs "faults" (a plan spec) and/or "attack" '
                '({"alpha": ..., "x": ...})'
            )
        if faults is not None:
            cluster.inject_faults(faults)
            injected["faults"] = cluster.config.faults.describe()
        if attack is not None:
            spec = AttackSpec(
                alpha=float(attack["alpha"]), x=float(attack["x"])
            )
            cluster.inject_attack(spec)
            injected["attack"] = {
                "alpha": spec.alpha,
                "x": spec.x,
                "victims": spec.victim_count(cluster.config.n),
            }
        return {"ok": True, "injected": injected}

    async def _op_stop(self) -> dict:
        cluster = self._require_cluster()
        self.cluster = None
        await cluster.stop()
        return {"ok": True, "deliveries": len(cluster.deliveries)}
