"""Simulated public-key infrastructure.

The paper assumes standard cryptographic machinery: message sources are
authenticated with digital signatures, the random ports exchanged during
push/pull are encrypted under the recipient's public key, and a
certification authority (CA) vouches for group members.  Reproducing DoS
behaviour does not require real cryptographic hardness — only the
*properties* (unforgeability, opacity) — so this package provides a
deterministic in-process PKI that enforces those properties structurally:
signatures cannot be produced without the private key object, and sealed
envelopes cannot be opened without it.
"""

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.signatures import Signature, sign, verify
from repro.crypto.encryption import SealedEnvelope, open_envelope, seal
from repro.crypto.certificates import Certificate, CertificateError
from repro.crypto.ca import CertificationAuthority

__all__ = [
    "Certificate",
    "CertificateError",
    "CertificationAuthority",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "SealedEnvelope",
    "Signature",
    "open_envelope",
    "seal",
    "sign",
    "verify",
]
