"""The certification authority (Section 10).

A single in-process CA that authorises joins, issues and renews
timestamped certificates, revokes them on log-out or suspicion of
malbehaviour, and hands newcomers an initial membership list.  The paper
notes that distributed Byzantine-fault-tolerant CA implementations exist
(COCA et al.); the CA's interface here is what Drum's membership layer
needs, and its internals are deliberately simple.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

from repro.crypto.certificates import Certificate, CertificateError
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signatures import sign


class CertificationAuthority:
    """Issues, renews, and revokes membership certificates."""

    def __init__(self, *, validity_period: float = 600.0, initial_view_size: Optional[int] = None):
        if validity_period <= 0:
            raise ValueError(f"validity_period must be > 0, got {validity_period}")
        self._keys = KeyPair(owner=-1)
        self.validity_period = float(validity_period)
        self.initial_view_size = initial_view_size
        self._serials = itertools.count(1)
        self._members: Dict[int, Certificate] = {}
        self._revoked: Set[int] = set()  # revoked serial numbers
        self._clock = 0.0

    # -- clock -----------------------------------------------------------

    @property
    def public_key(self) -> PublicKey:
        """The CA's public key, known to every process."""
        return self._keys.public

    def advance_clock(self, now: float) -> None:
        """Move the CA's clock forward (it never goes back)."""
        if now < self._clock:
            raise ValueError(
                f"CA clock cannot go backwards: {now} < {self._clock}"
            )
        self._clock = float(now)

    @property
    def now(self) -> float:
        """The CA's current time."""
        return self._clock

    # -- membership ------------------------------------------------------

    def authorize_join(self, subject: int, subject_key: PublicKey) -> Certificate:
        """Admit ``subject``: mint a fresh certificate for it."""
        if subject in self._members and not self.is_revoked(self._members[subject]):
            raise CertificateError(f"process {subject} is already a member")
        cert = self._issue(subject, subject_key)
        self._members[subject] = cert
        return cert

    def renew(self, old: Certificate) -> Certificate:
        """Replace a still-honoured certificate with a fresh one."""
        if self.is_revoked(old):
            raise CertificateError(
                f"certificate serial {old.serial} was revoked; cannot renew"
            )
        if self._members.get(old.subject) is not old and (
            self._members.get(old.subject, None) is None
            or self._members[old.subject].serial != old.serial
        ):
            raise CertificateError(
                f"certificate serial {old.serial} is not the current one "
                f"for process {old.subject}"
            )
        cert = self._issue(old.subject, old.subject_key)
        self._members[old.subject] = cert
        return cert

    def revoke(self, subject: int) -> Optional[Certificate]:
        """Revoke ``subject``'s certificate (log-out or expulsion)."""
        cert = self._members.pop(subject, None)
        if cert is not None:
            self._revoked.add(cert.serial)
        return cert

    def is_revoked(self, cert: Certificate) -> bool:
        """True when ``cert`` appears on the revocation list."""
        return cert.serial in self._revoked

    def is_member(self, subject: int) -> bool:
        """True when ``subject`` currently holds an unexpired certificate."""
        cert = self._members.get(subject)
        return cert is not None and cert.is_valid_at(self._clock, self.public_key)

    def current_certificate(self, subject: int) -> Optional[Certificate]:
        """The live certificate for ``subject``, if any."""
        return self._members.get(subject)

    def initial_view(self, exclude: int) -> List[int]:
        """Membership list handed to a newcomer (possibly truncated)."""
        members = sorted(m for m in self._members if m != exclude)
        if self.initial_view_size is not None:
            members = members[: self.initial_view_size]
        return members

    # -- internals ---------------------------------------------------------

    def _issue(self, subject: int, subject_key: PublicKey) -> Certificate:
        serial = next(self._serials)
        body = (
            subject,
            subject_key.fingerprint,
            self._clock,
            self._clock + self.validity_period,
            serial,
        )
        return Certificate(
            subject=subject,
            subject_key=subject_key,
            issued_at=self._clock,
            expires_at=self._clock + self.validity_period,
            serial=serial,
            signature=sign(self._keys.private, body),
        )
