"""Simulated public-key encryption for random-port advertisements.

Drum transmits the randomly chosen reply/data ports inside messages.  To
stop an adversary from reading them off the wire and flooding them, the
ports are encrypted under the recipient's public key.  ``seal`` wraps a
value so that only the holder of the matching :class:`PrivateKey` object
can ``open_envelope`` it — snooping adversaries in the simulations hold
only public keys and thus learn nothing about live random ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.keys import PrivateKey, PublicKey


class DecryptionError(Exception):
    """Raised when an envelope is opened with the wrong private key."""


@dataclass(frozen=True, slots=True)
class SealedEnvelope:
    """A value encrypted for one recipient.

    The plaintext is stored in a private field; well-behaved code only
    reaches it through :func:`open_envelope`, which demands the matching
    private key.  Adversary code in this library never touches the field
    (enforced by tests), mirroring semantic security.
    """

    recipient: PublicKey
    _plaintext: Any = field(repr=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<sealed for {self.recipient.owner}>"


def seal(recipient: PublicKey, value: Any) -> SealedEnvelope:
    """Encrypt ``value`` for ``recipient``."""
    return SealedEnvelope(recipient=recipient, _plaintext=value)


def open_envelope(private: PrivateKey, envelope: SealedEnvelope) -> Any:
    """Decrypt ``envelope``; raises ``DecryptionError`` on a key mismatch."""
    if not private.matches(envelope.recipient):
        raise DecryptionError(
            f"key of node {private.owner} cannot open an envelope sealed "
            f"for node {envelope.recipient.owner}"
        )
    return envelope._plaintext
