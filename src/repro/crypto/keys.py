"""Simulated asymmetric key pairs.

A key pair is a shared random secret split across two wrapper objects.
Holding the :class:`PrivateKey` *object* is the only way to sign or
decrypt — there is no byte-level attack surface to model, which is the
right level of abstraction for protocol-layer DoS experiments.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

_key_counter = itertools.count()


@dataclass(frozen=True)
class PublicKey:
    """The shareable half of a key pair."""

    owner: int
    fingerprint: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"pub:{self.owner}:{self.fingerprint[:8]}"


@dataclass(frozen=True)
class PrivateKey:
    """The secret half; possession of this object *is* the secret."""

    owner: int
    fingerprint: str
    _secret: int = field(repr=False)

    def matches(self, public: PublicKey) -> bool:
        """True when this private key corresponds to ``public``."""
        return (
            self.owner == public.owner and self.fingerprint == public.fingerprint
        )


class KeyPair:
    """A freshly generated (public, private) pair for ``owner``."""

    def __init__(self, owner: int):
        serial = next(_key_counter)
        secret = hash((owner, serial, "repro-keypair")) & 0x7FFFFFFFFFFFFFFF
        fingerprint = hashlib.sha256(
            f"{owner}:{serial}:{secret}".encode()
        ).hexdigest()
        self.public = PublicKey(owner=owner, fingerprint=fingerprint)
        self.private = PrivateKey(owner=owner, fingerprint=fingerprint, _secret=secret)

    @property
    def owner(self) -> int:
        """The node id this pair belongs to."""
        return self.public.owner
