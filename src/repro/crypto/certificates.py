"""Membership certificates (Section 10).

The CA grants each group member a timestamped certificate that expires
and can be revoked.  Processes attach certificates to messages so peers
with incomplete membership databases can authenticate them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import PublicKey
from repro.crypto.signatures import Signature, verify


class CertificateError(Exception):
    """Raised for malformed or unusable certificates."""


@dataclass(frozen=True)
class Certificate:
    """A CA-signed statement that ``subject`` is a group member.

    ``issued_at`` / ``expires_at`` are in the CA's clock domain (rounds
    or seconds — the protocol only compares them).  The signature covers
    the (subject, key, validity window, serial) tuple.
    """

    subject: int
    subject_key: PublicKey
    issued_at: float
    expires_at: float
    serial: int
    signature: Signature

    def __post_init__(self) -> None:
        if self.expires_at <= self.issued_at:
            raise CertificateError(
                f"certificate for {self.subject} expires at {self.expires_at} "
                f"before issuance at {self.issued_at}"
            )

    def signed_body(self) -> tuple:
        """The tuple the CA's signature covers."""
        return (
            self.subject,
            self.subject_key.fingerprint,
            self.issued_at,
            self.expires_at,
            self.serial,
        )

    def is_valid_at(self, now: float, ca_key: PublicKey) -> bool:
        """True when the certificate verifies and is within its window."""
        if not self.issued_at <= now < self.expires_at:
            return False
        return verify(ca_key, self.signed_body(), self.signature)
