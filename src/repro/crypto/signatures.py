"""Simulated digital signatures.

``sign`` binds a payload digest to the signer's key; ``verify`` checks
that binding against a public key.  Unforgeability is enforced
structurally: ``sign`` registers each issued binding in a module-private
registry keyed by (fingerprint, digest), and ``verify`` accepts only
registered bindings.  An adversary who fabricates a ``Signature`` object
therefore fails verification, matching the paper's assumption that
"data messages' sources can be identified using standard cryptographic
techniques" while keeping simulations free of real crypto cost.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.keys import PrivateKey, PublicKey

# Registry of issued bindings: (key fingerprint, payload digest) -> binding.
_issued: Dict[Tuple[str, str], str] = {}


def _digest(payload: object) -> str:
    try:
        blob = pickle.dumps(payload)
    except Exception as exc:
        raise TypeError(f"payload is not signable: {exc}") from exc
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class Signature:
    """A signature over one payload by one key."""

    signer: int
    key_fingerprint: str
    payload_digest: str
    binding: str


def sign(private: PrivateKey, payload: object) -> Signature:
    """Sign ``payload`` with ``private``."""
    digest = _digest(payload)
    binding = hashlib.sha256(
        f"{private.fingerprint}:{private._secret}:{digest}".encode()
    ).hexdigest()
    _issued[(private.fingerprint, digest)] = binding
    return Signature(
        signer=private.owner,
        key_fingerprint=private.fingerprint,
        payload_digest=digest,
        binding=binding,
    )


def verify(public: PublicKey, payload: object, signature: Signature) -> bool:
    """True iff ``signature`` was really issued over ``payload`` by ``public``."""
    if signature.signer != public.owner:
        return False
    if signature.key_fingerprint != public.fingerprint:
        return False
    digest = _digest(payload)
    if signature.payload_digest != digest:
        return False
    return _issued.get((public.fingerprint, digest)) == signature.binding
