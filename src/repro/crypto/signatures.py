"""Simulated digital signatures.

``sign`` binds a payload digest to the signer's key; ``verify`` checks
that binding against a public key.  Unforgeability is enforced
structurally: ``sign`` registers each issued binding in a
:class:`SignatureRegistry` keyed by (fingerprint, digest), and
``verify`` accepts only registered bindings.  An adversary who
fabricates a ``Signature`` object therefore fails verification,
matching the paper's assumption that "data messages' sources can be
identified using standard cryptographic techniques" while keeping
simulations free of real crypto cost.

Two scalability concerns shape the API:

- **Registry scope.**  A registry used to be one module-global dict
  that grew by one entry per signed message for the life of the
  process.  Long sweeps now pass their own ``registry=`` (clusters own
  one per run, so it dies with the run), and the module-level default
  registry is *bounded*: past ``DEFAULT_REGISTRY_CAPACITY`` bindings it
  evicts the oldest, which is harmless because a binding is
  deterministically recomputed on re-signing the same payload.
- **Digest memoisation.**  ``sign``/``verify`` accept a pre-computed
  ``digest=`` (see :meth:`repro.core.message.DataMessage.body_digest`)
  so relaying a message over many hops serialises its body once instead
  of once per verification.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.keys import PrivateKey, PublicKey
from repro.util.profiling import bump

#: Bound on the default (module-level) registry.  Scoped registries are
#: unbounded — their lifetime is the simulation that owns them.
DEFAULT_REGISTRY_CAPACITY = 65536


def payload_digest(payload: object) -> str:
    """sha256 over the pickled payload (the signable content's digest)."""
    try:
        blob = pickle.dumps(payload)
    except Exception as exc:
        raise TypeError(f"payload is not signable: {exc}") from exc
    bump("signature_digests_computed")
    return hashlib.sha256(blob).hexdigest()


# Backwards-compatible private alias (pre-registry code imported this).
_digest = payload_digest


class SignatureRegistry:
    """Issued bindings: (key fingerprint, payload digest) -> binding.

    One registry delimits one trust domain: a signature verifies only
    against the registry it was signed into.  Simulations create one
    per run so the bookkeeping dies with the run instead of leaking
    into a module global.

    ``capacity`` bounds the registry; when full, the oldest binding is
    evicted (insertion order).  Eviction can only cause a false
    *rejection* of a very old signature, never a false acceptance.
    """

    __slots__ = ("capacity", "_issued")

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._issued: Dict[Tuple[str, str], str] = {}

    def __len__(self) -> int:
        return len(self._issued)

    def record(self, fingerprint: str, digest: str, binding: str) -> None:
        """Register one issued binding, evicting the oldest when full."""
        issued = self._issued
        if (
            self.capacity is not None
            and len(issued) >= self.capacity
            and (fingerprint, digest) not in issued
        ):
            issued.pop(next(iter(issued)))
        issued[(fingerprint, digest)] = binding

    def lookup(self, fingerprint: str, digest: str) -> Optional[str]:
        """The registered binding for (fingerprint, digest), if any."""
        return self._issued.get((fingerprint, digest))

    def clear(self) -> None:
        """Drop every recorded binding."""
        self._issued.clear()


#: The default registry used when callers do not scope their own.
#: Bounded so processes that sign forever (live clusters, long sweeps
#: on legacy code paths) cannot leak without limit.
_default_registry = SignatureRegistry(capacity=DEFAULT_REGISTRY_CAPACITY)


def default_registry() -> SignatureRegistry:
    """The module-wide bounded registry backing unscoped sign/verify."""
    return _default_registry


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature over one payload by one key."""

    signer: int
    key_fingerprint: str
    payload_digest: str
    binding: str


def sign(
    private: PrivateKey,
    payload: object,
    *,
    digest: Optional[str] = None,
    registry: Optional[SignatureRegistry] = None,
) -> Signature:
    """Sign ``payload`` with ``private``.

    ``digest`` may carry a memoised :func:`payload_digest` of the same
    payload; ``registry`` scopes the issued binding (default: the
    bounded module registry).
    """
    if digest is None:
        digest = payload_digest(payload)
    binding = hashlib.sha256(
        f"{private.fingerprint}:{private._secret}:{digest}".encode()
    ).hexdigest()
    (registry if registry is not None else _default_registry).record(
        private.fingerprint, digest, binding
    )
    return Signature(
        signer=private.owner,
        key_fingerprint=private.fingerprint,
        payload_digest=digest,
        binding=binding,
    )


def verify(
    public: PublicKey,
    payload: object,
    signature: Signature,
    *,
    digest: Optional[str] = None,
    registry: Optional[SignatureRegistry] = None,
) -> bool:
    """True iff ``signature`` was really issued over ``payload`` by ``public``.

    ``registry`` must be the one the signature was signed into — a
    signature from another trust domain fails verification.
    """
    if signature.signer != public.owner:
        return False
    if signature.key_fingerprint != public.fingerprint:
        return False
    if digest is None:
        digest = payload_digest(payload)
    if signature.payload_digest != digest:
        return False
    issued = (
        registry if registry is not None else _default_registry
    ).lookup(public.fingerprint, digest)
    return issued == signature.binding
