"""A snooping adversary — why Drum *encrypts* its random ports.

Section 4: "The random ports transmitted during the push and pull
operations are encrypted (e.g., using the recipient's public key), in
order to prevent an adversary from discovering them."

This module makes that sentence testable.  The
:class:`SnoopingAttacker` wiretaps every packet (the paper's model lets
the adversary snoop), harvests any pull-request reply port it can read,
and redirects its pull budget onto those harvested live ports instead of
the well-known request port.  Two regimes:

- **ports sealed** (Drum proper): the tap sees only
  :class:`~repro.crypto.encryption.SealedEnvelope` objects — nothing to
  harvest, the attack degenerates, Drum is unharmed;
- **ports in cleartext** (the ablation — run the simulator without
  distributing public keys): every advertised reply port is harvested
  the moment it crosses the wire, and the attacker floods exactly the
  ports where pull-replies are awaited, reproducing the
  well-known-ports collapse even though the ports are random.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from repro.adversary.attacker import RoundAttacker
from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolKind
from repro.core.message import PullRequest
from repro.net.address import Address
from repro.net.network import Network
from repro.net.packet import Packet
from repro.util.rng import SeedLike


class SnoopingAttacker(RoundAttacker):
    """Wiretaps the network and floods harvested reply ports."""

    def __init__(
        self,
        spec: AttackSpec,
        kind: ProtocolKind,
        victims: Sequence[int],
        network: Network,
        *,
        seed: SeedLike = None,
        port_memory_rounds: int = 2,
    ):
        super().__init__(spec, kind, victims, network, seed=seed)
        self._victim_set: Set[int] = set(victims)
        #: Harvested (victim, port) with remaining useful rounds.
        self._harvested: Dict[Tuple[int, int], int] = {}
        self.port_memory_rounds = port_memory_rounds
        self.harvested_total = 0
        network.add_snooper(self._snoop)

    # -- wiretap ------------------------------------------------------------

    def _snoop(self, packet: Packet) -> None:
        payload = packet.payload
        if not isinstance(payload, PullRequest):
            return
        if payload.sender not in self._victim_set:
            return
        # The tap reads what is on the wire.  A sealed envelope exposes
        # nothing; a plain integer is a harvested live port.
        if isinstance(payload.reply_port, int):
            self._harvested[(payload.sender, payload.reply_port)] = (
                self.port_memory_rounds
            )
            self.harvested_total += 1

    # -- flooding --------------------------------------------------------------

    def inject_round(self) -> int:
        """Flood the push port normally; aim the pull budget at
        harvested reply ports (falling back to the request port when
        nothing has been harvested)."""
        load = self.spec.port_load(self.kind)
        injected = 0
        from repro.net.address import PORT_PULL_REQUEST, PORT_PUSH_DATA

        live = [key for key, ttl in self._harvested.items() if ttl > 0]
        for victim in self.victims:
            if load.push > 0:
                count = self._sample_count(load.push)
                if count:
                    self.network.flood(Address(victim, PORT_PUSH_DATA), count)
                    injected += count
            if load.pull_request > 0:
                victim_ports = [p for (v, p) in live if v == victim]
                budget = self._sample_count(load.pull_request)
                if victim_ports and budget:
                    per_port = max(1, budget // len(victim_ports))
                    for port in victim_ports:
                        self.network.flood(Address(victim, port), per_port)
                        injected += per_port
                elif budget:
                    self.network.flood(
                        Address(victim, PORT_PULL_REQUEST), budget
                    )
                    injected += budget
        for key in list(self._harvested):
            self._harvested[key] -= 1
            if self._harvested[key] <= 0:
                del self._harvested[key]
        self.injected_total += injected
        return injected
