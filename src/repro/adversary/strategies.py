"""Adversary strategy sweeps (Sections 5, 7.2, 7.3).

Three families of attacks parameterise the paper's evaluation:

- *increasing rate*: fix the extent α, grow the per-victim rate x
  (Figures 3a, 4a, 9a, 10a, 12);
- *increasing extent*: fix x, grow α — total strength B grows too
  (Figures 3b, 4b, 9b, 10b);
- *fixed budget*: fix B and trade extent against rate, x = B/(α·n)
  (Figures 7 and 8) — the sweep that reveals whether focusing the
  attack on few processes pays off.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.adversary.attacks import AttackSpec


def increasing_rate_sweep(alpha: float, rates: Sequence[float]) -> List[AttackSpec]:
    """Attacks with fixed extent ``alpha`` and growing rates ``x``."""
    return [AttackSpec(alpha=alpha, x=float(x)) for x in rates]


def increasing_extent_sweep(x: float, alphas: Sequence[float]) -> List[AttackSpec]:
    """Attacks with fixed rate ``x`` and growing extents ``α``."""
    return [AttackSpec(alpha=float(a), x=x) for a in alphas]


def fixed_budget_sweep(
    total_strength: float, alphas: Sequence[float], n: int
) -> List[AttackSpec]:
    """Attacks spending budget ``B`` spread over each extent in ``alphas``."""
    return [
        AttackSpec.fixed_budget(total_strength, float(a), n) for a in alphas
    ]


def relative_budget_sweep(
    c: float, alphas: Sequence[float], n: int, fan_out: int
) -> List[AttackSpec]:
    """Fixed-budget sweep with strength given as ``c`` × system capacity."""
    return [
        AttackSpec.relative_budget(c, float(a), n, fan_out) for a in alphas
    ]
