"""Attack models and adversary strategies.

The paper's adversary focuses on a fraction ``α`` of the processes and
sends each of them ``x`` fabricated messages per round, for a total
strength ``B = x·α·n``.  This package expresses those attacks
(:class:`~repro.adversary.attacks.AttackSpec`), injects them into the
simulated network (:class:`~repro.adversary.attacker.RoundAttacker`),
and enumerates the strategy sweeps of Sections 7.2–7.3
(:mod:`repro.adversary.strategies`).
"""

from repro.adversary.attacks import AttackSpec, PortLoad
from repro.adversary.attacker import RoundAttacker
from repro.adversary.adaptive import (
    AdaptiveAttacker,
    FrontierAttacker,
    RotatingAttacker,
)
from repro.adversary.snooping import SnoopingAttacker
from repro.adversary.strategies import (
    fixed_budget_sweep,
    increasing_extent_sweep,
    increasing_rate_sweep,
    relative_budget_sweep,
)

__all__ = [
    "AdaptiveAttacker",
    "AttackSpec",
    "FrontierAttacker",
    "PortLoad",
    "RotatingAttacker",
    "RoundAttacker",
    "SnoopingAttacker",
    "fixed_budget_sweep",
    "increasing_extent_sweep",
    "increasing_rate_sweep",
    "relative_budget_sweep",
]
