"""Adaptive adversaries — a beyond-the-paper ablation.

The paper's adversary fixes its victim set in advance.  A natural
escalation is an adversary that *re-targets every round*:

- :class:`RotatingAttacker` re-draws a random victim set each round,
  modelling an attacker cycling through the group to evade detection;
- :class:`FrontierAttacker` is an omniscient worst case: it always
  floods the correct processes that do not yet hold M (plus the source),
  i.e., exactly the epidemic's frontier.

Drum's design argument predicts adaptivity should not help much: an
attacked process can still *send* (its push targets are its own random
choices) and still *receive* (pull replies arrive on unpredictable
ports), no matter how cleverly the victim set moves.  The
``bench_adaptive_adversary`` benchmark quantifies this.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.adversary.attacker import RoundAttacker
from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolKind
from repro.net.network import Network
from repro.util.rng import SeedLike


class AdaptiveAttacker(RoundAttacker):
    """Base class: re-chooses victims before each round's flood.

    ``candidates`` is the pool of attackable (correct, alive) processes;
    ``budget_victims`` is how many the per-round budget covers (the same
    ``α·n`` as the static attack, so comparisons are budget-fair).
    """

    def __init__(
        self,
        spec: AttackSpec,
        kind: ProtocolKind,
        candidates: Sequence[int],
        network: Network,
        *,
        n: int,
        seed: SeedLike = None,
    ):
        self.candidates = list(candidates)
        self.budget_victims = max(1, spec.victim_count(n))
        super().__init__(spec, kind, list(self.candidates), network, seed=seed)

    def observe_round(self, holders: Dict[int, bool]) -> None:
        """Called by the engine before each round's injection with the
        current has-M state of every correct process."""
        self.victims = self.choose_victims(holders)

    def choose_victims(self, holders: Dict[int, bool]) -> List[int]:
        raise NotImplementedError


class RotatingAttacker(AdaptiveAttacker):
    """Re-draws a uniformly random victim set every round."""

    def choose_victims(self, holders: Dict[int, bool]) -> List[int]:
        count = min(self.budget_victims, len(self.candidates))
        idx = self._rng.choice(len(self.candidates), size=count, replace=False)
        return [self.candidates[i] for i in idx]


class FrontierAttacker(AdaptiveAttacker):
    """Omnisciently floods the processes that do not yet hold M.

    The source is always included (suppressing its sending matters even
    after it is "covered"); remaining budget goes to uninfected
    processes, topped up with random infected ones when the frontier is
    smaller than the budget.
    """

    def __init__(self, *args, source: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.source = source

    def choose_victims(self, holders: Dict[int, bool]) -> List[int]:
        count = min(self.budget_victims, len(self.candidates))
        frontier = [
            pid for pid in self.candidates
            if not holders.get(pid, False) and pid != self.source
        ]
        victims = [self.source] if self.source in self.candidates else []
        self._rng.shuffle(frontier)
        victims.extend(frontier[: count - len(victims)])
        if len(victims) < count:
            rest = [p for p in self.candidates if p not in set(victims)]
            self._rng.shuffle(rest)
            victims.extend(rest[: count - len(victims)])
        return victims
