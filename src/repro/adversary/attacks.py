"""Attack specifications.

An :class:`AttackSpec` is the paper's ``(α, x)`` pair: the adversary
attacks a fraction ``α`` of the processes with ``x`` fabricated messages
per round each.  How those ``x`` messages divide across a victim's ports
depends on the protocol under attack:

- Drum (and shared-bounds Drum): ``x/2`` to the push port, ``x/2`` to
  the pull-request port;
- Push: all ``x`` to the push port;
- Pull: all ``x`` to the pull-request port;
- no-random-ports Drum: ``x/2`` push, and the pull share split again —
  ``x/4`` pull-request, ``x/4`` pull-reply (Section 9's model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProtocolKind
from repro.util import check_fraction, check_non_negative


@dataclass(frozen=True)
class PortLoad:
    """Fabricated messages per round aimed at each port of one victim."""

    push: float = 0.0
    pull_request: float = 0.0
    pull_reply: float = 0.0

    @property
    def total(self) -> float:
        return self.push + self.pull_request + self.pull_reply


@dataclass(frozen=True)
class AttackSpec:
    """A DoS attack: rate ``x`` against a fraction ``α`` of processes.

    ``alpha`` is a fraction of *all* ``n`` group members; the attacked
    processes themselves are correct ones and always include the message
    source (the paper's convention).  ``x`` may be fractional — fixed
    budget sweeps produce non-integral per-round rates, which the
    injector realises by randomised rounding.
    """

    alpha: float
    x: float

    def __post_init__(self) -> None:
        check_fraction("alpha", self.alpha)
        check_non_negative("x", self.x)

    def total_strength(self, n: int) -> float:
        """``B = x·α·n``, the adversary's total per-round send rate."""
        return self.x * self.alpha * n

    def relative_strength(self, n: int, fan_out: int) -> float:
        """``c = B / (F·n)``: attack strength over total system capacity."""
        return self.total_strength(n) / (fan_out * n)

    @classmethod
    def fixed_budget(cls, total_strength: float, alpha: float, n: int) -> "AttackSpec":
        """The attack spending a fixed budget ``B`` over a fraction ``α``."""
        check_non_negative("total_strength", total_strength)
        check_fraction("alpha", alpha)
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        return cls(alpha=alpha, x=total_strength / (alpha * n))

    @classmethod
    def relative_budget(
        cls, c: float, alpha: float, n: int, fan_out: int
    ) -> "AttackSpec":
        """The attack with strength ``c`` times total system capacity."""
        return cls.fixed_budget(c * fan_out * n, alpha, n)

    def victim_count(self, n: int) -> int:
        """Number of attacked processes (``α·n``, rounded)."""
        return int(round(self.alpha * n))

    def port_load(self, kind: ProtocolKind) -> PortLoad:
        """How ``x`` splits across one victim's ports for ``kind``."""
        if kind is ProtocolKind.PUSH:
            return PortLoad(push=self.x)
        if kind is ProtocolKind.PULL:
            return PortLoad(pull_request=self.x)
        if kind is ProtocolKind.DRUM_NO_RANDOM_PORTS:
            return PortLoad(
                push=self.x / 2,
                pull_request=self.x / 4,
                pull_reply=self.x / 4,
            )
        # Drum and shared-bounds Drum.
        return PortLoad(push=self.x / 2, pull_request=self.x / 2)
