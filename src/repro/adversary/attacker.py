"""Attack-traffic injection for the exact round simulator."""

from __future__ import annotations

from typing import Sequence

from repro.adversary.attacks import AttackSpec
from repro.core.config import ProtocolKind
from repro.net.address import (
    PORT_PULL_REPLY,
    PORT_PULL_REQUEST,
    PORT_PUSH_DATA,
    PORT_PUSH_OFFER,
    Address,
)
from repro.net.network import Network
from repro.util import derive_rng
from repro.util.rng import SeedLike


class RoundAttacker:
    """Floods the victims' well-known ports once per round.

    Fractional per-port rates are realised with randomised rounding so
    the *expected* injected load matches the spec exactly — a fixed
    budget of 7.2·n messages stays 7.2·n on average regardless of how α
    divides it.
    """

    def __init__(
        self,
        spec: AttackSpec,
        kind: ProtocolKind,
        victims: Sequence[int],
        network: Network,
        *,
        seed: SeedLike = None,
    ):
        self.spec = spec
        self.kind = kind
        self.victims = list(victims)
        self.network = network
        self._rng = derive_rng(seed)
        self.injected_total = 0
        # The per-port load split and the push port depend only on the
        # (immutable) spec and protocol kind — resolve them once instead
        # of once per round.  Subclasses that re-choose victims per
        # round (repro.adversary.adaptive) still work: only the rates
        # are frozen here, never the victim list.
        self._load = spec.port_load(kind)
        self._push_port = (
            PORT_PUSH_OFFER
            if kind is ProtocolKind.DRUM_SHARED_BOUNDS
            else PORT_PUSH_DATA
        )

    def _sample_count(self, rate: float) -> int:
        base = int(rate)
        frac = rate - base
        if frac > 0 and self._rng.random() < frac:
            base += 1
        return base

    def inject_round(self) -> int:
        """Send this round's fabricated messages; returns how many."""
        # The shared-bounds variant receives push traffic on its offer
        # port; everything else takes raw push data on the data port.
        load = self._load
        flood = self.network.flood
        injected = 0
        for victim in self.victims:
            for port, rate in (
                (self._push_port, load.push),
                (PORT_PULL_REQUEST, load.pull_request),
                (PORT_PULL_REPLY, load.pull_reply),
            ):
                if rate <= 0:
                    continue
                count = self._sample_count(rate)
                if count:
                    flood(Address(victim, port), count)
                    injected += count
        self.injected_total += injected
        return injected
