"""Deserialisation of the unified result envelope.

Every result class serialises with ``to_dict()`` into the same
versioned layout::

    {"schema": "repro.result", "version": 1, "kind": <kind>,
     "config": {...}, "metrics": {...}, "data": {...}}

``metrics`` always carries the shared names — ``reliability``,
``rounds_to_threshold``, ``rounds_to_heal``, ``latency_ms`` — with None
where a stack has no such notion (round engines have no latency;
continuous-time experiments have no round counts).  ``data`` is
kind-specific and lossless, so :func:`result_from_dict` rebuilds a
fully functional result object from any envelope.
"""

from __future__ import annotations

from repro.des.measurement import MeasurementResult
from repro.sim.results import (
    SCHEMA,
    SCHEMA_VERSION,
    MonteCarloResult,
    RunResult,
)

#: kind -> result class, the dispatch table for :func:`result_from_dict`.
KINDS = {
    "run": RunResult,
    "monte_carlo": MonteCarloResult,
    "measurement": MeasurementResult,
}


def result_from_dict(data: dict):
    """Rebuild whichever result class produced ``data`` via ``to_dict``.

    Raises ``ValueError`` on a wrong schema, an unsupported version, or
    an unknown kind.
    """
    if not isinstance(data, dict):
        raise ValueError(f"expected a result envelope dict, got {data!r}")
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"not a {SCHEMA} document: schema={data.get('schema')!r}"
        )
    if data.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {SCHEMA} version {data.get('version')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    cls = KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown result kind {kind!r}; expected one of "
            f"{', '.join(sorted(KINDS))}"
        )
    return cls.from_dict(data)
